#!/usr/bin/env python3
"""Inject a link failure into an auto-configured ring and watch recovery.

The script configures a 6-switch ring with the full framework (FlowVisor,
topology controller, RouteFlow), then takes one link down and brings it
back 60 seconds later.  The failure executes as simulation-kernel events;
RouteFlow mirrors it into the virtual topology, the per-VM Quagga stacks
tear down the adjacency, withdraw the routes through the dead link all the
way to the physical flow tables, and reroute the long way around the ring.

Run with:  python examples/link_failure.py
"""

from __future__ import annotations

from repro.experiments import render_failover_table, run_failover
from repro.scenarios import FailureSchedule, ScenarioSpec


def main() -> None:
    spec = ScenarioSpec(
        "link-failure-demo", "ring", {"num_switches": 6},
        framework={"vm_boot_delay": 1.0,
                   "ospf_hello_interval": 2, "ospf_dead_interval": 8},
        max_time=600.0,
        description="6-switch ring with one link bounce")
    schedule = FailureSchedule.single_link_failure(1, 2, at=10.0,
                                                   restore_after=60.0)
    print(f"failure schedule: {schedule.describe()}")
    result = run_failover(spec, schedule=schedule)
    print()
    print(render_failover_table([result]))
    print()
    if result.reconverged:
        print(f"worst reconvergence: "
              f"{result.worst_reconverge_seconds:.1f} s — every VM's RIB "
              f"matches its SPF result (no stale routes survived)")
    else:
        for violation in result.invariant_violations:
            print(f"VIOLATION: {violation}")


if __name__ == "__main__":
    main()
