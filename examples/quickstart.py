#!/usr/bin/env python3
"""Quickstart: automatically configure RouteFlow on a small ring network.

Builds a 4-switch ring, attaches the automatic-configuration framework
(topology controller + RPC + RouteFlow behind FlowVisor), runs the
simulation until OSPF has converged everywhere, and prints the milestones,
the GUI state and one VM's routing table.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AutoConfigFramework, EmulatedNetwork, FrameworkConfig, IPAddressManager, Simulator, ring_topology


def main() -> None:
    sim = Simulator()
    ipam = IPAddressManager()

    # The framework: RF-controller + RouteFlow, topology controller, RPC
    # client/server and FlowVisor, all with the paper's default parameters.
    framework = AutoConfigFramework(
        sim,
        config=FrameworkConfig(vm_boot_delay=5.0, detect_edge_ports=False),
        ipam=ipam,
    )

    # The emulated OpenFlow network (the paper's second laptop).
    network = EmulatedNetwork(sim, ring_topology(4), ipam=ipam)
    framework.attach(network)

    configured_at = framework.run_until_configured(max_time=600.0, settle=5.0)

    print("=== milestones ===")
    for name, when in sorted(framework.milestones.items(), key=lambda item: item[1]):
        print(f"  {when:7.1f} s  {name}")
    print()
    print("=== GUI (paper demo view) ===")
    print(framework.gui.render_text())
    print()
    print("=== one VM's routing table ===")
    vm = framework.rfserver.vm(1)
    print(vm.zebra.show_ip_route())
    print()
    print("=== flows installed on switch s1 ===")
    for entry in network.switch(1).flow_table:
        print(f"  {entry}")
    print()
    manual = framework.manual_model.seconds_for(network.num_switches)
    print(f"Automatic configuration finished after {configured_at:.1f} s "
          f"(manual baseline: {manual / 60:.0f} min).")


if __name__ == "__main__":
    main()
