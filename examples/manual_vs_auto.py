#!/usr/bin/env python3
"""Compare the manual-configuration cost model against a measured automatic run.

Prints the paper's per-activity manual cost breakdown (5 min VM creation,
2 min interface mapping, 8 min routing configuration per switch) next to a
measured automatic configuration of the same topology, including where the
automatic time is actually spent (discovery, VM boots, OSPF convergence).

Run with:  python examples/manual_vs_auto.py [num_switches]
"""

from __future__ import annotations

import sys

from repro.core import ManualConfigurationModel
from repro.experiments import format_table, run_single_configuration
from repro.topology.generators import ring_topology


def main() -> None:
    num_switches = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    model = ManualConfigurationModel()
    breakdown = model.breakdown_for(num_switches)

    print(f"Manual configuration of {num_switches} switches (paper §2.1 model):")
    print(format_table(
        ["activity", "minutes"],
        [["create VMs (install Linux + Quagga)", f"{breakdown['vm_creation']:.0f}"],
         ["map switch interfaces to VM interfaces", f"{breakdown['interface_mapping']:.0f}"],
         ["write routing configuration files", f"{breakdown['routing_configuration']:.0f}"],
         ["total", f"{breakdown['total']:.0f}"]]))
    print()

    print(f"Measuring the automatic framework on a {num_switches}-switch ring ...")
    result = run_single_configuration(ring_topology(num_switches))
    milestones = sorted(result.milestones.items(), key=lambda item: item[1])
    print(format_table(["milestone", "time (s)"],
                       [[name, f"{when:.1f}"] for name, when in milestones]))
    print()
    print(f"Automatic total: {result.auto_seconds / 60:.1f} min   "
          f"Manual total: {result.manual_seconds / 60:.0f} min   "
          f"Speed-up: {result.speedup:.0f}x")


if __name__ == "__main__":
    main()
