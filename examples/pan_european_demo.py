#!/usr/bin/env python3
"""The paper's demonstration: video over the auto-configured pan-European network.

A video server (Stockholm) streams towards a remote client (Madrid) starting
at t = 0, when the RF-controller holds no configuration at all.  The
framework discovers the 28-switch topology, creates the VMs, writes the
Quagga configurations, waits for OSPF and pushes the routes down as flows;
the script reports when the first video frame reached the client and writes
the GUI state as a Graphviz file.

Run with:  python examples/pan_european_demo.py
"""

from __future__ import annotations

import pathlib

from repro.experiments import render_demo_report, run_demo


def main() -> None:
    result = run_demo(max_time=1800.0)
    print(render_demo_report(result))

    # The per-switch red→green timeline the demo GUI animates.
    print()
    print("Green-transition timeline (first ten switches):")
    for when, dpid in result.green_timeline[:10]:
        print(f"  {when:7.1f} s  switch {dpid}")

    output = pathlib.Path("pan_european_gui.json")
    output.write_text(result.gui_text + "\n")
    print(f"\nGUI snapshot written to {output}")


if __name__ == "__main__":
    main()
