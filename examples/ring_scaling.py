#!/usr/bin/env python3
"""Figure 3 reproduction: configuration time as the ring topology grows.

Sweeps ring topologies from 4 to 28 switches, automatically configuring each
from scratch, and prints the automatic-vs-manual comparison table the paper
plots in Figure 3.

Run with:  python examples/ring_scaling.py [max_switches]
"""

from __future__ import annotations

import sys

from repro.experiments import render_config_time_table, run_config_time_sweep


def main() -> None:
    max_switches = int(sys.argv[1]) if len(sys.argv) > 1 else 28
    sizes = [size for size in (4, 8, 12, 16, 20, 24, 28) if size <= max_switches]
    print(f"Running the configuration-time sweep for ring sizes {sizes} ...")
    results = run_config_time_sweep(ring_sizes=sizes)
    print()
    print(render_config_time_table(results))
    print()
    largest = results[-1]
    print(f"At {largest.num_switches} switches the automatic framework needs "
          f"{largest.auto_minutes:.1f} minutes; the manual procedure needs "
          f"{largest.manual_minutes / 60:.1f} hours.")


if __name__ == "__main__":
    main()
