#!/usr/bin/env python3
"""Interdomain quickstart: three autonomous systems over one OpenFlow fabric.

The script builds three ASes of three routers each (rings stitched into a
ring of ASes by eBGP border links), lets the framework auto-configure the
whole thing — zebra + ospfd + bgpd per VM, eBGP on the borders, an iBGP
full mesh per AS, OSPF↔BGP redistribution at the border routers — and
then flaps one eBGP border link to show the withdrawal lifecycle: both
sessions drop, the routes learned over them leave every FIB and flow
table (OFPFC_DELETE), traffic reroutes over the surviving borders, and
everything comes back when the link does.

Run with:  python examples/interdomain.py
"""

from __future__ import annotations

from repro.experiments import render_interdomain_table, run_interdomain
from repro.scenarios import ScenarioSpec


def main() -> None:
    spec = ScenarioSpec(
        "interdomain-demo", "multi-as", {"num_ases": 3, "as_size": 3},
        interdomain=True,
        framework={"vm_boot_delay": 1.0},
        max_time=600.0,
        description="3 ASes x 3-router rings, eBGP border ring")
    result = run_interdomain(spec, flap=True)
    print(render_interdomain_table([result]))
    print()
    if result.healthy:
        flap = result.flap
        print(f"interdomain reachability in {result.configured_seconds:.1f} s "
              f"simulated; {result.ebgp_sessions} eBGP + "
              f"{result.ibgp_sessions} iBGP sessions established")
        print(f"border {flap.node_a}<->{flap.node_b} flap: "
              f"{flap.withdrawn_flow_mods} flows withdrawn "
              f"(OFPFC_DELETE), reconverged in "
              f"{flap.down_reconverge_seconds:.1f} s, restored and "
              f"re-advertised in {flap.restore_reconverge_seconds:.1f} s")
    else:
        for violation in result.redistribution_violations:
            print(f"VIOLATION: {violation}")
        raise SystemExit(1)


if __name__ == "__main__":
    main()
