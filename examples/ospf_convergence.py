#!/usr/bin/env python3
"""Drive the Quagga substrate directly: three VMs forming OSPF adjacencies.

This example skips the OpenFlow/controller layers entirely and exercises the
routing control platform the way RouteFlow does internally: three virtual
machines are wired in a line by the RouteFlow virtual switch, each boots
zebra + ospfd from generated configuration files, and the script prints the
adjacency states and routing tables as the protocol converges.

Run with:  python examples/ospf_convergence.py
"""

from __future__ import annotations

from repro.net import IPv4Address, IPv4Network
from repro.quagga import InterfaceConfig, OSPFNetworkStatement, Vtysh, generate_ospfd_conf, generate_zebra_conf
from repro.routeflow import RFVirtualSwitch, VirtualMachine
from repro.sim import Simulator


def configure(vm: VirtualMachine, router_id: str, interfaces) -> None:
    iface_configs = [InterfaceConfig(name, IPv4Address(ip), plen)
                     for name, ip, plen in interfaces]
    vm.write_config_file("zebra.conf", generate_zebra_conf(vm.name, iface_configs))
    statements = [OSPFNetworkStatement(IPv4Network((IPv4Address(ip), plen)))
                  for _, ip, plen in interfaces]
    vm.write_config_file("ospfd.conf", generate_ospfd_conf(
        f"{vm.name}-ospfd", IPv4Address(router_id), statements,
        hello_interval=5, dead_interval=20))


def main() -> None:
    sim = Simulator()
    rfvs = RFVirtualSwitch(sim)
    vms = {index: VirtualMachine(sim, vm_id=index, num_ports=2, boot_delay=2.0)
           for index in (1, 2, 3)}
    rfvs.connect(vms[1].interface("eth1"), vms[2].interface("eth1"))
    rfvs.connect(vms[2].interface("eth2"), vms[3].interface("eth1"))

    configure(vms[1], "10.0.0.1", [("eth1", "172.16.0.1", 30), ("eth2", "192.168.1.1", 24)])
    configure(vms[2], "10.0.0.2", [("eth1", "172.16.0.2", 30), ("eth2", "172.16.0.5", 30)])
    configure(vms[3], "10.0.0.3", [("eth1", "172.16.0.6", 30), ("eth2", "192.168.3.1", 24)])
    for vm in vms.values():
        vm.start()

    for checkpoint in (10.0, 30.0, 60.0):
        sim.run(until=checkpoint)
        print(f"===== t = {checkpoint:.0f} s =====")
        for vm in vms.values():
            vtysh = Vtysh(vm.zebra, ospf=vm.ospf)
            print(vtysh.show_ip_ospf_neighbor())
        print()

    print("===== final routing tables =====")
    for vm in vms.values():
        print(Vtysh(vm.zebra, ospf=vm.ospf).show_ip_route())
        print()

    remote = IPv4Network("192.168.3.0/24")
    route = vms[1].zebra.fib.get(remote)
    print(f"VM-1's route to {remote}: {route}")


if __name__ == "__main__":
    main()
