"""Setuptools entry point.

The pinned toolchain in the reproduction environment lacks the ``wheel``
package, so editable installs go through the legacy ``setup.py develop``
path; all real metadata lives in ``pyproject.toml``/``setup.cfg``.
"""

from setuptools import setup

setup()
