"""Tests for the OpenFlow 1.0 wire codec: match, actions, messages."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net import Ethernet, EtherType, IPv4, IPv4Address, MACAddress, UDP
from repro.net.ipv4 import IPProtocol
from repro.net.packet import DecodeError
from repro.openflow import (
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    Match,
    OFPFlowModCommand,
    OFPPort,
    OFPType,
    OpenFlowMessage,
    OutputAction,
    PacketFields,
    PacketIn,
    PacketOut,
    PhyPort,
    PortStatus,
    SetDlDstAction,
    SetDlSrcAction,
    SetNwDstAction,
    SetNwSrcAction,
    SetTpDstAction,
    SetTpSrcAction,
    SetVlanVidAction,
    StripVlanAction,
    decode_message,
)
from repro.openflow.actions import Action
from repro.openflow.constants import OFP_VERSION, OFPFlowWildcards
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    StatsReply,
    StatsRequest,
)

MAC = MACAddress("02:00:00:00:00:0a")
IP = IPv4Address("10.1.2.3")


def sample_frame(dst_ip="10.9.9.9", dport=80) -> bytes:
    packet = IPv4(src=IPv4Address("10.1.1.1"), dst=IPv4Address(dst_ip),
                  protocol=IPProtocol.UDP, payload=UDP(1234, dport, b"x"))
    return Ethernet(src=MACAddress(1), dst=MACAddress(2),
                    ethertype=EtherType.IPV4, payload=packet).encode()


class TestMatch:
    def test_wildcard_all_matches_everything(self):
        match = Match.wildcard_all()
        fields = PacketFields.from_frame(sample_frame(), in_port=3)
        assert match.matches(fields)

    def test_encode_length_is_40(self):
        assert len(Match.wildcard_all().encode()) == 40

    def test_roundtrip(self):
        match = Match.wildcard_all()
        match.set_in_port(7).set_dl_type(EtherType.IPV4)
        match.set_nw_dst(IPv4Address("10.9.0.0"), 16).set_tp_dst(80)
        decoded = Match.decode(match.encode())
        assert decoded == match
        assert decoded.nw_dst_prefix_len == 16

    def test_destination_prefix_match(self):
        match = Match.for_destination_prefix(IPv4Address("10.9.0.0"), 16)
        assert match.matches(PacketFields.from_frame(sample_frame("10.9.1.2")))
        assert not match.matches(PacketFields.from_frame(sample_frame("10.8.1.2")))

    def test_in_port_match(self):
        match = Match.wildcard_all().set_in_port(4)
        assert match.matches(PacketFields.from_frame(sample_frame(), in_port=4))
        assert not match.matches(PacketFields.from_frame(sample_frame(), in_port=5))

    def test_transport_port_match_requires_value(self):
        match = Match.wildcard_all().set_dl_type(EtherType.IPV4).set_tp_dst(80)
        assert match.matches(PacketFields.from_frame(sample_frame(dport=80)))
        assert not match.matches(PacketFields.from_frame(sample_frame(dport=81)))

    def test_exact_from_fields_matches_own_packet(self):
        fields = PacketFields.from_frame(sample_frame(), in_port=2)
        match = Match.exact_from_fields(fields)
        assert match.is_exact
        assert match.matches(fields)

    def test_covers_wider_prefix_covers_narrower(self):
        wide = Match.for_destination_prefix(IPv4Address("10.0.0.0"), 8)
        narrow = Match.for_destination_prefix(IPv4Address("10.9.0.0"), 16)
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_covers_wildcard_all_covers_everything(self):
        assert Match.wildcard_all().covers(
            Match.for_destination_prefix(IPv4Address("10.0.0.0"), 24))

    def test_truncated_match_rejected(self):
        with pytest.raises(DecodeError):
            Match.decode(b"\x00" * 20)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=32))
    def test_prefix_roundtrip_property(self, base, plen):
        match = Match.wildcard_all().set_dl_type(EtherType.IPV4)
        match.set_nw_dst(IPv4Address(base), plen)
        decoded = Match.decode(match.encode())
        assert decoded.nw_dst_prefix_len == plen
        assert decoded == match


class TestActions:
    ALL_ACTIONS = [
        OutputAction(3),
        OutputAction(OFPPort.CONTROLLER, max_len=64),
        SetVlanVidAction(101),
        StripVlanAction(),
        SetDlSrcAction(MAC),
        SetDlDstAction(MAC),
        SetNwSrcAction(IP),
        SetNwDstAction(IP),
        SetTpSrcAction(8080),
        SetTpDstAction(9090),
    ]

    def test_each_action_roundtrips(self):
        for action in self.ALL_ACTIONS:
            decoded = Action.decode_list(action.encode())
            assert len(decoded) == 1
            assert decoded[0] == action

    def test_action_list_roundtrip(self):
        encoded = Action.encode_list(self.ALL_ACTIONS)
        decoded = Action.decode_list(encoded)
        assert decoded == self.ALL_ACTIONS

    def test_lengths_are_multiples_of_8(self):
        for action in self.ALL_ACTIONS:
            assert len(action.encode()) % 8 == 0

    def test_bad_length_rejected(self):
        with pytest.raises(DecodeError):
            Action.decode_list(b"\x00\x00\x00\x04")

    def test_set_dl_dst_apply_rewrites_frame(self):
        frame = Ethernet.decode(sample_frame())
        SetDlDstAction(MAC).apply(frame)
        assert frame.dst == MAC

    def test_set_nw_dst_apply_rewrites_packet(self):
        frame = Ethernet.decode(sample_frame())
        SetNwDstAction(IP).apply(frame)
        assert frame.payload.dst == IP

    def test_set_tp_dst_apply_rewrites_udp(self):
        frame = Ethernet.decode(sample_frame())
        SetTpDstAction(4444).apply(frame)
        assert frame.payload.payload.dst_port == 4444

    def test_vlan_actions_apply(self):
        frame = Ethernet.decode(sample_frame())
        SetVlanVidAction(7).apply(frame)
        assert frame.vlan == 7
        StripVlanAction().apply(frame)
        assert frame.vlan is None


class TestMessages:
    def roundtrip(self, message):
        decoded = OpenFlowMessage.decode(message.encode())
        assert type(decoded) is type(message)
        assert decoded.xid == message.xid
        return decoded

    def test_header_version_and_length(self):
        data = Hello(xid=9).encode()
        assert data[0] == OFP_VERSION
        assert data[1] == OFPType.HELLO
        assert int.from_bytes(data[2:4], "big") == len(data)

    def test_hello_and_barrier(self):
        self.roundtrip(Hello(xid=1))
        self.roundtrip(BarrierRequest(xid=2))
        self.roundtrip(BarrierReply(xid=3))
        self.roundtrip(FeaturesRequest(xid=4))

    def test_echo_roundtrip_preserves_data(self):
        decoded = self.roundtrip(EchoRequest(data=b"probe", xid=5))
        assert decoded.data == b"probe"
        decoded = self.roundtrip(EchoReply(data=b"probe", xid=6))
        assert decoded.data == b"probe"

    def test_error_roundtrip(self):
        decoded = self.roundtrip(ErrorMessage(error_type=3, code=2, data=b"ctx", xid=7))
        assert decoded.error_type == 3 and decoded.code == 2 and decoded.data == b"ctx"

    def test_features_reply_roundtrip(self):
        ports = [PhyPort(port_no=1, hw_addr=MAC, name="s1-eth1"),
                 PhyPort(port_no=2, hw_addr=MAC, name="s1-eth2")]
        message = FeaturesReply(datapath_id=0x1234, ports=ports, n_buffers=64,
                                n_tables=2, xid=8)
        decoded = self.roundtrip(message)
        assert decoded.datapath_id == 0x1234
        assert decoded.n_buffers == 64
        assert decoded.ports == ports
        assert decoded.ports[1].name == "s1-eth2"

    def test_packet_in_roundtrip(self):
        frame = sample_frame()
        message = PacketIn(buffer_id=77, in_port=4, reason=0, data=frame, xid=9)
        decoded = self.roundtrip(message)
        assert decoded.buffer_id == 77
        assert decoded.in_port == 4
        assert decoded.data == frame
        assert decoded.total_len == len(frame)

    def test_packet_out_roundtrip(self):
        message = PacketOut(in_port=OFPPort.NONE,
                            actions=[SetDlDstAction(MAC), OutputAction(2)],
                            data=b"frame-bytes", xid=10)
        decoded = self.roundtrip(message)
        assert decoded.actions == message.actions
        assert decoded.data == b"frame-bytes"

    def test_flow_mod_roundtrip(self):
        match = Match.for_destination_prefix(IPv4Address("10.2.0.0"), 16)
        message = FlowMod(match=match, command=OFPFlowModCommand.ADD,
                          actions=[OutputAction(5)], priority=4321,
                          idle_timeout=30, hard_timeout=300, cookie=0xdead,
                          xid=11)
        decoded = self.roundtrip(message)
        assert decoded.match == match
        assert decoded.command == OFPFlowModCommand.ADD
        assert decoded.priority == 4321
        assert decoded.idle_timeout == 30 and decoded.hard_timeout == 300
        assert decoded.cookie == 0xdead
        assert decoded.actions == [OutputAction(5)]

    def test_flow_removed_roundtrip(self):
        match = Match.for_destination_prefix(IPv4Address("10.2.0.0"), 16)
        message = FlowRemoved(match=match, cookie=1, priority=2, reason=0,
                              duration_sec=60, idle_timeout=10,
                              packet_count=100, byte_count=6400, xid=12)
        decoded = self.roundtrip(message)
        assert decoded.packet_count == 100 and decoded.byte_count == 6400
        assert decoded.match == match

    def test_port_status_roundtrip(self):
        port = PhyPort(port_no=3, hw_addr=MAC, name="s1-eth3", state=1)
        decoded = self.roundtrip(PortStatus(reason=2, port=port, xid=13))
        assert decoded.reason == 2
        assert decoded.port == port
        assert decoded.port.is_link_down

    def test_stats_roundtrip(self):
        decoded = self.roundtrip(StatsRequest(stats_type=1, body_bytes=b"q", xid=14))
        assert decoded.stats_type == 1 and decoded.body_bytes == b"q"
        decoded = self.roundtrip(StatsReply(stats_type=1, body_bytes=b"r", xid=15))
        assert decoded.body_bytes == b"r"

    def test_unknown_type_is_carried_opaquely(self):
        raw = bytes([OFP_VERSION, 30, 0, 9, 0, 0, 0, 1, 0xAB])
        decoded = decode_message(raw)
        assert decoded.msg_type == 30
        assert decoded.encode() == raw

    def test_wrong_version_rejected(self):
        raw = bytearray(Hello(xid=1).encode())
        raw[0] = 0x04
        with pytest.raises(DecodeError):
            decode_message(bytes(raw))

    def test_truncated_message_rejected(self):
        raw = Hello(xid=1).encode()[:4]
        with pytest.raises(DecodeError):
            decode_message(raw)

    def test_length_field_honoured(self):
        raw = PacketIn(buffer_id=1, in_port=1, reason=0, data=b"abc", xid=1).encode()
        with pytest.raises(DecodeError):
            decode_message(raw[:-1])

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=64))
    def test_echo_roundtrip_property(self, xid, data):
        decoded = decode_message(EchoRequest(data=data, xid=xid).encode())
        assert isinstance(decoded, EchoRequest)
        assert decoded.xid == xid and decoded.data == data

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=65535),
           st.integers(min_value=0, max_value=65535))
    def test_flow_mod_roundtrip_property(self, priority, out_port, idle, hard):
        message = FlowMod(match=Match.wildcard_all(), priority=priority,
                          out_port=out_port, idle_timeout=idle, hard_timeout=hard,
                          actions=[OutputAction(1)])
        decoded = decode_message(message.encode())
        assert decoded.priority == priority and decoded.out_port == out_port
        assert decoded.idle_timeout == idle and decoded.hard_timeout == hard
