"""Tests for topology descriptions, generators, the pan-European map and the emulator."""

from __future__ import annotations

import pytest

from repro.core.ipam import IPAddressManager
from repro.topology import (
    EmulatedNetwork,
    PAN_EUROPEAN_CITIES,
    PAN_EUROPEAN_LINKS,
    Topology,
    TopologyError,
    dumbbell_topology,
    fat_tree_topology,
    full_mesh_topology,
    great_circle_km,
    linear_topology,
    link_delay_seconds,
    pan_european_topology,
    random_topology,
    ring_topology,
    star_topology,
    torus_topology,
    tree_topology,
    waxman_topology,
)


class TestTopologyGraph:
    def test_add_nodes_links_hosts(self):
        topology = Topology("t")
        topology.add_node(1, "a")
        topology.add_node(2, "b")
        topology.add_link(1, 2, delay=0.005)
        topology.attach_host("h1", 1)
        assert topology.num_nodes == 2
        assert topology.num_links == 1
        assert topology.node_by_name("b").node_id == 2
        assert topology.neighbors(1) == [2]
        assert topology.degree(2) == 1
        assert [h.host_name for h in topology.hosts_on(1)] == ["h1"]

    def test_duplicate_node_rejected(self):
        topology = Topology("t")
        topology.add_node(1)
        with pytest.raises(TopologyError):
            topology.add_node(1)

    def test_non_positive_node_id_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t").add_node(0)

    def test_link_validation(self):
        topology = Topology("t")
        topology.add_node(1)
        topology.add_node(2)
        with pytest.raises(TopologyError):
            topology.add_link(1, 3)
        with pytest.raises(TopologyError):
            topology.add_link(1, 1)
        topology.add_link(1, 2)
        with pytest.raises(TopologyError):
            topology.add_link(2, 1)  # duplicate in either direction

    def test_host_validation(self):
        topology = Topology("t")
        topology.add_node(1)
        topology.attach_host("h", 1)
        with pytest.raises(TopologyError):
            topology.attach_host("h", 1)
        with pytest.raises(TopologyError):
            topology.attach_host("other", 9)

    def test_connectivity_check(self):
        topology = Topology("t")
        for node in (1, 2, 3):
            topology.add_node(node)
        topology.add_link(1, 2)
        assert not topology.is_connected()
        topology.add_link(2, 3)
        assert topology.is_connected()
        assert not Topology("empty").is_connected()


class TestGenerators:
    def test_ring_shape(self):
        topology = ring_topology(6)
        assert topology.num_nodes == 6
        assert topology.num_links == 6
        assert all(topology.degree(n.node_id) == 2 for n in topology.nodes)
        assert topology.is_connected()

    def test_ring_minimum_size(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_linear_shape(self):
        topology = linear_topology(5)
        assert topology.num_links == 4
        assert topology.degree(1) == 1 and topology.degree(3) == 2

    def test_star_shape(self):
        topology = star_topology(4)
        assert topology.num_nodes == 5
        assert topology.degree(1) == 4

    def test_tree_shape(self):
        topology = tree_topology(depth=2, fanout=2)
        assert topology.num_nodes == 7
        assert topology.num_links == 6
        assert topology.is_connected()

    def test_full_mesh_shape(self):
        topology = full_mesh_topology(5)
        assert topology.num_links == 10
        assert all(topology.degree(n.node_id) == 4 for n in topology.nodes)

    def test_random_topology_connected_and_reproducible(self):
        one = random_topology(12, extra_link_probability=0.2, seed=3)
        two = random_topology(12, extra_link_probability=0.2, seed=3)
        other = random_topology(12, extra_link_probability=0.2, seed=4)
        assert one.is_connected()
        assert {l.canonical() for l in one.links} == {l.canonical() for l in two.links}
        assert {l.canonical() for l in one.links} != {l.canonical() for l in other.links}

    def test_random_topology_probability_bounds(self):
        with pytest.raises(TopologyError):
            random_topology(5, extra_link_probability=1.5)

    def test_random_topology_never_duplicates_tree_links(self):
        # Regression: with probability 1.0 the extra-link pass visits every
        # pair, so any spanning-tree link missing from the dedup set would
        # raise a duplicate-link TopologyError.  The result must be exactly
        # the complete graph, under any seed.
        for seed in range(10):
            topology = random_topology(9, extra_link_probability=1.0, seed=seed)
            assert topology.num_links == 9 * 8 // 2
            canonicals = [l.canonical() for l in topology.links]
            assert len(canonicals) == len(set(canonicals))


class TestFatTree:
    def test_k4_shape(self):
        topology = fat_tree_topology(4)
        assert topology.num_nodes == 20
        assert topology.num_links == 32
        assert topology.is_connected()
        # Cores uplink once per pod (degree k); aggregation switches carry
        # k/2 uplinks + k/2 downlinks; edge switches keep their k/2 host
        # ports free, so their switch-graph degree is k/2.
        for core in range(1, 5):
            assert topology.degree(core) == 4
        for node in topology.nodes:
            expected = 2 if node.name.startswith("edge") else 4
            assert topology.degree(node.node_id) == expected

    def test_k6_counts(self):
        topology = fat_tree_topology(6)
        assert topology.num_nodes == 9 + 6 * 6
        assert topology.num_links == 9 * 6 + 6 * 9
        assert topology.is_connected()

    def test_odd_or_tiny_arity_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree_topology(3)
        with pytest.raises(TopologyError):
            fat_tree_topology(0)


class TestTorus:
    def test_wrapped_torus_is_degree_4(self):
        topology = torus_topology(4, 5)
        assert topology.num_nodes == 20
        assert topology.num_links == 40
        assert all(topology.degree(n.node_id) == 4 for n in topology.nodes)
        assert topology.is_connected()

    def test_grid_without_wrap(self):
        topology = torus_topology(3, 4, wrap=False)
        assert topology.num_nodes == 12
        assert topology.num_links == 3 * 3 + 2 * 4
        assert topology.degree(1) == 2  # corner
        assert topology.is_connected()

    def test_size_two_dimension_not_double_linked(self):
        # Wrapping a dimension of size 2 would duplicate the grid link.
        topology = torus_topology(2, 3)
        canonicals = [l.canonical() for l in topology.links]
        assert len(canonicals) == len(set(canonicals))
        assert topology.is_connected()

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            torus_topology(1, 5)


class TestWaxman:
    def test_connected_and_deterministic(self):
        one = waxman_topology(24, seed=5)
        two = waxman_topology(24, seed=5)
        other = waxman_topology(24, seed=6)
        assert one.is_connected()
        assert {l.canonical() for l in one.links} == {l.canonical() for l in two.links}
        assert {l.canonical() for l in one.links} != {l.canonical() for l in other.links}

    def test_delays_follow_distance(self):
        topology = waxman_topology(16, seed=0)
        delays = [l.delay for l in topology.links]
        assert all(d > 0 for d in delays)
        assert max(delays) > min(delays)

    def test_sparse_parameters_still_connected(self):
        # Tiny alpha draws almost no random links; stitching must connect.
        topology = waxman_topology(12, alpha=0.01, beta=0.05, seed=3)
        assert topology.is_connected()

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            waxman_topology(1)
        with pytest.raises(TopologyError):
            waxman_topology(5, alpha=0.0)
        with pytest.raises(TopologyError):
            waxman_topology(5, beta=-1.0)


class TestDumbbell:
    def test_shape_with_trunk(self):
        topology = dumbbell_topology(3, 4, trunk_switches=2)
        assert topology.num_nodes == 2 + 2 + 3 + 4
        assert topology.num_links == 3 + 3 + 4
        assert topology.is_connected()
        assert topology.degree(topology.node_by_name("hub-left").node_id) == 4

    def test_trunk_is_the_bottleneck(self):
        topology = dumbbell_topology(2, 2)
        trunk = next(l for l in topology.links if {l.node_a, l.node_b} == {1, 2})
        leaf = next(l for l in topology.links if 1 in (l.node_a, l.node_b)
                    and l is not trunk)
        assert trunk.bandwidth_bps < leaf.bandwidth_bps
        assert trunk.delay > leaf.delay

    def test_validation(self):
        with pytest.raises(TopologyError):
            dumbbell_topology(0, 3)
        with pytest.raises(TopologyError):
            dumbbell_topology(2, 2, trunk_switches=-1)


class TestPanEuropean:
    def test_has_28_nodes_and_42_links(self):
        topology = pan_european_topology()
        assert topology.num_nodes == 28
        assert topology.num_links == 42
        assert len(PAN_EUROPEAN_CITIES) == 28
        assert len(PAN_EUROPEAN_LINKS) == 42

    def test_connected_and_named_after_cities(self):
        topology = pan_european_topology()
        assert topology.is_connected()
        assert topology.node_by_name("Madrid") is not None
        assert topology.node_by_name("Stockholm") is not None

    def test_no_degree_zero_nodes(self):
        topology = pan_european_topology()
        assert all(topology.degree(node.node_id) >= 2 for node in topology.nodes)

    def test_link_delays_follow_distance(self):
        topology = pan_european_topology()
        athens = topology.node_by_name("Athens").node_id
        rome = topology.node_by_name("Rome").node_id
        amsterdam = topology.node_by_name("Amsterdam").node_id
        brussels = topology.node_by_name("Brussels").node_id
        delay_long = next(l.delay for l in topology.links
                          if {l.node_a, l.node_b} == {athens, rome})
        delay_short = next(l.delay for l in topology.links
                           if {l.node_a, l.node_b} == {amsterdam, brussels})
        assert delay_long > delay_short > 0

    def test_great_circle_distance_sanity(self):
        paris = next(c for c in PAN_EUROPEAN_CITIES if c[0] == "Paris")
        london = next(c for c in PAN_EUROPEAN_CITIES if c[0] == "London")
        distance = great_circle_km(paris[1], paris[2], london[1], london[2])
        assert 300 < distance < 400
        assert link_delay_seconds(distance) == pytest.approx(
            distance * 1.3 * 1000 / 2e8)


class TestEmulator:
    def test_builds_switches_and_ports(self, sim):
        network = EmulatedNetwork(sim, ring_topology(4))
        assert network.num_switches == 4
        for switch in network.switches.values():
            assert sorted(switch.ports) == [1, 2]
        assert len(network.links) == 4

    def test_link_port_lookup_is_symmetric(self, sim):
        network = EmulatedNetwork(sim, linear_topology(3))
        port_12, port_21 = network.ports_for_link(1, 2)
        port_21_b, port_12_b = network.ports_for_link(2, 1)
        assert (port_12, port_21) == (port_12_b, port_21_b)

    def test_hosts_get_addresses_from_shared_ipam(self, sim):
        ipam = IPAddressManager()
        topology = linear_topology(2)
        topology.attach_host("h1", 1)
        topology.attach_host("h2", 2)
        network = EmulatedNetwork(sim, topology, ipam=ipam)
        info = network.host_info("h1")
        allocation = ipam.edge_allocation(info.datapath_id, info.port_no)
        assert allocation is not None
        assert network.host("h1").ip in allocation.network
        assert info.gateway == allocation.gateway
        assert network.host("h1").gateway == allocation.gateway

    def test_namespaces_created_per_device(self, sim):
        topology = linear_topology(2)
        topology.attach_host("h1", 1)
        network = EmulatedNetwork(sim, topology)
        assert len(network.namespaces) == 3
        assert "h1" in network.namespaces

    def test_fail_link_brings_link_down(self, sim):
        network = EmulatedNetwork(sim, linear_topology(2))
        network.fail_link(1, 2)
        port_a, _ = network.ports_for_link(1, 2)
        assert not network.switch(1).port(port_a).interface.link.up

    def test_control_plane_connection_staggered(self, sim):
        from repro.controller import Controller

        controller = Controller(sim)
        network = EmulatedNetwork(sim, ring_topology(5))
        network.connect_control_plane(controller.accept_channel, controller)
        sim.run(until=0.05)
        assert len(controller.connected_datapaths) <= 1
        sim.run(until=3.0)
        assert controller.connected_datapaths == [1, 2, 3, 4, 5]
