"""Golden-trace regression tests for the simulation hot paths.

These tests pin the *observable output* of the simulator: the exact
sequence of executed events (time + event name), the OSPF route table a
converged VM ends up with, and the sweep CSV rows.  The golden files under
``tests/data/`` were captured from the unoptimized seed implementation, so
any hot-path optimization (tuple event heap, LSDB graph caching, address
interning, encode memoization) must leave every byte of this output
unchanged or these tests fail.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_trace.py regen
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_TRACE = DATA_DIR / "golden_ring4_trace.json"
GOLDEN_SWEEP = DATA_DIR / "golden_sweep.csv"

#: Scenarios pinned by the sweep golden file.  Both families are fully
#: deterministic (no random generator parameters beyond the fixed seed).
SWEEP_SCENARIOS = ("ring-4", "grid-3x4", "fat-tree-k4")


def run_traced_ring4():
    """Configure a 4-switch ring, recording every executed event.

    Returns (trace_lines, configured_at, route_table_text).  This mirrors
    :func:`repro.experiments.config_time.run_single_configuration` but keeps
    hold of the simulator so a trace hook can be attached.
    """
    from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
    from repro.sim import Simulator
    from repro.topology.emulator import EmulatedNetwork
    from repro.topology.generators import ring_topology

    sim = Simulator()
    trace = []
    sim.add_trace_hook(lambda event: trace.append(f"{event.time!r} {event.name}"))
    ipam = IPAddressManager()
    framework = AutoConfigFramework(
        sim, config=FrameworkConfig(detect_edge_ports=False), ipam=ipam)
    network = EmulatedNetwork(sim, ring_topology(4), ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=3600.0)
    route_table = framework.rfserver.vm(1).zebra.show_ip_route()
    return trace, configured_at, route_table


def sweep_csv_text():
    """Run the pinned sweep serially and return the CSV file contents."""
    import csv

    from repro.experiments.sweep import run_sweep

    results = run_sweep(list(SWEEP_SCENARIOS), workers=1)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["scenario", "family", "seed", "switches", "links",
                     "auto_seconds", "manual_seconds", "speedup"])
    for result in results:
        writer.writerow([result.scenario, result.family, result.seed,
                         result.num_switches, result.num_links,
                         result.auto_seconds, result.manual_seconds,
                         result.speedup])
    return buffer.getvalue()


def trace_digest(trace_lines):
    return hashlib.sha256("\n".join(trace_lines).encode()).hexdigest()


def build_golden_payload():
    trace, configured_at, route_table = run_traced_ring4()
    return {
        "scenario": "ring-4 autoconfiguration",
        "num_events": len(trace),
        "configured_at": configured_at,
        "trace_sha256": trace_digest(trace),
        "trace_head": trace[:5],
        "trace_tail": trace[-5:],
        "route_table": route_table,
    }


class TestGoldenEventTrace:
    def test_ring4_event_trace_is_byte_identical(self):
        golden = json.loads(GOLDEN_TRACE.read_text())
        payload = build_golden_payload()
        # Compare the cheap fields first so a mismatch is diagnosable before
        # falling back to the all-or-nothing hash.
        assert payload["num_events"] == golden["num_events"]
        assert payload["configured_at"] == golden["configured_at"]
        assert payload["trace_head"] == golden["trace_head"]
        assert payload["trace_tail"] == golden["trace_tail"]
        assert payload["route_table"] == golden["route_table"]
        assert payload["trace_sha256"] == golden["trace_sha256"]

    def test_sweep_csv_is_byte_identical(self):
        assert sweep_csv_text() == GOLDEN_SWEEP.read_text()


def regen():
    DATA_DIR.mkdir(exist_ok=True)
    GOLDEN_TRACE.write_text(json.dumps(build_golden_payload(), indent=2) + "\n")
    GOLDEN_SWEEP.write_text(sweep_csv_text())
    print(f"wrote {GOLDEN_TRACE}")
    print(f"wrote {GOLDEN_SWEEP}")


if __name__ == "__main__":
    import sys

    if len(sys.argv) > 1 and sys.argv[1] == "regen":
        regen()
    else:
        print(__doc__)
