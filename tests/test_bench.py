"""Tests for the hot-path benchmark harness (`repro bench`)."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.bench import (
    BENCHMARKS,
    check_regressions,
    read_bench_json,
    render_bench_table,
    write_bench_json,
)


def doc(**benches) -> dict:
    return {"schema": 1, "created_unix": 0.0, "calibration_seconds": 0.5,
            "benchmarks": benches}


class TestCheckRegressions:
    def test_identical_documents_pass(self):
        base = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0, "events": 7})
        assert check_regressions(base, base) == []

    def test_within_tolerance_passes(self):
        base = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0})
        current = doc(kernel={"wall_seconds": 5.0, "normalized": 2.3})
        assert check_regressions(current, base, tolerance=0.20) == []

    def test_normalized_regression_fails(self):
        base = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0})
        current = doc(kernel={"wall_seconds": 1.0, "normalized": 2.5})
        failures = check_regressions(current, base, tolerance=0.20)
        assert len(failures) == 1
        assert "kernel" in failures[0]

    def test_faster_wall_but_worse_normalized_still_fails(self):
        # A faster machine must not mask an algorithmic regression.
        base = doc(kernel={"wall_seconds": 10.0, "normalized": 2.0})
        current = doc(kernel={"wall_seconds": 5.0, "normalized": 4.0})
        assert check_regressions(current, base) != []

    def test_deterministic_output_drift_fails_even_when_faster(self):
        base = doc(conv={"wall_seconds": 5.0, "normalized": 10.0,
                         "sim_seconds": 333.0})
        current = doc(conv={"wall_seconds": 1.0, "normalized": 1.0,
                            "sim_seconds": 335.0})
        failures = check_regressions(current, base)
        assert any("sim_seconds" in failure for failure in failures)

    def test_missing_current_benchmark_fails(self):
        base = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0})
        assert check_regressions(doc(), base) != []

    def test_extra_current_benchmark_is_fine(self):
        base = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0})
        current = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0},
                      new_bench={"wall_seconds": 9.0, "normalized": 9.0})
        assert check_regressions(current, base) == []


class TestBenchDocument:
    def test_json_roundtrip(self, tmp_path):
        document = doc(kernel={"wall_seconds": 1.0, "normalized": 2.0})
        path = write_bench_json(document, tmp_path / "BENCH_TEST.json")
        assert read_bench_json(path) == document

    def test_render_table_mentions_every_benchmark(self):
        document = doc(alpha={"wall_seconds": 1.0, "normalized": 2.0},
                       beta={"wall_seconds": 0.5, "normalized": 1.0,
                             "routes": 64})
        table = render_bench_table(document)
        assert "alpha" in table and "beta" in table and "routes=64" in table

    def test_committed_baseline_matches_registered_suite(self):
        baseline = read_bench_json(
            Path(__file__).parent.parent / "benchmarks" / "BENCH_BASELINE.json")
        assert set(baseline["benchmarks"]) == set(BENCHMARKS)
        for entry in baseline["benchmarks"].values():
            assert entry["normalized"] > 0
        convergence = baseline["benchmarks"]["convergence_64"]
        assert convergence["switches"] == 64
