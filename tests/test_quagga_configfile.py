"""Tests for Quagga configuration file generation and parsing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net import IPv4Address, IPv4Network
from repro.quagga import (
    BGPNeighbor,
    ConfigError,
    InterfaceConfig,
    OSPFNetworkStatement,
    generate_bgpd_conf,
    generate_ospfd_conf,
    generate_zebra_conf,
    parse_bgpd_conf,
    parse_ospfd_conf,
    parse_zebra_conf,
)


class TestZebraConf:
    def test_generate_and_parse_roundtrip(self):
        interfaces = [
            InterfaceConfig("eth1", IPv4Address("172.16.0.1"), 30, "towards s2"),
            InterfaceConfig("eth2", IPv4Address("192.168.5.1"), 24),
        ]
        text = generate_zebra_conf("VM-01", interfaces)
        parsed = parse_zebra_conf(text)
        assert parsed.hostname == "VM-01"
        assert len(parsed.interfaces) == 2
        eth1 = parsed.interface("eth1")
        assert eth1.ip == IPv4Address("172.16.0.1")
        assert eth1.prefix_len == 30
        assert eth1.description == "towards s2"
        assert str(eth1.network) == "172.16.0.0/30"

    def test_generated_text_uses_quagga_syntax(self):
        text = generate_zebra_conf("vm", [InterfaceConfig("eth1", IPv4Address("10.0.0.1"), 24)])
        assert "hostname vm" in text
        assert "interface eth1" in text
        assert " ip address 10.0.0.1/24" in text
        assert "line vty" in text

    def test_interface_without_address(self):
        text = generate_zebra_conf("vm", [InterfaceConfig("eth3")])
        parsed = parse_zebra_conf(text)
        assert parsed.interface("eth3").ip is None

    def test_comments_and_blank_lines_ignored(self):
        text = "! comment\nhostname vm\n\n!\ninterface eth1\n ip address 10.0.0.1/24\n!\n"
        parsed = parse_zebra_conf(text)
        assert parsed.hostname == "vm"
        assert parsed.interface("eth1").prefix_len == 24

    def test_address_without_prefix_rejected(self):
        with pytest.raises(ConfigError):
            parse_zebra_conf("interface eth1\n ip address 10.0.0.1\n")

    def test_missing_interface_lookup_returns_none(self):
        parsed = parse_zebra_conf(generate_zebra_conf("vm", []))
        assert parsed.interface("eth9") is None

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=16),
                              st.integers(min_value=0, max_value=2**32 - 1),
                              st.integers(min_value=1, max_value=30)),
                    max_size=6, unique_by=lambda t: t[0]))
    def test_roundtrip_property(self, spec):
        interfaces = [InterfaceConfig(f"eth{port}", IPv4Address(ip), plen)
                      for port, ip, plen in spec]
        parsed = parse_zebra_conf(generate_zebra_conf("vm", interfaces))
        assert len(parsed.interfaces) == len(interfaces)
        for config in interfaces:
            found = parsed.interface(config.name)
            assert found.ip == config.ip and found.prefix_len == config.prefix_len


class TestOspfdConf:
    def test_generate_and_parse_roundtrip(self):
        networks = [OSPFNetworkStatement(IPv4Network("172.16.0.0/30")),
                    OSPFNetworkStatement(IPv4Network("192.168.5.0/24"))]
        text = generate_ospfd_conf("vm-ospfd", IPv4Address("10.0.0.1"), networks,
                                   hello_interval=5, dead_interval=20)
        parsed = parse_ospfd_conf(text)
        assert parsed.router_id == IPv4Address("10.0.0.1")
        assert parsed.hello_interval == 5
        assert parsed.dead_interval == 20
        assert len(parsed.networks) == 2
        assert parsed.networks[0].area == "0.0.0.0"

    def test_covers(self):
        parsed = parse_ospfd_conf(generate_ospfd_conf(
            "vm", IPv4Address("10.0.0.1"),
            [OSPFNetworkStatement(IPv4Network("172.16.0.0/16"))]))
        assert parsed.covers(IPv4Network("172.16.3.0/30"))
        assert not parsed.covers(IPv4Network("192.168.0.0/24"))

    def test_missing_router_id_rejected(self):
        with pytest.raises(ConfigError):
            parse_ospfd_conf("router ospf\n network 10.0.0.0/8 area 0.0.0.0\n")

    def test_defaults_when_timers_absent(self):
        parsed = parse_ospfd_conf("router ospf\n ospf router-id 1.1.1.1\n")
        assert parsed.hello_interval == 10
        assert parsed.dead_interval == 40

    def test_statements_outside_router_block_ignored(self):
        text = ("hostname h\nrouter ospf\n ospf router-id 1.1.1.1\n!\n"
                "line vty\n network 9.9.9.0/24 area 0.0.0.0\n")
        parsed = parse_ospfd_conf(text)
        assert parsed.networks == []


class TestBgpdConf:
    def test_generate_and_parse_roundtrip(self):
        neighbors = [BGPNeighbor(IPv4Address("172.16.0.2"), 65002),
                     BGPNeighbor(IPv4Address("172.16.0.6"), 65003)]
        text = generate_bgpd_conf("vm-bgpd", 65001, IPv4Address("10.0.0.1"), neighbors,
                                  networks=[IPv4Network("192.168.5.0/24")],
                                  redistribute_ospf=True)
        parsed = parse_bgpd_conf(text)
        assert parsed.local_as == 65001
        assert parsed.router_id == IPv4Address("10.0.0.1")
        assert len(parsed.neighbors) == 2
        assert parsed.neighbors[0].remote_as == 65002
        assert parsed.networks == [IPv4Network("192.168.5.0/24")]
        assert parsed.redistribute_ospf is True

    def test_minimal_config(self):
        parsed = parse_bgpd_conf("router bgp 65000\n bgp router-id 2.2.2.2\n")
        assert parsed.local_as == 65000
        assert parsed.neighbors == []
        assert parsed.redistribute_ospf is False

    def test_hostname_and_password_parsed(self):
        text = generate_bgpd_conf("hosty", 65010, IPv4Address("1.1.1.1"), [],
                                  password="secret")
        parsed = parse_bgpd_conf(text)
        assert parsed.hostname == "hosty"
        assert parsed.password == "secret"
