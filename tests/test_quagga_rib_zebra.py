"""Tests for the RIB, zebra daemon and vtysh facade."""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network
from repro.quagga import RIB, Route, RouteSource, Vtysh, ZebraDaemon

P1 = IPv4Network("10.1.0.0/24")
P2 = IPv4Network("10.2.0.0/24")
HOP_A = IPv4Address("172.16.0.1")
HOP_B = IPv4Address("172.16.0.5")


def ospf_route(prefix=P1, hop=HOP_A, metric=10, iface="eth1") -> Route:
    return Route(prefix=prefix, next_hop=hop, interface=iface,
                 source=RouteSource.OSPF, metric=metric)


class TestRIB:
    def test_add_and_lookup(self):
        rib = RIB()
        assert rib.add_route(ospf_route()) is True
        assert rib.best_route(P1).next_hop == HOP_A
        assert len(rib) == 1
        assert P1 in rib

    def test_admin_distance_prefers_connected_over_ospf(self):
        rib = RIB()
        rib.add_route(ospf_route())
        rib.add_route(Route(prefix=P1, next_hop=None, interface="eth0",
                            source=RouteSource.CONNECTED))
        best = rib.best_route(P1)
        assert best.source == RouteSource.CONNECTED

    def test_metric_breaks_ties_within_protocol(self):
        rib = RIB()
        rib.add_route(ospf_route(hop=HOP_A, metric=20))
        rib.add_route(ospf_route(hop=HOP_B, metric=10))
        assert rib.best_route(P1).next_hop == HOP_B

    def test_reannouncement_replaces_previous_candidate(self):
        rib = RIB()
        rib.add_route(ospf_route(metric=20))
        rib.add_route(ospf_route(metric=5))
        best = rib.best_route(P1)
        assert best.metric == 5
        # Only one candidate remains for that (source, next-hop, iface) triple.
        assert len(rib._routes[P1]) == 1

    def test_remove_route(self):
        rib = RIB()
        rib.add_route(ospf_route())
        assert rib.remove_route(P1, RouteSource.OSPF) is True
        assert rib.best_route(P1) is None
        assert len(rib) == 0

    def test_remove_missing_route_is_noop(self):
        rib = RIB()
        assert rib.remove_route(P1, RouteSource.OSPF) is False

    def test_remove_all_from_source(self):
        rib = RIB()
        rib.add_route(ospf_route(prefix=P1))
        rib.add_route(ospf_route(prefix=P2))
        rib.add_route(Route(prefix=P1, next_hop=None, interface="eth0",
                            source=RouteSource.CONNECTED))
        changed = rib.remove_all_from(RouteSource.OSPF)
        assert P2 in changed
        assert rib.best_route(P1).source == RouteSource.CONNECTED
        assert rib.best_route(P2) is None

    def test_listener_called_on_change_only(self):
        rib = RIB()
        changes = []
        rib.add_listener(lambda prefix, new, old: changes.append((prefix, new, old)))
        rib.add_route(ospf_route(metric=10))
        rib.add_route(ospf_route(hop=HOP_B, metric=20))  # worse, no change
        assert len(changes) == 1
        rib.remove_route(P1, RouteSource.OSPF, next_hop=HOP_A)
        assert len(changes) == 2
        assert changes[-1][1].next_hop == HOP_B

    def test_longest_prefix_lookup(self):
        rib = RIB()
        rib.add_route(ospf_route(prefix=IPv4Network("10.0.0.0/8"), hop=HOP_A))
        rib.add_route(ospf_route(prefix=IPv4Network("10.1.0.0/16"), hop=HOP_B))
        assert rib.lookup(IPv4Address("10.1.2.3")).next_hop == HOP_B
        assert rib.lookup(IPv4Address("10.9.2.3")).next_hop == HOP_A
        assert rib.lookup(IPv4Address("192.168.0.1")) is None

    def test_selected_routes_sorted(self):
        rib = RIB()
        rib.add_route(ospf_route(prefix=P2))
        rib.add_route(ospf_route(prefix=P1))
        assert [r.prefix for r in rib.selected_routes] == [P1, P2]


class TestZebra:
    def test_connected_route_announcement(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.announce_connected(P1, "eth1")
        assert P1 in zebra.fib
        assert zebra.fib[P1].is_connected

    def test_fib_listener_notified(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        updates = []
        zebra.add_fib_listener(lambda prefix, new, old: updates.append((prefix, new, old)))
        zebra.announce_route(ospf_route())
        assert len(updates) == 1
        zebra.withdraw_route(P1, RouteSource.OSPF)
        assert len(updates) == 2
        assert updates[-1][1] is None

    def test_protocol_route_shadowed_by_connected(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.announce_route(ospf_route())
        zebra.announce_connected(P1, "eth0")
        assert zebra.fib[P1].source == RouteSource.CONNECTED
        zebra.withdraw_connected(P1)
        assert zebra.fib[P1].source == RouteSource.OSPF

    def test_static_route(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.add_static_route(P2, HOP_A, "eth1")
        assert zebra.fib[P2].source == RouteSource.STATIC

    def test_lookup_longest_prefix(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.announce_route(ospf_route(prefix=IPv4Network("10.0.0.0/8"), hop=HOP_A))
        zebra.announce_route(ospf_route(prefix=IPv4Network("10.1.0.0/16"), hop=HOP_B))
        assert zebra.lookup(IPv4Address("10.1.1.1")).next_hop == HOP_B

    def test_install_and_withdraw_counters(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.announce_route(ospf_route())
        zebra.withdraw_route(P1, RouteSource.OSPF)
        assert zebra.install_count == 1
        assert zebra.withdraw_count == 1

    def test_show_ip_route_output(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.announce_connected(P1, "eth1")
        zebra.announce_route(ospf_route(prefix=P2))
        text = zebra.show_ip_route()
        assert "C" in text and "O" in text
        assert "10.2.0.0/24" in text


class TestVtysh:
    def test_show_commands_without_daemons(self):
        vtysh = Vtysh(ZebraDaemon("vm1"))
        assert "OSPF is not running" in vtysh.show_ip_ospf_neighbor()
        assert "BGP is not running" in vtysh.show_ip_bgp_summary()

    def test_execute_dispatch(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        zebra.announce_connected(P1, "eth1")
        vtysh = Vtysh(zebra)
        assert "10.1.0.0/24" in vtysh.execute("show ip route")
        assert "Unknown command" in vtysh.execute("configure terminal")

    def test_show_running_config_lists_hostname(self):
        vtysh = Vtysh(ZebraDaemon("vm7"))
        assert "hostname vm7" in vtysh.show_running_config()
