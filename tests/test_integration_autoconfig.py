"""End-to-end integration tests of the automatic-configuration framework.

These tests assemble the full stack — emulated switches, FlowVisor, the
topology controller, the RPC path, RouteFlow VMs running OSPF, and the
RFProxy flow installation — exactly as the experiments do, but on small
topologies so they stay fast.
"""

from __future__ import annotations

import pytest

from repro.app import PingApp, VideoStreamClient, VideoStreamServer
from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
from repro.net import IPv4Network
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import linear_topology, ring_topology


def fast_config(**overrides) -> FrameworkConfig:
    """A configuration tuned for quick tests (short boots and timers)."""
    defaults = dict(vm_boot_delay=1.0, ospf_hello_interval=2, ospf_dead_interval=8,
                    discovery_probe_interval=2.0, edge_port_grace=5.0,
                    monitor_interval=0.5)
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


def build(sim, topology, config):
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    return framework, network


class TestRingConfiguration:
    def test_ring4_reaches_all_milestones(self, sim):
        framework, _ = build(sim, ring_topology(4),
                             fast_config(detect_edge_ports=False))
        configured = framework.run_until_configured(max_time=300.0)
        assert configured is not None
        milestones = framework.milestones
        assert milestones["all_switches_discovered"] <= milestones["all_switches_configured"]
        assert milestones["all_switches_configured"] <= milestones["ospf_converged"]
        assert framework.configuration_complete
        assert framework.gui.all_green

    def test_every_vm_learns_every_link_prefix(self, sim):
        framework, _ = build(sim, ring_topology(4),
                             fast_config(detect_edge_ports=False))
        framework.run_until_configured(max_time=300.0)
        for vm in framework.rfserver.vms.values():
            assert len(vm.zebra.fib) == 4  # four /30 link prefixes in a 4-ring

    def test_flows_installed_on_every_switch(self, sim):
        framework, network = build(sim, ring_topology(4),
                                   fast_config(detect_edge_ports=False))
        framework.run_until_configured(max_time=300.0, settle=10.0)
        for switch in network.switches.values():
            assert len(switch.flow_table) >= 2, \
                f"{switch.name} should hold flows for remote prefixes"
        assert framework.rfproxy.flows_installed > 0

    def test_summary_reports_key_figures(self, sim):
        framework, _ = build(sim, ring_topology(4),
                             fast_config(detect_edge_ports=False))
        framework.run_until_configured(max_time=300.0)
        summary = framework.summary()
        assert summary["switches"] == 4
        assert summary["vms"] == 4
        assert summary["configuration_time_s"] == framework.configuration_time
        assert summary["manual_time_s"] == pytest.approx(4 * 15 * 60)

    def test_single_controller_mode_also_converges(self, sim):
        framework, _ = build(sim, ring_topology(4),
                             fast_config(detect_edge_ports=False, use_flowvisor=False))
        assert framework.flowvisor is None
        configured = framework.run_until_configured(max_time=300.0)
        assert configured is not None

    def test_parallel_vm_creation_is_faster(self):
        results = {}
        for serialize in (True, False):
            sim = Simulator()
            framework, _ = build(sim, ring_topology(6),
                                 fast_config(detect_edge_ports=False,
                                             vm_boot_delay=5.0,
                                             serialize_vm_creation=serialize))
            results[serialize] = framework.run_until_configured(max_time=600.0)
        assert results[True] is not None and results[False] is not None
        assert results[False] < results[True]


class TestDataPlaneAfterConfiguration:
    @pytest.fixture
    def configured_line(self, sim):
        """Two switches, one host on each, fully auto-configured."""
        topology = linear_topology(2)
        topology.attach_host("h1", 1)
        topology.attach_host("h2", 2)
        framework, network = build(sim, topology, fast_config())
        return framework, network

    def test_ping_works_across_the_configured_network(self, sim, configured_line):
        framework, network = configured_line
        framework.run_until_configured(max_time=300.0)
        h1, h2 = network.host("h1"), network.host("h2")
        ping = PingApp(sim, h1, h2.ip, interval=1.0)
        ping.start()
        sim.run(until=framework.configuration_time + 60.0)
        stats = ping.finish()
        assert stats.received > 0, "end-to-end reachability after auto-configuration"

    def test_video_stream_started_before_configuration_arrives(self, sim, configured_line):
        framework, network = configured_line
        server_host = network.host("h1")
        client_host = network.host("h2")
        server = VideoStreamServer(sim, server_host, client_ip=client_host.ip,
                                   frame_rate=5.0)
        client = VideoStreamClient(sim, client_host, server_ip=server_host.ip)
        server.start()
        client.start()
        configured = framework.run_until_configured(max_time=300.0)
        assert configured is not None
        sim.run(until=configured + 90.0)
        assert client.video_started
        # The stream cannot arrive before the network is configured; it should
        # arrive within a couple of minutes of the start.
        assert 0 < client.time_to_first_frame <= configured + 90.0
        assert client.stats.frames_received > 10

    def test_host_gateways_answered_by_rfproxy(self, sim, configured_line):
        framework, network = configured_line
        framework.run_until_configured(max_time=300.0)
        h1 = network.host("h1")
        h1.ping(network.host("h2").ip)
        sim.run(until=framework.configuration_time + 30.0)
        assert framework.rfproxy.arp_replies_sent > 0
        assert h1.gateway in h1.arp_table
        assert len(framework.rfproxy.hosts) >= 1


class TestFailureHandling:
    def test_link_failure_after_configuration_reroutes(self, sim):
        framework, network = build(sim, ring_topology(4),
                                   fast_config(detect_edge_ports=False))
        framework.run_until_configured(max_time=300.0, settle=5.0)
        # Fail one physical link; the mirrored virtual link stays up (the
        # physical failure is invisible to the VMs until discovery times the
        # link out), so this only checks the control plane stays alive.
        network.fail_link(1, 2)
        sim.run(until=framework.configuration_time + 60.0)
        assert framework.rfserver.all_vms_running()

    def test_switch_connection_loss_reported(self, sim):
        framework, network = build(sim, ring_topology(4),
                                   fast_config(detect_edge_ports=False))
        framework.run_until_configured(max_time=300.0)
        network.control_channel(2).close()
        sim.run(until=framework.configuration_time + 20.0)
        # The RF-controller no longer lists datapath 2.
        assert 2 not in framework.rf_controller.connected_datapaths
