"""Control-channel behaviour plus extra property-based tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import IPAddressManager
from repro.net import IPv4Address, IPv4Network
from repro.openflow import ControlChannel, Hello, OpenFlowMessage
from repro.routeflow import RouteMod
from repro.sim import Simulator


class _Endpoint:
    """A channel endpoint recording everything it receives."""

    def __init__(self):
        self.received = []
        self.closed = 0

    def channel_receive(self, channel, data):
        self.received.append(data)

    def channel_closed(self, channel):
        self.closed += 1


class TestControlChannel:
    def test_messages_delivered_after_latency(self, sim):
        a, b = _Endpoint(), _Endpoint()
        channel = ControlChannel(sim, latency=0.25)
        channel.connect(a, b)
        channel.send(a, b"one")
        channel.send(b, b"two")
        sim.run(until=0.2)
        assert a.received == [] and b.received == []
        sim.run(until=0.3)
        assert b.received == [b"one"]
        assert a.received == [b"two"]

    def test_counters_track_direction(self, sim):
        a, b = _Endpoint(), _Endpoint()
        channel = ControlChannel(sim, latency=0.01)
        channel.connect(a, b)
        channel.send(a, b"xx")
        channel.send(a, b"yyy")
        channel.send(b, b"z")
        sim.run()
        assert channel.messages_a_to_b == 2 and channel.bytes_a_to_b == 5
        assert channel.messages_b_to_a == 1 and channel.bytes_b_to_a == 1

    def test_send_before_connect_fails(self, sim):
        channel = ControlChannel(sim)
        assert channel.send(_Endpoint(), b"data") is False

    def test_close_notifies_both_ends_and_blocks_sends(self, sim):
        a, b = _Endpoint(), _Endpoint()
        channel = ControlChannel(sim, latency=0.01)
        channel.connect(a, b)
        channel.close()
        sim.run()
        assert a.closed == 1 and b.closed == 1
        assert channel.send(a, b"late") is False

    def test_messages_in_flight_when_closed_are_dropped(self, sim):
        a, b = _Endpoint(), _Endpoint()
        channel = ControlChannel(sim, latency=1.0)
        channel.connect(a, b)
        channel.send(a, b"will-be-dropped")
        sim.schedule(0.5, channel.close)
        sim.run()
        assert b.received == []

    def test_peer_of_unknown_endpoint_rejected(self, sim):
        a, b = _Endpoint(), _Endpoint()
        channel = ControlChannel(sim)
        channel.connect(a, b)
        with pytest.raises(ValueError):
            channel.peer_of(_Endpoint())

    def test_carries_real_openflow_messages(self, sim):
        a, b = _Endpoint(), _Endpoint()
        channel = ControlChannel(sim, latency=0.01)
        channel.connect(a, b)
        channel.send(a, Hello(xid=7).encode())
        sim.run()
        decoded = OpenFlowMessage.decode(b.received[0])
        assert isinstance(decoded, Hello) and decoded.xid == 7


class TestIPAMProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=64),
                              st.integers(min_value=1, max_value=8),
                              st.integers(min_value=1, max_value=64),
                              st.integers(min_value=1, max_value=8)),
                    min_size=1, max_size=40))
    def test_link_subnets_never_overlap(self, links):
        ipam = IPAddressManager()
        allocations = []
        for dpid_a, port_a, dpid_b, port_b in links:
            if dpid_a == dpid_b:
                continue
            allocations.append(ipam.allocate_link(dpid_a, port_a, dpid_b, port_b))
        networks = [a.network for a in allocations]
        # Re-allocating the same key returns the same subnet, and distinct
        # subnets never overlap.
        assert len({str(n) for n in networks}) == ipam.allocated_links
        nets = list({str(n): n for n in networks}.values())
        for i, one in enumerate(nets):
            for other in nets[i + 1:]:
                assert one.network not in other
                assert other.network not in one

    @given(st.integers(min_value=1, max_value=100000),
           st.integers(min_value=1, max_value=100000))
    def test_router_ids_injective(self, vm_a, vm_b):
        ipam = IPAddressManager()
        if vm_a != vm_b:
            assert ipam.router_id(vm_a) != ipam.router_id(vm_b)
        else:
            assert ipam.router_id(vm_a) == ipam.router_id(vm_b)


class TestRouteModProperties:
    prefixes = st.tuples(st.integers(min_value=0, max_value=2**32 - 1),
                         st.integers(min_value=0, max_value=32))

    @given(st.integers(min_value=1, max_value=2**48),
           prefixes,
           st.one_of(st.none(), st.integers(min_value=1, max_value=2**32 - 1)),
           st.integers(min_value=0, max_value=1000))
    def test_json_roundtrip(self, vm_id, prefix_spec, next_hop, metric):
        base, plen = prefix_spec
        prefix = IPv4Network((IPv4Address(base), plen))
        hop = IPv4Address(next_hop) if next_hop is not None else None
        message = RouteMod.add(vm_id=vm_id, prefix=prefix, next_hop=hop,
                               interface="eth1", metric=metric)
        decoded = RouteMod.from_json(message.to_json())
        assert decoded.vm_id == vm_id
        assert decoded.prefix_network == prefix
        assert decoded.next_hop_address == hop
        assert decoded.metric == metric
