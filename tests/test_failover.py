"""End-to-end failure-resilience tests: withdrawals through every layer.

The invariant test required by the failure-injection milestone: after an
arbitrary failure schedule runs against ring / torus / fat-tree scenarios,
every router's RIB OSPF candidates must exactly equal its latest SPF
result — no stale next hops, no leaked candidates — and the failover
harness must report finite reconvergence times.
"""

from __future__ import annotations

import csv

import pytest

from repro.experiments import (
    run_failover,
    verify_spf_rib_consistency,
    write_failover_csv,
    write_failover_json,
)
from repro.net import IPv4Address, IPv4Network
from repro.quagga import InterfaceConfig, OSPFNetworkStatement, generate_ospfd_conf, generate_zebra_conf
from repro.routeflow import RFVirtualSwitch, VirtualMachine
from repro.scenarios import FailureSchedule, ScenarioSpec
from repro.sim import Simulator

#: Fast protocol/boot timers so the failover runs stay test-suite friendly.
FAST = {"vm_boot_delay": 1.0, "ospf_hello_interval": 2,
        "ospf_dead_interval": 8}

#: The acceptance scenarios: one per required topology family.
SCENARIOS = [
    ScenarioSpec("fo-ring-4", "ring", {"num_switches": 4}, framework=FAST,
                 max_time=600.0),
    ScenarioSpec("fo-grid-3x3", "torus", {"rows": 3, "cols": 3, "wrap": False},
                 framework=FAST, max_time=600.0),
    ScenarioSpec("fo-fat-tree-k4", "fat-tree", {"k": 4}, framework=FAST,
                 max_time=600.0),
]


def churn_for(spec: ScenarioSpec, failures: int = 2,
              seed: int = 11) -> FailureSchedule:
    links = [(link.node_a, link.node_b)
             for link in spec.build_topology().links]
    return FailureSchedule.random_churn(links, failures=failures, seed=seed,
                                        start=5.0, spacing=40.0, recovery=20.0)


class TestFailoverInvariant:
    @pytest.mark.parametrize("spec", SCENARIOS, ids=lambda s: s.name)
    def test_rib_matches_spf_after_churn(self, spec):
        result = run_failover(spec, schedule=churn_for(spec), settle=12.0)
        assert result.configured
        assert result.settled
        assert result.invariant_violations == []
        assert result.reconverged
        assert len(result.events) == 4  # 2 failures x (down + up)
        for event in result.events:
            assert event.reconverge_seconds >= 0.0
            assert event.reconverge_seconds < 40.0  # finite, inside the window

    def test_link_down_reroutes_and_withdraws_everywhere(self):
        spec = SCENARIOS[0]
        schedule = FailureSchedule.single_link_failure(1, 2, at=5.0)
        result = run_failover(spec, schedule=schedule, settle=12.0)
        assert result.configured
        assert result.invariant_violations == []
        down = result.events[0]
        assert down.route_changes > 0
        assert down.frames_lost > 0  # probes blackholed on the dead link


class TestFailoverMeasurements:
    def run_ring(self):
        spec = SCENARIOS[0]
        schedule = FailureSchedule.single_link_failure(1, 2, at=5.0,
                                                       restore_after=40.0)
        return run_failover(spec, schedule=schedule, settle=12.0)

    def test_uses_the_spec_schedule_when_none_is_passed(self):
        spec = ScenarioSpec(
            "fo-ring-sched", "ring", {"num_switches": 4}, framework=FAST,
            max_time=600.0,
            failures=FailureSchedule.single_link_failure(2, 3, at=5.0))
        result = run_failover(spec, settle=12.0)
        assert len(result.events) == 1
        assert result.invariant_violations == []

    def test_requires_some_schedule(self):
        with pytest.raises(ValueError):
            run_failover(SCENARIOS[0])

    def test_unknown_targets_fail_before_the_simulation_runs(self):
        from repro.scenarios import FailureScheduleError
        bogus = FailureSchedule.single_link_failure(1, 99, at=5.0)
        before = __import__("time").perf_counter()
        with pytest.raises(FailureScheduleError):
            run_failover(SCENARIOS[0], schedule=bogus)
        # Validation happens up front, not after configuring the network.
        assert __import__("time").perf_counter() - before < 1.0

    def test_churn_generated_against_the_run_topology(self):
        result = run_failover(SCENARIOS[0], churn=1, churn_seed=3,
                              churn_spacing=40.0, churn_recovery=20.0,
                              settle=12.0)
        assert len(result.events) == 2
        assert result.reconverged

    def test_export_round_trip(self, tmp_path):
        result = self.run_ring()
        json_path = write_failover_json([result], tmp_path / "fo.json")
        csv_path = write_failover_csv([result], tmp_path / "fo.csv")
        assert json_path.exists()
        with csv_path.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.events) == 2
        assert rows[0]["action"] == "link_down"
        assert float(rows[0]["reconverge_seconds"]) >= 0.0
        # Satellite requirement: drop/delivery counters ride on the export.
        assert int(rows[0]["frames_dropped"]) == \
            result.link_stats["frames_dropped"]
        assert int(rows[0]["frames_delivered"]) > 0


def build_line_vms():
    """Three VMs in a line over the RouteFlow virtual switch (no OpenFlow)."""
    sim = Simulator()
    rfvs = RFVirtualSwitch(sim)
    vms = {index: VirtualMachine(sim, vm_id=index, num_ports=2, boot_delay=1.0)
           for index in (1, 2, 3)}
    rfvs.connect(vms[1].interface("eth1"), vms[2].interface("eth1"))
    rfvs.connect(vms[2].interface("eth2"), vms[3].interface("eth1"))
    layout = {
        1: ("10.0.0.1", [("eth1", "172.16.0.1", 30)]),
        2: ("10.0.0.2", [("eth1", "172.16.0.2", 30), ("eth2", "172.16.0.5", 30)]),
        3: ("10.0.0.3", [("eth1", "172.16.0.6", 30), ("eth2", "192.168.3.1", 24)]),
    }
    for vm_id, (router_id, interfaces) in layout.items():
        vm = vms[vm_id]
        iface_configs = [InterfaceConfig(name, IPv4Address(ip), plen)
                         for name, ip, plen in interfaces]
        vm.write_config_file("zebra.conf",
                             generate_zebra_conf(vm.name, iface_configs))
        statements = [OSPFNetworkStatement(IPv4Network((IPv4Address(ip), plen)))
                      for _, ip, plen in interfaces]
        vm.write_config_file("ospfd.conf", generate_ospfd_conf(
            f"{vm.name}-ospfd", IPv4Address(router_id), statements,
            hello_interval=2, dead_interval=8))
        vm.start()
    return sim, rfvs, vms


class TestQuaggaLayerFailures:
    """Failure handling inside the Quagga substrate, below RouteFlow."""

    def test_wire_down_withdraws_routes_through_the_area(self):
        sim, rfvs, vms = build_line_vms()
        sim.run(until=30.0)
        remote = IPv4Network("192.168.3.0/24")
        assert remote in vms[1].zebra.fib
        rfvs.set_wire_state(vms[2].interface("eth2"),
                            vms[3].interface("eth1"), up=False)
        sim.run(until=45.0)
        # VM 3 is unreachable: its prefix and the 2<->3 link prefix vanish.
        assert remote not in vms[1].zebra.fib
        assert IPv4Network("172.16.0.4/30") not in vms[1].zebra.fib
        assert verify_spf_rib_consistency_like(vms) == []

    def test_wire_recovery_restores_the_routes(self):
        sim, rfvs, vms = build_line_vms()
        sim.run(until=30.0)
        rfvs.set_wire_state(vms[2].interface("eth2"),
                            vms[3].interface("eth1"), up=False)
        sim.run(until=45.0)
        rfvs.set_wire_state(vms[2].interface("eth2"),
                            vms[3].interface("eth1"), up=True)
        sim.run(until=75.0)
        assert IPv4Network("192.168.3.0/24") in vms[1].zebra.fib
        assert verify_spf_rib_consistency_like(vms) == []

    def test_daemon_stop_floods_a_maxage_flush(self):
        sim, rfvs, vms = build_line_vms()
        sim.run(until=30.0)
        rid3 = IPv4Address("10.0.0.3")
        assert vms[1].ospf.lsdb.router_lsa(rid3) is not None
        vms[3].ospf.stop()
        sim.run(until=33.0)
        # The premature-aging flush removed VM 3's LSA area-wide without
        # waiting for dead intervals.
        assert vms[1].ospf.lsdb.router_lsa(rid3) is None
        assert vms[2].ospf.lsdb.router_lsa(rid3) is None
        sim.run(until=45.0)
        assert IPv4Network("192.168.3.0/24") not in vms[1].zebra.fib

    def test_interface_down_is_idempotent_and_reversible(self):
        sim, rfvs, vms = build_line_vms()
        sim.run(until=30.0)
        daemon = vms[2].ospf
        daemon.interface_down("eth2")
        daemon.interface_down("eth2")  # second call is a no-op
        assert not daemon.interfaces["eth2"].up
        sim.run(until=45.0)
        assert IPv4Network("192.168.3.0/24") not in vms[2].zebra.fib
        daemon.interface_up("eth2")
        sim.run(until=75.0)
        assert IPv4Network("192.168.3.0/24") in vms[2].zebra.fib


def verify_spf_rib_consistency_like(vms):
    """The failover invariant, applied to bare VMs (no RFServer)."""

    class _Stub:
        def __init__(self, vms):
            self.vms = vms

    return verify_spf_rib_consistency(_Stub(vms))
