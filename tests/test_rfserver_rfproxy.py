"""Unit tests for the RFServer / RFProxy route-to-flow pipeline.

These complement the end-to-end tests in test_integration_autoconfig.py by
exercising the RouteMod processing, next-hop resolution, host learning and
flow withdrawal logic against a real controller and switches but with the
configuration injected directly (no discovery / RPC in the loop).
"""

from __future__ import annotations

import pytest

from repro.controller import Controller
from repro.net import ARP, Ethernet, EtherType, IPv4Address, IPv4Network, MACAddress
from repro.quagga import InterfaceConfig, generate_zebra_conf
from repro.routeflow import RFProxy, RFServer, RouteMod
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import linear_topology


@pytest.fixture
def pipeline(sim):
    """Two switches connected to an RF-controller, mirrored by two VMs."""
    controller = Controller(sim, name="rf")
    rfproxy = RFProxy()
    controller.register_app(rfproxy)
    rfserver = RFServer(sim, rfproxy, vm_boot_delay=0.2)
    network = EmulatedNetwork(sim, linear_topology(2))
    network.connect_control_plane(controller.accept_channel, controller)
    for vm_id in (1, 2):
        rfserver.create_vm(vm_id=vm_id, num_ports=2)
    # Addressing: eth1 is the inter-switch link, eth2 faces hosts.
    configs = {
        1: [InterfaceConfig("eth1", IPv4Address("172.16.0.1"), 30),
            InterfaceConfig("eth2", IPv4Address("192.168.1.1"), 24)],
        2: [InterfaceConfig("eth1", IPv4Address("172.16.0.2"), 30),
            InterfaceConfig("eth2", IPv4Address("192.168.2.1"), 24)],
    }
    for vm_id, interfaces in configs.items():
        vm = rfserver.vm(vm_id)
        rfserver.write_config_file(vm_id, "zebra.conf",
                                   generate_zebra_conf(vm.name, interfaces))
        for iface in interfaces:
            rfserver.assign_interface_address(vm_id, iface.name, iface.ip,
                                              iface.prefix_len)
    sim.run(until=2.0)
    return sim, controller, rfproxy, rfserver, network


class TestRouteModProcessing:
    def test_remote_route_becomes_flow_with_rewrites(self, pipeline):
        sim, controller, rfproxy, rfserver, network = pipeline
        mod = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.2.0/24"),
                           next_hop=IPv4Address("172.16.0.2"), interface="eth1",
                           metric=20)
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=4.0)
        flows = network.switch(1).flow_table.entries
        assert len(flows) == 1
        entry = flows[0]
        assert entry.priority == 32000 + 24
        # dl_dst is rewritten to the next-hop VM interface MAC.
        next_hop_mac = rfserver.vm(2).interface("eth1").mac
        from repro.openflow import OutputAction, SetDlDstAction, SetDlSrcAction

        assert any(isinstance(a, SetDlDstAction) and a.mac == next_hop_mac
                   for a in entry.actions)
        assert any(isinstance(a, OutputAction) and a.port == 1 for a in entry.actions)

    def test_unresolvable_next_hop_is_skipped(self, pipeline):
        sim, _, rfproxy, rfserver, network = pipeline
        mod = RouteMod.add(vm_id=1, prefix=IPv4Network("10.99.0.0/16"),
                           next_hop=IPv4Address("172.16.9.9"), interface="eth1")
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=4.0)
        assert len(network.switch(1).flow_table) == 0

    def test_connected_route_waits_for_host_learning(self, pipeline):
        sim, controller, rfproxy, rfserver, network = pipeline
        mod = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.1.0/24"),
                           next_hop=None, interface="eth2")
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=4.0)
        assert len(network.switch(1).flow_table) == 0  # host unknown yet
        # Host 192.168.1.50 ARPs for its gateway via switch 1 port 2.
        host_mac = MACAddress("02:aa:00:00:00:01")
        arp = ARP.request(host_mac, IPv4Address("192.168.1.50"), IPv4Address("192.168.1.1"))
        frame = Ethernet(src=host_mac, dst=MACAddress.broadcast(),
                         ethertype=EtherType.ARP, payload=arp)
        network.switch(1)._process_frame(2, frame.encode())
        sim.run(until=6.0)
        assert IPv4Address("192.168.1.50") in rfproxy.hosts
        flows = network.switch(1).flow_table.entries
        assert len(flows) == 1
        assert flows[0].match.nw_dst_prefix_len == 32
        assert rfproxy.arp_replies_sent == 1

    def test_route_delete_removes_flow(self, pipeline):
        sim, _, rfproxy, rfserver, network = pipeline
        add = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.2.0/24"),
                           next_hop=IPv4Address("172.16.0.2"), interface="eth1")
        rfserver.receive_route_mod(add.to_json())
        sim.run(until=4.0)
        assert len(network.switch(1).flow_table) == 1
        delete = RouteMod.delete(vm_id=1, prefix=IPv4Network("192.168.2.0/24"))
        rfserver.receive_route_mod(delete.to_json())
        sim.run(until=6.0)
        assert len(network.switch(1).flow_table) == 0
        assert rfproxy.flows_removed >= 1

    def test_route_mod_for_unmapped_vm_ignored(self, pipeline):
        sim, _, _, rfserver, network = pipeline
        mod = RouteMod.add(vm_id=99, prefix=IPv4Network("10.0.0.0/8"),
                           next_hop=IPv4Address("172.16.0.2"), interface="eth1")
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=4.0)
        assert all(len(s.flow_table) == 0 for s in network.switches.values())


class TestHostLearning:
    def test_gateway_addresses_are_not_learned_as_hosts(self, pipeline):
        sim, controller, rfproxy, rfserver, network = pipeline
        # An ARP sourced from the *other VM's* gateway address must not be
        # recorded as an end host.
        gateway_mac = rfserver.vm(2).interface("eth1").mac
        arp = ARP.request(gateway_mac, IPv4Address("172.16.0.2"), IPv4Address("172.16.0.1"))
        frame = Ethernet(src=gateway_mac, dst=MACAddress.broadcast(),
                         ethertype=EtherType.ARP, payload=arp)
        network.switch(1)._process_frame(1, frame.encode())
        sim.run(until=4.0)
        assert IPv4Address("172.16.0.2") not in rfproxy.hosts

    def test_flows_on_reports_per_switch_state(self, pipeline):
        sim, _, rfproxy, rfserver, network = pipeline
        mod = RouteMod.add(vm_id=2, prefix=IPv4Network("192.168.1.0/24"),
                           next_hop=IPv4Address("172.16.0.1"), interface="eth1")
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=4.0)
        assert len(rfproxy.flows_on(2)) == 1
        assert rfproxy.flows_on(1) == []

    def test_vm_count_and_configured_switches(self, pipeline):
        _, _, _, rfserver, _ = pipeline
        assert rfserver.vm_count == 2
        assert rfserver.configured_switches() == [1, 2]
        assert rfserver.all_vms_running()
