"""Documentation consistency gates.

These tests keep the docs tree honest:

* every intra-repo markdown link (``[text](path)``) in ``*.md`` files
  resolves to an existing file;
* every backticked repo path (``docs/...``, ``src/...``, ``tests/...``,
  ``examples/...``, ``benchmarks/...``) mentioned in a markdown file
  exists;
* every ``repro`` CLI subcommand is documented in ``docs/experiments.md``;
* source docstrings that cite a design document point at a file that is
  actually in the tree (the seed shipped a ``DESIGN.md`` citation with no
  ``DESIGN.md``).
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files covered by the link check: the repo root and docs/.
MARKDOWN_FILES = sorted(REPO_ROOT.glob("*.md")) + sorted(
    (REPO_ROOT / "docs").glob("*.md"))

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_BACKTICK_PATH = re.compile(
    r"`((?:docs|src|tests|examples|benchmarks)/[A-Za-z0-9_\-./]+"
    r"\.(?:md|py|json|yml))`")


def test_markdown_files_exist():
    assert MARKDOWN_FILES, "no markdown files found"
    names = {path.name for path in MARKDOWN_FILES}
    for required in ("README.md", "ARCHITECTURE.md", "DESIGN.md",
                     "experiments.md", "scenarios.md"):
        assert required in names, f"{required} is missing from the docs tree"


def test_intra_repo_markdown_links_resolve():
    broken = []
    for path in MARKDOWN_FILES:
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, "broken markdown links:\n" + "\n".join(broken)


def test_backticked_repo_paths_exist():
    missing = []
    for path in MARKDOWN_FILES:
        for reference in _BACKTICK_PATH.findall(path.read_text()):
            if not (REPO_ROOT / reference).exists():
                missing.append(f"{path.relative_to(REPO_ROOT)} -> {reference}")
    assert not missing, "dangling file references:\n" + "\n".join(missing)


def test_every_cli_subcommand_is_documented():
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if hasattr(action, "choices") and action.choices)
    commands = set(subparsers.choices)
    reference = (REPO_ROOT / "docs" / "experiments.md").read_text()
    undocumented = sorted(
        command for command in commands
        if not re.search(rf"`repro {re.escape(command)}", reference))
    assert not undocumented, (
        "repro subcommands missing from docs/experiments.md: "
        + ", ".join(undocumented))


def test_design_doc_citations_resolve():
    cited = False
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        text = path.read_text()
        if "DESIGN.md" in text:
            cited = True
            assert "docs/DESIGN.md" in text, (
                f"{path.relative_to(REPO_ROOT)} cites DESIGN.md without its "
                f"docs/ path")
    assert cited, "expected at least one docs/DESIGN.md citation in src/"
    assert (REPO_ROOT / "docs" / "DESIGN.md").exists()
