"""Tests for the fluid traffic fast path.

Covers the demand generators, the max-min allocator (property-based),
the path resolver (including the fluid-vs-packet equivalence test that
pins resolver semantics to the switch pipeline), the event-driven fluid
engine with incremental invalidation, the utilization/source-stats
satellites and the ``repro traffic`` experiment + CLI.
"""

from __future__ import annotations

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
from repro.net import Ethernet, EtherType, IPv4, IPv4Address, MACAddress, UDP
from repro.net.ipv4 import IPProtocol
from repro.net.link import Interface, connect
from repro.scenarios import ScenarioSpec
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import fat_tree_topology, ring_topology, torus_topology
from repro.traffic import (
    DELIVERED,
    LINK_DOWN,
    UNROUTED,
    DemandSpec,
    FluidEngine,
    PathResolver,
    SyntheticRoutes,
    generate_demands,
    gravity_demands,
    max_min_allocation,
    service_address,
    uniform_demands,
)

#: Seeds for the sampled fluid-vs-packet equivalence sweep.  The default
#: single seed keeps the quick suite fast; CI (or a local soak) widens
#: the sweep CHAOS_SEEDS-style, e.g. ``TRAFFIC_EQUIV_SEEDS=13,29,57``.
TRAFFIC_EQUIV_SEEDS = tuple(
    int(seed) for seed in
    os.environ.get("TRAFFIC_EQUIV_SEEDS", "13").split(","))


# ---------------------------------------------------------------------------
# demand generators
# ---------------------------------------------------------------------------
def _addresses(count: int):
    return {dpid: service_address(dpid) for dpid in range(1, count + 1)}


class TestDemandGenerators:
    def test_uniform_is_deterministic_and_loop_free(self):
        addresses = _addresses(8)
        first = uniform_demands(addresses, 500, rate_bps=100.0, seed=3)
        second = uniform_demands(addresses, 500, rate_bps=100.0, seed=3)
        assert len(first) == 500
        assert [(d.src_dpid, d.dst) for d in first] == \
            [(d.src_dpid, d.dst) for d in second]
        assert all(int(addresses[d.src_dpid]) != d.dst for d in first)

    def test_uniform_different_seed_differs(self):
        addresses = _addresses(8)
        first = uniform_demands(addresses, 200, rate_bps=100.0, seed=1)
        second = uniform_demands(addresses, 200, rate_bps=100.0, seed=2)
        assert [(d.src_dpid, d.dst) for d in first] != \
            [(d.src_dpid, d.dst) for d in second]

    def test_gravity_is_deterministic_and_skewed(self):
        addresses = _addresses(16)
        demands = gravity_demands(addresses, 2000, rate_bps=100.0, seed=5)
        again = gravity_demands(addresses, 2000, rate_bps=100.0, seed=5)
        assert [(d.src_dpid, d.dst) for d in demands] == \
            [(d.src_dpid, d.dst) for d in again]
        counts = {}
        for demand in demands:
            counts[demand.src_dpid] = counts.get(demand.src_dpid, 0) + 1
        # The heavy-tailed masses must produce visible skew: the busiest
        # source clearly above the uniform expectation.
        assert max(counts.values()) > 2000 / 16 * 1.5

    def test_generators_need_two_routers(self):
        with pytest.raises(ValueError):
            uniform_demands(_addresses(1), 10, rate_bps=1.0)
        with pytest.raises(ValueError):
            gravity_demands(_addresses(1), 10, rate_bps=1.0)

    def test_spec_round_trip_and_validation(self):
        spec = DemandSpec(model="gravity", count=42, rate_bps=5e6, seed=9,
                          start_window=3.0, duration=12.0)
        assert DemandSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            DemandSpec(model="bimodal")
        with pytest.raises(ValueError):
            DemandSpec(count=0)
        with pytest.raises(ValueError):
            DemandSpec(rate_bps=0.0)

    def test_generate_demands_dispatch_and_times(self):
        addresses = _addresses(4)
        spec = DemandSpec(model="uniform", count=50, rate_bps=100.0, seed=1,
                          start_window=5.0, duration=2.0)
        demands = generate_demands(spec, addresses)
        assert len(demands) == 50
        assert all(0.0 <= d.start < 5.0 for d in demands)
        assert all(d.duration == 2.0 for d in demands)
        assert all(d.end == d.start + 2.0 for d in demands)
        open_ended = generate_demands(DemandSpec(count=5), addresses)
        assert all(d.duration == float("inf") for d in open_ended)

    def test_scenario_spec_carries_demands(self):
        spec = ScenarioSpec("tmp-traffic-ring", "ring",
                            {"num_switches": 4},
                            demands=DemandSpec(count=7, seed=3))
        payload = spec.to_dict()
        assert payload["demands"]["count"] == 7
        restored = ScenarioSpec.from_dict(payload)
        assert restored.demands == spec.demands
        assert hash(restored) == hash(spec)
        assert ScenarioSpec.from_dict(
            ScenarioSpec("tmp-no-demands", "ring",
                         {"num_switches": 4}).to_dict()).demands is None


# ---------------------------------------------------------------------------
# max-min allocation (property-based)
# ---------------------------------------------------------------------------
_LINK_IDS = st.integers(min_value=0, max_value=4)
_COMMODITY = st.tuples(
    st.lists(_LINK_IDS, min_size=0, max_size=4, unique=True),
    st.floats(min_value=1.0, max_value=8.0),
    st.floats(min_value=1.0, max_value=1e6),
)


class TestMaxMinAllocation:
    @settings(derandomize=True, max_examples=300)
    @given(commodities=st.lists(_COMMODITY, min_size=1, max_size=8),
           capacities=st.lists(st.floats(min_value=1.0, max_value=1e6),
                               min_size=5, max_size=5))
    def test_feasible_and_pareto_efficient(self, commodities, capacities):
        caps = dict(enumerate(capacities))
        rates = max_min_allocation(commodities, caps)
        loads = {link: 0.0 for link in caps}
        for (links, _w, ceiling), rate in zip(commodities, rates):
            assert rate >= 0.0
            assert rate <= ceiling * (1.0 + 1e-6)
            for link in links:
                loads[link] += rate
        # Feasibility: no capacity unit is overcommitted.
        for link, load in loads.items():
            assert load <= caps[link] * (1.0 + 1e-6)
        # Pareto efficiency / bottleneck condition: a commodity held below
        # its ceiling must cross at least one saturated link — otherwise
        # its rate could be raised without hurting anyone.
        for (links, _w, ceiling), rate in zip(commodities, rates):
            if rate < ceiling * (1.0 - 1e-6):
                assert links, "ceiling-free commodity must get its ceiling"
                assert any(loads[link] >= caps[link] * (1.0 - 1e-6)
                           for link in links)

    def test_equal_share_on_one_bottleneck(self):
        rates = max_min_allocation(
            [((0,), 1.0, 100.0), ((0,), 1.0, 100.0)], {0: 90.0})
        assert rates == pytest.approx([45.0, 45.0])

    def test_weighted_share(self):
        rates = max_min_allocation(
            [((0,), 3.0, 1000.0), ((0,), 1.0, 1000.0)], {0: 80.0})
        assert rates == pytest.approx([60.0, 20.0])

    def test_ceiling_pinned_commodity_releases_capacity(self):
        rates = max_min_allocation(
            [((0,), 1.0, 10.0), ((0,), 1.0, 1000.0)], {0: 100.0})
        assert rates == pytest.approx([10.0, 90.0])

    def test_uncongested_everyone_at_ceiling(self):
        rates = max_min_allocation(
            [((0, 1), 1.0, 5.0), ((1,), 2.0, 7.0)], {0: 1e9, 1: 1e9})
        assert rates == pytest.approx([5.0, 7.0])

    def test_degenerate_inputs(self):
        assert max_min_allocation([], {}) == []
        assert max_min_allocation([((), 1.0, 42.0)], {}) == [42.0]
        assert max_min_allocation([((0,), 0.0, 42.0)], {0: 10.0}) == [0.0]
        assert max_min_allocation([((0,), 1.0, 0.0)], {0: 10.0}) == [0.0]


# ---------------------------------------------------------------------------
# resolver on synthetic tables
# ---------------------------------------------------------------------------
def _torus_fixture(rows=4, cols=4):
    sim = Simulator()
    network = EmulatedNetwork(sim, torus_topology(rows, cols))
    routes = SyntheticRoutes(network)
    routes.install()
    addresses = {dpid: service_address(dpid) for dpid in network.switches}
    owners = {int(address): dpid for dpid, address in addresses.items()}
    return sim, network, routes, addresses, owners


class TestPathResolver:
    def test_resolves_shortest_paths(self):
        _sim, network, _routes, addresses, owners = _torus_fixture()
        resolver = PathResolver(network, owner_of=owners.get)
        path = resolver.resolve(1, int(addresses[2]))
        assert path.status == DELIVERED
        assert path.dpids[0] == 1 and path.dpids[-1] == 2
        assert len(path.hops) == len(path.dpids) - 1
        # 4x4 torus: 1 and 2 are adjacent.
        assert path.dpids == (1, 2)

    def test_memo_collapses_repeat_lookups(self):
        _sim, network, _routes, addresses, owners = _torus_fixture()
        resolver = PathResolver(network, owner_of=owners.get)
        resolver.resolve(1, int(addresses[16]))
        lookups_once = resolver.lookups
        resolver.resolve(1, int(addresses[16]))
        assert resolver.lookups == lookups_once
        assert resolver.walks == 2

    def test_version_bump_invalidates_memo(self):
        _sim, network, routes, addresses, owners = _torus_fixture()
        resolver = PathResolver(network, owner_of=owners.get)
        before = resolver.resolve(4, int(addresses[1])).dpids
        network.fail_link(1, 2)
        routes.reroute()
        resolver.invalidate(1)  # what the engine's table listener does
        for dpid in network.switches:
            resolver.invalidate(dpid)
        after = resolver.resolve(4, int(addresses[1]))
        assert after.status == DELIVERED
        assert (1, 2) not in zip(after.dpids, after.dpids[1:])
        assert (2, 1) not in zip(after.dpids, after.dpids[1:])
        assert before[0] == after.dpids[0]

    def test_unrouted_without_tables(self):
        sim = Simulator()
        network = EmulatedNetwork(sim, ring_topology(3))
        resolver = PathResolver(network)
        path = resolver.resolve(1, int(service_address(2)))
        assert path.status == UNROUTED
        assert path.dpids == (1,)

    def test_link_down_terminates_walk(self):
        _sim, network, _routes, addresses, owners = _torus_fixture()
        resolver = PathResolver(network, owner_of=owners.get)
        # Fail the link 1->2 but leave the stale route installed: the walk
        # must stop at the dead hop, like a frame blackholed on the wire.
        network.fail_link(1, 2)
        path = resolver.resolve(1, int(addresses[2]))
        assert path.status == LINK_DOWN
        assert path.dpids == (1,)
        assert len(path.hops) == 1

    def test_miss_at_owner_is_delivery(self):
        _sim, network, _routes, addresses, owners = _torus_fixture()
        resolver = PathResolver(network, owner_of=owners.get)
        # The owner's own table has no entry for its own prefix (RFClient
        # skips lo routes) — resolving *at* the owner is a delivered miss.
        path = resolver.resolve(2, int(addresses[2]))
        assert path.status == DELIVERED
        assert path.dpids == (2,)
        assert path.hops == ()


# ---------------------------------------------------------------------------
# fluid engine
# ---------------------------------------------------------------------------
class TestFluidEngine:
    def _engine(self, rows=4, cols=4):
        sim, network, routes, addresses, owners = _torus_fixture(rows, cols)
        engine = FluidEngine(sim, network, owner_of=owners.get)
        engine.attach()
        return sim, network, routes, addresses, engine

    def test_immediate_registration_and_allocation(self):
        _sim, _network, _routes, addresses, engine = self._engine()
        demands = uniform_demands(addresses, 100, rate_bps=1000.0, seed=1)
        assert engine.register(demands, schedule=False) == 100
        engine.reallocate()
        stats = engine.stats()
        assert stats["demands"] == 100
        assert stats["delivered_commodities"] == stats["commodities"]
        assert stats["offered_bps"] == pytest.approx(100 * 1000.0)
        assert stats["delivered_bps"] == pytest.approx(100 * 1000.0)
        assert engine.loss_fraction == pytest.approx(0.0)

    def test_arrival_and_expiry_accrue_exact_bits(self):
        from repro.traffic import FlowDemand

        sim, _network, _routes, addresses, engine = self._engine()
        demand = FlowDemand(1, addresses[2], 1_000_000.0,
                            start=1.0, duration=2.0)
        engine.register([demand])
        sim.schedule(10.0, lambda: None)
        sim.run()
        engine.finalize()
        assert engine.arrivals == 1 and engine.expiries == 1
        assert engine.demand_count == 0
        # 1 Mbit/s for exactly 2 simulated seconds.
        assert engine.delivered_bits == pytest.approx(2_000_000.0)
        assert engine.offered_bits == pytest.approx(2_000_000.0)
        # The expiry dropped the commodity entirely.
        assert engine.stats()["commodities"] == 0

    def test_bottleneck_capacity_limits_delivery(self):
        from repro.traffic import FlowDemand

        sim, network, _routes, addresses, engine = self._engine()
        for link in network.links:
            link.bandwidth_bps = 1000.0
        demand = FlowDemand(1, addresses[2], 4000.0)
        engine.register([demand], schedule=False)
        engine.reallocate()
        assert engine.delivered_bps == pytest.approx(1000.0)
        assert engine.offered_bps == pytest.approx(4000.0)
        assert engine.loss_fraction == pytest.approx(0.75)

    def test_table_change_invalidates_only_crossing_commodities(self):
        from repro.traffic import FlowDemand

        _sim, network, routes, addresses, engine = self._engine()
        # Two commodities with disjoint paths: 1->2 and 15->16 (adjacent
        # pairs on opposite corners of the 4x4 torus).
        engine.register([FlowDemand(1, addresses[2], 100.0),
                         FlowDemand(15, addresses[16], 100.0)],
                        schedule=False)
        engine.reallocate()
        assert engine.reresolutions == 0
        network.fail_link(1, 2)
        changed = routes.reroute()
        assert changed > 0
        engine.reallocate()
        # The 1->2 commodity was re-resolved; whether 15->16 was depends
        # only on whether its switches' tables changed — they didn't.
        assert engine.reresolutions >= 1
        assert engine.affected_demands >= 1
        keys = {(1, int(addresses[2])), (15, int(addresses[16]))}
        assert set(engine.commodities) == keys
        rerouted = engine.commodities[(1, int(addresses[2]))]
        assert rerouted.path.status == DELIVERED
        assert len(rerouted.path.dpids) > 2  # went the long way round

    def test_failure_listener_marks_crossers_dirty(self):
        from repro.scenarios import FailureEvent, FailureSchedule
        from repro.traffic import FlowDemand

        sim, network, _routes, addresses, engine = self._engine()
        engine.register([FlowDemand(1, addresses[2], 100.0)], schedule=False)
        engine.reallocate()
        assert engine.stats()["delivered_commodities"] == 1
        network.schedule_failures(FailureSchedule((
            FailureEvent(1.0, "link_down", 1, 2),)))
        sim.run(until=2.0)
        engine.reallocate()
        # No reroute happened (tables still point at the dead link): the
        # re-resolved commodity must now report the blackhole.
        commodity = engine.commodities[(1, int(addresses[2]))]
        assert commodity.path.status == LINK_DOWN
        assert engine.stats()["delivered_commodities"] == 0
        assert engine.reresolutions == 1

    def test_inert_without_demands(self):
        sim, network, routes, _addresses, engine = self._engine()
        before = sim.pending()
        routes.reroute()  # no-op diff, but exercises the listeners
        network.fail_link(1, 2)
        routes.reroute()
        engine.reallocate()
        assert engine.stats()["demands"] == 0
        assert engine.stats()["commodities"] == 0
        # The engine scheduled at most its coalesced reallocation tick.
        assert sim.pending() <= before + 1


# ---------------------------------------------------------------------------
# fluid-vs-packet equivalence
# ---------------------------------------------------------------------------
def _configured_framework(topology):
    sim = Simulator()
    ipam = IPAddressManager()
    config = FrameworkConfig(detect_edge_ports=False, advertise_loopbacks=True)
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured = framework.run_until_configured(max_time=7200.0)
    assert configured is not None
    return sim, ipam, framework, network


def _trace_packet(sim, network, src_dpid: int, dst_ip: IPv4Address):
    """Inject one IPv4 frame at ``src_dpid`` and record its table lookups."""
    trace = []

    def observer(switch, _in_port, fields, entry):
        if fields.nw_dst == dst_ip:
            trace.append((switch.datapath_id, entry is not None))

    for switch in network.switches.values():
        switch.lookup_observer = observer
    try:
        packet = IPv4(src=IPv4Address("192.0.2.1"), dst=dst_ip,
                      protocol=IPProtocol.UDP,
                      payload=UDP(4000, 4000, b"x" * 32))
        frame = Ethernet(src=MACAddress(0xAA), dst=MACAddress(0xBB),
                         ethertype=EtherType.IPV4, payload=packet).encode()
        switch = network.switches[src_dpid]
        switch._process_frame(switch.port_numbers[0], frame)
        sim.run(until=sim.now + 2.0)
    finally:
        for switch in network.switches.values():
            switch.lookup_observer = None
    return trace


def _assert_equivalent(sim, network, resolver, src: int, dst_ip: IPv4Address):
    path = resolver.resolve(src, int(dst_ip))
    assert path.status == DELIVERED, \
        f"{src}->{dst_ip}: resolver says {path.status}"
    trace = _trace_packet(sim, network, src, dst_ip)
    assert [dpid for dpid, _ in trace] == list(path.dpids), \
        f"{src}->{dst_ip}: packet visited {trace}, resolver said {path.dpids}"
    # Every intermediate lookup hit; the final one is the owner's miss
    # (the frame the controller would see as a PACKET_IN).
    assert all(hit for _, hit in trace[:-1])
    assert trace[-1][1] is False


class TestFluidPacketEquivalence:
    def test_ring_all_pairs(self):
        sim, ipam, _framework, network = _configured_framework(ring_topology(4))
        owners = {int(ipam.router_id(dpid)): dpid for dpid in network.switches}
        resolver = PathResolver(network, owner_of=owners.get)
        for src in network.switches:
            for dst in network.switches:
                if src == dst:
                    continue
                _assert_equivalent(sim, network, resolver, src,
                                   ipam.router_id(dst))

    @pytest.mark.parametrize("seed", TRAFFIC_EQUIV_SEEDS)
    def test_fat_tree_sampled_pairs(self, seed):
        from repro.sim import SeededRandom

        sim, ipam, _framework, network = _configured_framework(
            fat_tree_topology(4))
        owners = {int(ipam.router_id(dpid)): dpid for dpid in network.switches}
        resolver = PathResolver(network, owner_of=owners.get)
        rng = SeededRandom(seed)
        dpids = sorted(network.switches)
        for _ in range(12):
            src, dst = rng.sample(dpids, 2)
            _assert_equivalent(sim, network, resolver, src,
                               ipam.router_id(dst))


# ---------------------------------------------------------------------------
# satellites: utilization accounting + source stats
# ---------------------------------------------------------------------------
class TestUtilizationAccounting:
    def test_packet_path_charges_serialization_time(self, sim):
        a = Interface("a", MACAddress(1))
        b = Interface("b", MACAddress(2))
        link = connect(sim, a, b, delay=0.001, bandwidth_bps=1e6)
        a.send(b"x" * 1000)  # 8000 bits at 1 Mbit/s = 8 ms on the wire
        sim.run()
        assert a.tx_busy_seconds == pytest.approx(0.008)
        assert b.tx_busy_seconds == 0.0
        stats = link.stats()
        assert stats["busy_seconds"] == pytest.approx(0.008)
        assert a.stats()["tx_busy_seconds"] == pytest.approx(0.008)

    def test_windowed_peak_rate(self):
        iface = Interface("w", MACAddress(3))
        iface.account_tx(0.0, 1000.0, 0.0)
        iface.account_tx(0.5, 1000.0, 0.0)
        assert iface.peak_tx_bps == 0.0  # window still open
        iface.account_tx(1.25, 500.0, 0.0)  # closes [0, 1.25): 2000 bits
        assert iface.peak_tx_bps == pytest.approx(2000.0 / 1.25)
        iface.account_tx(3.0, 8000.0, 0.0)  # closes [1.25, 3.0): 500 bits
        assert iface.peak_tx_bps == pytest.approx(2000.0 / 1.25)

    def test_fluid_path_charges_busy_fraction_and_peak(self):
        iface = Interface("f", MACAddress(4))
        iface.account_rate(5e8, 2.0, 1e9)  # half rate for 2 s = 1 s busy
        assert iface.tx_busy_seconds == pytest.approx(1.0)
        assert iface.peak_tx_bps == pytest.approx(5e8)
        iface.account_rate(2e9, 1.0, 1e9)  # overload clamps at 100% busy
        assert iface.tx_busy_seconds == pytest.approx(2.0)
        assert iface.peak_tx_bps == pytest.approx(2e9)
        iface.account_rate(1.0, 1.0, 0.0)  # no capacity: no busy charge
        assert iface.tx_busy_seconds == pytest.approx(2.0)


class _StubHost:
    name = "stub"

    def __init__(self):
        self.sent = []

    def send_udp(self, target, port, payload, src_port=0):
        self.sent.append((target, port, payload))
        return True


class TestSourceStats:
    def test_cbr_source_stats(self, sim):
        from repro.app.traffic import ConstantBitRateSource

        host = _StubHost()
        source = ConstantBitRateSource(sim, host, IPv4Address("10.0.0.9"),
                                       5000, rate_pps=10.0, payload_size=100)
        source.start()
        sim.run(until=1.05)
        source.stop()
        assert source.stats.packets == len(host.sent) == source.packets_sent
        assert source.stats.bytes == source.stats.packets * 100
        assert source.stats.first_send == pytest.approx(0.0)
        assert source.stats.last_send == pytest.approx(1.0)

    def test_poisson_source_stats(self, sim):
        from repro.app.traffic import PoissonSource

        host = _StubHost()
        source = PoissonSource(sim, host, IPv4Address("10.0.0.9"), 5000,
                               mean_rate_pps=50.0, payload_size=64, seed=4)
        source.start()
        sim.run(until=2.0)
        source.stop()
        sim.run(until=3.0)
        assert source.packets_sent == source.stats.packets > 0
        assert source.stats.bytes == source.stats.packets * 64
        assert source.stats.first_send is not None
        assert source.stats.last_send <= 2.0


# ---------------------------------------------------------------------------
# experiment + CLI
# ---------------------------------------------------------------------------
class TestTrafficExperiment:
    def test_run_traffic_on_ring(self):
        from repro.experiments import run_traffic

        result = run_traffic("ring-4", demands=DemandSpec(count=30, seed=2),
                             window=5.0, settle=1.0)
        assert result.configured
        assert result.demands == 30
        assert result.delivered_commodities == result.commodities > 0
        assert result.loss_fraction == pytest.approx(0.0)
        assert result.delivered_bits > 0
        assert result.top_links
        assert all(0.0 <= link.utilization <= 1.0
                   for link in result.top_links)

    def test_run_traffic_with_finite_demands_and_json(self, tmp_path):
        from repro.experiments import (render_traffic_table, run_traffic,
                                       write_traffic_json)

        result = run_traffic("ring-4",
                             demands=DemandSpec(count=10, seed=1,
                                                start_window=1.0,
                                                duration=3.0),
                             settle=1.0)
        assert result.configured
        # All demands expired inside the window: every offered bit has a
        # matching delivered bit, then the commodities were torn down.
        assert result.commodities == 0
        assert result.offered_bits > 0
        assert result.loss_fraction == pytest.approx(0.0)
        rendered = render_traffic_table([result])
        assert "ring-4" in rendered
        target = write_traffic_json([result], tmp_path / "traffic.json")
        assert target.exists() and target.read_text().startswith("[")

    def test_cli_traffic(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "traffic.json"
        assert main(["traffic", "--scenario", "ring-4", "--demands", "20",
                     "--model", "gravity", "--rate", "50000",
                     "--window", "5", "--settle", "1",
                     "--out", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "ring-4" in captured.out

    def test_cli_traffic_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["traffic", "--scenario", "no-such-scenario"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchFilter:
    def test_run_benchmarks_filter(self):
        from repro.experiments.bench import BENCHMARKS, run_benchmarks

        document = run_benchmarks(quick=True, name_filter="flow_mod_*")
        assert set(document["benchmarks"]) == {"flow_mod_codec"}
        assert all(name in BENCHMARKS for name in document["benchmarks"])

    def test_cli_bench_filter_no_match(self, capsys):
        from repro.cli import main

        assert main(["bench", "--quick", "--filter", "zzz_*"]) == 2
        assert "no benchmark case" in capsys.readouterr().err


class TestBenchFluidCases:
    def test_fixture_resolves_small_torus(self):
        from repro.experiments.bench import _torus_fluid_fixture

        _sim, network, routes, engine, addresses = _torus_fluid_fixture(3, 3)
        assert len(network.switches) == 9
        demands = uniform_demands(addresses, 500, rate_bps=10.0, seed=3)
        engine.register(demands, schedule=False)
        engine.reallocate()
        stats = engine.stats()
        assert stats["demands"] == 500
        assert stats["delivered_commodities"] == stats["commodities"]
        network.fail_link(1, 2)
        assert routes.reroute() > 0
        engine.reallocate()
        assert engine.stats()["delivered_commodities"] == \
            engine.stats()["commodities"]
        assert engine.affected_demands < 500 * 2  # incremental, not global
