"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"
        assert args.switches == 4
        assert args.vm_boot_delay == 5.0

    def test_fig3_sizes(self):
        args = build_parser().parse_args(["fig3", "--sizes", "4", "8"])
        assert args.sizes == [4, 8]

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "vm-latency"])
        assert args.which == "vm-latency"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "unknown"])


class TestCommands:
    def test_manual_command_prints_breakdown(self, capsys):
        assert main(["manual", "--switches", "28"]) == 0
        output = capsys.readouterr().out
        assert "7.0 hours" in output
        assert "create VMs" in output

    def test_quickstart_command_runs_small_ring(self, capsys):
        exit_code = main(["quickstart", "--switches", "3", "--vm-boot-delay", "1.0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ospf_converged" in output
        assert "configured 3/3 switches" in output
        assert "automatic:" in output

    def test_fig3_command_prints_table(self, capsys):
        assert main(["fig3", "--sizes", "4"]) == 0
        output = capsys.readouterr().out
        assert "switches" in output
        assert "manual" in output
        assert "4" in output
