"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.command == "quickstart"
        assert args.switches == 4
        assert args.vm_boot_delay == 5.0

    def test_fig3_sizes(self):
        args = build_parser().parse_args(["fig3", "--sizes", "4", "8"])
        assert args.sizes == [4, 8]

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "vm-latency"])
        assert args.which == "vm-latency"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "unknown"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "--scenario", "fat-tree-k4", "--scenario", "ring-4",
             "--workers", "8", "--out", "r.json", "--csv", "r.csv"])
        assert args.scenario == ["fat-tree-k4", "ring-4"]
        assert args.workers == 8
        assert args.out == "r.json"
        assert args.csv == "r.csv"


class TestCommands:
    def test_manual_command_prints_breakdown(self, capsys):
        assert main(["manual", "--switches", "28"]) == 0
        output = capsys.readouterr().out
        assert "7.0 hours" in output
        assert "create VMs" in output

    def test_quickstart_command_runs_small_ring(self, capsys):
        exit_code = main(["quickstart", "--switches", "3", "--vm-boot-delay", "1.0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ospf_converged" in output
        assert "configured 3/3 switches" in output
        assert "automatic:" in output

    def test_fig3_command_prints_table(self, capsys):
        assert main(["fig3", "--sizes", "4"]) == 0
        output = capsys.readouterr().out
        assert "switches" in output
        assert "manual" in output
        assert "4" in output

    def test_sweep_list_shows_catalogue(self, capsys):
        assert main(["sweep", "--list"]) == 0
        output = capsys.readouterr().out
        assert "fat-tree-k4" in output
        assert "pan-european" in output

    def test_sweep_without_selection_fails(self, capsys):
        assert main(["sweep"]) == 2
        assert "no scenarios selected" in capsys.readouterr().err

    def test_sweep_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["sweep", "--scenario", "no-such-thing"]) == 2
        err = capsys.readouterr().err
        assert "no scenario named 'no-such-thing'" in err

    def test_sweep_topology_error_fails_cleanly(self, capsys):
        from repro.scenarios import ScenarioSpec, register, unregister
        register(ScenarioSpec("tmp-bad-torus", "torus", {"rows": 1, "cols": 5}))
        try:
            assert main(["sweep", "--scenario", "tmp-bad-torus"]) == 2
            assert "at least 2 rows" in capsys.readouterr().err
        finally:
            unregister("tmp-bad-torus")

    def test_sweep_bad_export_paths_fail_before_running(self, capsys, tmp_path):
        assert main(["sweep", "--scenario", "ring-4",
                     "--out", "/no-such-dir/r.json"]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert main(["sweep", "--scenario", "ring-4",
                     "--out", str(tmp_path)]) == 2
        assert "is a directory" in capsys.readouterr().err

    def test_sweep_unwritable_export_fails_before_running(self, capsys,
                                                          tmp_path,
                                                          monkeypatch):
        # Root ignores file modes, so simulate the unwritable directory.
        import repro.cli as cli
        monkeypatch.setattr(cli.os, "access", lambda *_args, **_kw: False)
        assert main(["sweep", "--scenario", "ring-4",
                     "--out", str(tmp_path / "r.json")]) == 2
        assert "not writable" in capsys.readouterr().err

    def test_sweep_runs_and_exports(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main(["sweep", "--scenario", "ring-4", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "ring-4" in output
        assert out.exists()

    def test_sweep_controllers_override(self, capsys, tmp_path):
        out = tmp_path / "sharded.json"
        assert main(["sweep", "--scenario", "ring-4", "--controllers", "2",
                     "--out", str(out)]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload[0]["controllers"] == 2

    def test_sweep_rejects_bad_controllers(self, capsys):
        assert main(["sweep", "--scenario", "ring-4", "--controllers", "0"]) == 2
        assert "--controllers" in capsys.readouterr().err


class TestCtlScale:
    def test_ctlscale_arguments(self):
        args = build_parser().parse_args(
            ["ctlscale", "--scenario", "ring-16-c2", "--controllers", "1", "2",
             "--partitioner", "contiguous", "--csv", "loads.csv"])
        assert args.scenario == "ring-16-c2"
        assert args.controllers == [1, 2]
        assert args.partitioner == "contiguous"
        assert args.csv == "loads.csv"

    def test_ctlscale_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ctlscale"])

    def test_ctlscale_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["ctlscale", "--scenario", "nope"]) == 2
        assert "no scenario named" in capsys.readouterr().err

    def test_ctlscale_runs_and_exports(self, capsys, tmp_path):
        out = tmp_path / "ctl.json"
        csv_file = tmp_path / "ctl.csv"
        assert main(["ctlscale", "--scenario", "ring-4",
                     "--controllers", "1", "2",
                     "--out", str(out), "--csv", str(csv_file)]) == 0
        output = capsys.readouterr().out
        assert "per-shard load" in output
        assert "match the single-controller totals" in output
        assert out.exists() and csv_file.exists()
