"""Tests for the control-plane message bus (topics, envelopes, channels)."""

import pytest

from repro.bus import (
    BusError,
    ChannelFaults,
    Discipline,
    Envelope,
    MessageBus,
    topics,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def bus(sim):
    return MessageBus(sim)


class TestDelivery:
    def test_delay_channel_delivers_after_latency(self, sim, bus):
        bus.channel("t", latency=0.5, discipline=Discipline.DELAY)
        seen = []
        bus.subscribe("t", lambda env: seen.append((sim.now, env.payload)))
        bus.publish("t", "hello")
        assert seen == []  # nothing before the latency elapses
        sim.run()
        assert seen == [(0.5, "hello")]

    def test_equal_timestamp_messages_deliver_in_publish_order(self, sim, bus):
        """The kernel breaks timestamp ties by schedule order, so messages
        published at the same instant arrive in publish order."""
        bus.channel("t", latency=0.25, discipline=Discipline.DELAY)
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload))
        for index in range(20):
            bus.publish("t", f"m{index}")
        sim.run()
        assert seen == [f"m{index}" for index in range(20)]

    def test_publish_order_preserved_across_interleaved_topics(self, sim, bus):
        bus.channel("a", latency=0.1, discipline=Discipline.DELAY)
        bus.channel("b", latency=0.1, discipline=Discipline.DELAY)
        seen = []
        bus.subscribe("a", lambda env: seen.append(env.payload))
        bus.subscribe("b", lambda env: seen.append(env.payload))
        bus.publish("a", "1")
        bus.publish("b", "2")
        bus.publish("a", "3")
        sim.run()
        assert seen == ["1", "2", "3"]

    def test_direct_channel_delivers_synchronously(self, sim, bus):
        bus.channel("d", discipline=Discipline.DIRECT)
        seen = []
        bus.subscribe("d", lambda env: seen.append(sim.now))
        bus.publish("d", "x")
        assert seen == [0.0]          # delivered inside the publish call
        assert sim.pending() == 0     # and no kernel event was scheduled

    def test_fifo_channel_serialises_bursts(self, sim, bus):
        """A burst on a fifo channel drains one message per latency."""
        bus.channel("f", latency=1.0, discipline=Discipline.FIFO)
        seen = []
        bus.subscribe("f", lambda env: seen.append((sim.now, env.payload)))
        bus.publish("f", "a")
        bus.publish("f", "b")
        bus.publish("f", "c")
        sim.run()
        assert seen == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_delay_channel_same_burst_arrives_together(self, sim, bus):
        """Contrast with fifo: independent delays all land at t+latency."""
        bus.channel("t", latency=1.0, discipline=Discipline.DELAY)
        seen = []
        bus.subscribe("t", lambda env: seen.append(sim.now))
        bus.publish("t", "a")
        bus.publish("t", "b")
        sim.run()
        assert seen == [1.0, 1.0]

    def test_per_publish_latency_override(self, sim, bus):
        bus.channel("t", latency=1.0, discipline=Discipline.DELAY)
        seen = []
        bus.subscribe("t", lambda env: seen.append((sim.now, env.payload)))
        bus.publish("t", "slow")
        bus.publish("t", "fast", latency=0.1)
        sim.run()
        assert seen == [(0.1, "fast"), (1.0, "slow")]

    def test_label_override_controls_kernel_event_label(self, sim, bus):
        bus.channel("t", latency=0.5, discipline=Discipline.DELAY,
                    label="bus:default")
        labels = []
        sim.add_trace_hook(lambda event: labels.append(event.name))
        bus.subscribe("t", lambda env: None)
        bus.publish("t", "x")
        bus.publish("t", "y", label="custom:label")
        sim.run()
        assert labels == ["bus:default", "custom:label"]

    def test_envelope_metadata(self, sim, bus):
        bus.channel("t", latency=0.5, discipline=Discipline.DELAY)
        seen = []
        bus.subscribe("t", seen.append)
        sim.run(until=2.0)
        bus.publish("t", "payload", sender="me")
        sim.run()
        (envelope,) = seen
        assert envelope.topic == "t"
        assert envelope.sender == "me"
        assert envelope.published_at == 2.0
        assert envelope.payload == "payload"

    def test_sequence_numbers_are_total_publish_order(self, sim, bus):
        bus.channel("a", discipline=Discipline.DIRECT)
        bus.channel("b", discipline=Discipline.DIRECT)
        seqs = []
        bus.subscribe("a", lambda env: seqs.append(env.seq))
        bus.subscribe("b", lambda env: seqs.append(env.seq))
        bus.publish("a", "1")
        bus.publish("b", "2")
        bus.publish("a", "3")
        assert seqs == sorted(seqs) and len(set(seqs)) == 3


class TestStats:
    def test_per_topic_counters_and_bytes(self, sim, bus):
        bus.channel("t", latency=0.5, discipline=Discipline.DELAY)
        bus.subscribe("t", lambda env: None)
        payloads = ["abc", "defgh", ""]
        for payload in payloads:
            bus.publish("t", payload)
        stats = bus.stats()["t"]
        assert stats["published"] == 3
        assert stats["delivered"] == 0
        assert stats["in_flight"] == 3
        assert stats["bytes_published"] == sum(len(p) for p in payloads)
        sim.run()
        stats = bus.stats()["t"]
        assert stats["delivered"] == 3
        assert stats["in_flight"] == 0
        assert stats["bytes_delivered"] == sum(len(p) for p in payloads)

    def test_messages_without_subscribers_count_as_dropped(self, sim, bus):
        bus.channel("void", discipline=Discipline.DIRECT)
        bus.publish("void", "lost")
        stats = bus.stats()["void"]
        assert stats["published"] == 1
        assert stats["dropped"] == 1
        assert stats["delivered"] == 0

    def test_dropped_splits_no_subscriber_from_fault(self, sim, bus):
        bus.channel("t", discipline=Discipline.DIRECT)
        bus.publish("t", "no listener")           # nobody subscribed
        bus.configure_faults("t", drop=1.0)
        bus.subscribe("t", lambda env: None)
        bus.publish("t", "eaten by the fault")    # dropped by injection
        stats = bus.stats()["t"]
        assert stats["dropped_no_subscriber"] == 1
        assert stats["dropped_fault"] == 1
        # The aggregate stays the historical sum of both.
        assert stats["dropped"] == 2
        assert bus.stats()["_totals"]["dropped"] == 2

    def test_totals_aggregate_topics(self, sim, bus):
        bus.channel("a", discipline=Discipline.DIRECT)
        bus.channel("b", discipline=Discipline.DIRECT)
        bus.subscribe("a", lambda env: None)
        bus.publish("a", "xx")
        bus.publish("b", "yyy")
        totals = bus.stats()["_totals"]
        assert totals["published"] == 2
        assert totals["delivered"] == 1
        assert totals["dropped"] == 1
        assert totals["bytes_published"] == 5
        assert totals["topics"] == 2


class TestConfiguration:
    def test_conflicting_redeclaration_rejected(self, sim, bus):
        bus.channel("t", latency=0.5, discipline=Discipline.DELAY)
        with pytest.raises(BusError, match="conflicting"):
            bus.channel("t", latency=0.7, discipline=Discipline.DELAY)
        with pytest.raises(BusError, match="conflicting"):
            bus.channel("t", latency=0.5, discipline=Discipline.FIFO)
        # Identical redeclaration returns the same channel.
        assert bus.channel("t", latency=0.5,
                           discipline=Discipline.DELAY) is bus.channel(
            "t", latency=0.5, discipline=Discipline.DELAY)

    def test_conflicting_redeclaration_names_both_claimants(self, sim, bus):
        """The error must identify *both* sides of the conflict: who holds
        the channel and who tried to redeclare it."""
        bus.channel("t", latency=0.5, discipline=Discipline.DELAY,
                    label="rfserver:ipc")
        with pytest.raises(BusError) as excinfo:
            bus.channel("t", latency=0.7, discipline=Discipline.FIFO,
                        label="rfproxy:ipc")
        message = str(excinfo.value)
        assert "rfserver:ipc" in message and "rfproxy:ipc" in message
        assert "0.5" in message and "0.7" in message

    def test_direct_channel_with_latency_rejected(self, sim, bus):
        with pytest.raises(BusError, match="direct"):
            bus.channel("t", latency=0.5, discipline=Discipline.DIRECT)

    def test_unknown_discipline_rejected(self, sim, bus):
        with pytest.raises(BusError, match="discipline"):
            bus.channel("t", discipline="priority")

    def test_subscribe_auto_creates_direct_channel(self, sim, bus):
        bus.subscribe("auto", lambda env: None)
        assert bus.has_channel("auto")
        assert bus.stats()["auto"]["discipline"] == Discipline.DIRECT

    def test_implicit_channel_is_refined_by_later_declaration(self, sim, bus):
        """Subscribing (or publishing) before the owner declares the topic
        must not freeze the channel's configuration."""
        seen = []
        bus.subscribe("t", lambda env: seen.append(sim.now))
        bus.publish("t", "early")          # implicit: direct, delivered now
        assert seen == [0.0]
        channel = bus.channel("t", latency=0.5, discipline=Discipline.DELAY)
        assert channel.latency == 0.5      # refined in place
        assert channel.subscribers         # subscribers survived
        assert bus.stats()["t"]["published"] == 1  # counters survived
        bus.publish("t", "late")
        sim.run()
        assert seen == [0.0, 0.5]
        # A second *explicit* conflicting declaration still fails.
        with pytest.raises(BusError, match="conflicting"):
            bus.channel("t", latency=0.9, discipline=Discipline.DELAY)


class TestFaultInjection:
    def test_faults_are_dormant_by_default(self, sim, bus):
        bus.channel("d", discipline=Discipline.DIRECT)
        seen = []
        bus.subscribe("d", lambda env: seen.append(sim.now))
        bus.publish("d", "x")
        assert seen == [0.0]          # still synchronous
        assert sim.pending() == 0     # still no kernel event
        snapshot = bus.stats()["d"]
        assert snapshot["dropped_fault"] == 0
        assert snapshot["fault_duplicated"] == 0

    def test_drop_probability_one_eats_everything(self, sim, bus):
        bus.configure_faults("t", drop=1.0)
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload))
        for index in range(10):
            bus.publish("t", str(index))
        sim.run()
        assert seen == []
        assert bus.stats()["t"]["dropped_fault"] == 10

    def test_duplicate_probability_one_doubles_delivery(self, sim, bus):
        bus.channel("t", latency=0.1, discipline=Discipline.DELAY)
        bus.configure_faults("t", duplicate=1.0)
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload))
        bus.publish("t", "x")
        sim.run()
        assert seen == ["x", "x"]
        stats = bus.stats()["t"]
        assert stats["fault_duplicated"] == 1
        assert stats["delivered"] == 2
        assert stats["in_flight"] == 0

    def test_jitter_delays_direct_channels(self, sim, bus):
        bus.channel("d", discipline=Discipline.DIRECT)
        bus.configure_faults("d", jitter=0.5)
        seen = []
        bus.subscribe("d", lambda env: seen.append(sim.now))
        bus.publish("d", "x")
        assert seen == []             # jitter forced a scheduled delivery
        sim.run()
        assert len(seen) == 1 and 0.0 < seen[0] <= 0.5

    def test_fault_streams_deterministic_in_seed(self, sim):
        def run(seed):
            sim = Simulator()
            bus = MessageBus(sim, fault_seed=seed)
            bus.configure_faults("t", drop=0.3, duplicate=0.2, jitter=0.1)
            seen = []
            bus.subscribe("t", lambda env: seen.append((sim.now, env.payload)))
            for index in range(50):
                bus.publish("t", str(index))
            sim.run()
            return seen

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_pattern_matching_last_wins_and_covers_acks(self, sim, bus):
        bus.configure_faults("routeflow.*", drop=0.5)
        bus.configure_faults("routeflow.heartbeat", drop=0.0, jitter=1.0)
        assert bus.faults_for("routeflow.mapping").drop == 0.5
        hb = bus.faults_for("routeflow.heartbeat")
        assert hb.drop == 0.0 and hb.jitter == 1.0
        # Ack companion topics inherit the data topic's profile.
        assert bus.faults_for("routeflow.mapping.ack").drop == 0.5

    def test_clear_faults_restores_losslessness(self, sim, bus):
        bus.configure_faults("t", drop=1.0)
        bus.clear_faults("t")
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload))
        bus.publish("t", "x")
        assert seen == ["x"]

    def test_channel_faults_validation(self):
        with pytest.raises(ValueError):
            ChannelFaults(drop=1.5)
        with pytest.raises(ValueError):
            ChannelFaults(jitter=-0.1)
        with pytest.raises(ValueError):
            ChannelFaults.from_dict({"latency": 0.5})  # unknown key


class TestPartitions:
    def test_partition_blocks_only_the_pair(self, sim, bus):
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload),
                      endpoint="plane")
        bus.partition("shard:0", "plane")
        bus.publish("t", "blocked", endpoint="shard:0")
        bus.publish("t", "passes", endpoint="shard:1")
        assert seen == ["passes"]
        stats = bus.stats()["t"]
        assert stats["partitioned"] == 1
        assert stats["dropped_fault"] == 1

    def test_partition_never_blocks_unattributed_traffic(self, sim, bus):
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload),
                      endpoint="plane")
        bus.partition("shard:0", "plane")
        bus.publish("t", "anonymous")   # no endpoint -> never filtered
        assert seen == ["anonymous"]

    def test_heal_partition(self, sim, bus):
        seen = []
        bus.subscribe("t", lambda env: seen.append(env.payload),
                      endpoint="plane")
        bus.partition("shard:0", "plane")
        bus.heal_partition("shard:0", "plane")
        bus.publish("t", "x", endpoint="shard:0")
        assert seen == ["x"]
        assert not bus.partitions


class TestEnvelope:
    def test_json_round_trip(self):
        envelope = Envelope(topic="routeflow.route_mods.0", seq=7,
                            sender="rfclient:3", published_at=1.5,
                            payload='{"kind": "route_mod"}')
        assert Envelope.from_json(envelope.to_json()) == envelope

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="not an Envelope"):
            Envelope.from_json('{"kind": "route_mod"}')


class TestWellKnownTopics:
    def test_sharded_topics_carry_the_shard_index(self):
        assert topics.route_mods_topic(0) != topics.route_mods_topic(1)
        assert topics.flow_specs_topic(2).endswith(".2")
        assert topics.MAPPING != topics.PORT_STATUS
