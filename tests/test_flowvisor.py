"""Tests for the FlowVisor slicing proxy and flowspace."""

from __future__ import annotations

import pytest

from repro.controller import Controller, ControllerApp
from repro.core.ipam import IPAddressManager
from repro.flowvisor import FlowSpace, FlowVisor, Permission, build_paper_flowspace
from repro.net import Ethernet, EtherType, IPv4, IPv4Address, LLDP, LLDP_MULTICAST, MACAddress, UDP
from repro.net.ipv4 import IPProtocol
from repro.openflow import ErrorMessage, FlowMod, Match, OutputAction, PacketFields, PacketIn
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import linear_topology


def lldp_frame() -> bytes:
    return Ethernet(src=MACAddress(1), dst=LLDP_MULTICAST, ethertype=EtherType.LLDP,
                    payload=LLDP(chassis_id=1, port_id=1)).encode()


def ipv4_frame() -> bytes:
    packet = IPv4(src=IPv4Address("10.0.0.1"), dst=IPv4Address("10.0.0.2"),
                  protocol=IPProtocol.UDP, payload=UDP(1, 2, b"x"))
    return Ethernet(src=MACAddress(1), dst=MACAddress(2), ethertype=EtherType.IPV4,
                    payload=packet).encode()


class TestFlowSpace:
    def test_paper_flowspace_routes_lldp_to_topology_slice(self):
        flowspace = build_paper_flowspace("topo", "rf")
        fields = PacketFields.from_frame(lldp_frame())
        assert flowspace.slices_for_packet(fields) == ["topo", "rf"][:1] or \
            flowspace.slices_for_packet(fields)[0] == "topo"

    def test_paper_flowspace_routes_ipv4_to_routeflow_slice(self):
        flowspace = build_paper_flowspace("topo", "rf")
        fields = PacketFields.from_frame(ipv4_frame())
        slices = flowspace.slices_for_packet(fields)
        assert slices[0] == "rf"

    def test_read_permission_required_for_packet_in(self):
        flowspace = FlowSpace()
        flowspace.add(Match.wildcard_all(), "writer-only", Permission.WRITE)
        assert flowspace.slices_for_packet(PacketFields.from_frame(ipv4_frame())) == []

    def test_write_permission_check(self):
        flowspace = build_paper_flowspace("topo", "rf")
        route_match = Match.for_destination_prefix(IPv4Address("10.0.0.0"), 24)
        assert flowspace.may_write("rf", route_match)
        lldp_match = Match.wildcard_all().set_dl_type(EtherType.LLDP)
        assert flowspace.may_write("topo", lldp_match)
        assert not flowspace.may_write("unknown", route_match)

    def test_priority_order_decides_owner(self):
        flowspace = FlowSpace()
        flowspace.add(Match.wildcard_all(), "low", priority=10)
        flowspace.add(Match.wildcard_all(), "high", priority=100)
        slices = flowspace.slices_for_packet(PacketFields.from_frame(ipv4_frame()))
        assert slices[0] == "high"

    def test_duplicate_slice_not_repeated(self):
        flowspace = FlowSpace()
        flowspace.add(Match.wildcard_all(), "s", priority=10)
        flowspace.add(Match.wildcard_all(), "s", priority=20)
        assert flowspace.slices_for_packet(PacketFields.from_frame(ipv4_frame())) == ["s"]


class CountingApp(ControllerApp):
    def __init__(self):
        super().__init__()
        self.joined = []
        self.packet_ins = []
        self.errors = []

    def on_datapath_join(self, connection):
        self.joined.append(connection.datapath_id)

    def on_packet_in(self, connection, message):
        self.packet_ins.append((connection.datapath_id, message.data))

    def on_error(self, connection, message):
        self.errors.append(message)


@pytest.fixture
def sliced_network(sim):
    """Two switches behind FlowVisor with a topology slice and an RF slice."""
    topo_controller = Controller(sim, name="topo")
    rf_controller = Controller(sim, name="rf")
    topo_app = CountingApp()
    rf_app = CountingApp()
    topo_controller.register_app(topo_app)
    rf_controller.register_app(rf_app)
    flowvisor = FlowVisor(sim, build_paper_flowspace("topo", "rf"))
    flowvisor.add_slice("topo", topo_controller)
    flowvisor.add_slice("rf", rf_controller)
    network = EmulatedNetwork(sim, linear_topology(2), ipam=IPAddressManager())
    network.connect_control_plane(flowvisor.accept_switch_channel, flowvisor)
    sim.run(until=2.0)
    return flowvisor, topo_controller, rf_controller, topo_app, rf_app, network


class TestFlowVisor:
    def test_both_slices_see_every_switch(self, sliced_network):
        flowvisor, topo_controller, rf_controller, topo_app, rf_app, _ = sliced_network
        assert sorted(topo_app.joined) == [1, 2]
        assert sorted(rf_app.joined) == [1, 2]
        assert flowvisor.connected_switches == [1, 2]
        # Controllers see the true datapath features through the proxy.
        assert len(topo_controller.connection_for(1).ports) == 1

    def test_packet_in_routed_by_flowspace(self, sim, sliced_network):
        flowvisor, _, _, topo_app, rf_app, network = sliced_network
        # Inject an LLDP frame and an IPv4 frame on switch 1 port 1.
        switch = network.switch(1)
        switch._process_frame(1, lldp_frame())
        switch._process_frame(1, ipv4_frame())
        sim.run(until=4.0)
        assert any(data.startswith(lldp_frame()[:14]) for _, data in topo_app.packet_ins)
        assert all(Ethernet.decode(d).ethertype == EtherType.LLDP
                   for _, d in topo_app.packet_ins)
        assert any(Ethernet.decode(d).ethertype == EtherType.IPV4
                   for _, d in rf_app.packet_ins)
        assert flowvisor.packet_ins_routed >= 2

    def test_flow_mod_outside_flowspace_denied(self, sim, sliced_network):
        flowvisor, topo_controller, _, topo_app, _, network = sliced_network
        connection = topo_controller.connection_for(1)
        # The topology slice only owns LLDP; an IPv4 route is outside its space.
        ipv4_match = Match.for_destination_prefix(IPv4Address("10.0.0.0"), 24)
        connection.send_flow_mod(match=ipv4_match, actions=[OutputAction(1)])
        sim.run(until=4.0)
        assert flowvisor.flow_mods_denied == 1
        assert topo_app.errors, "slice should receive a permission error"
        assert len(network.switch(1).flow_table) == 0

    def test_flow_mod_inside_flowspace_forwarded(self, sim, sliced_network):
        flowvisor, _, rf_controller, _, _, network = sliced_network
        connection = rf_controller.connection_for(1)
        match = Match.for_destination_prefix(IPv4Address("10.0.0.0"), 24)
        connection.send_flow_mod(match=match, actions=[OutputAction(1)])
        sim.run(until=4.0)
        assert flowvisor.flow_mods_forwarded == 1
        assert len(network.switch(1).flow_table) == 1

    def test_barrier_reply_routed_back_with_original_xid(self, sim, sliced_network):
        from repro.openflow import BarrierReply, BarrierRequest

        flowvisor, _, rf_controller, _, _, _ = sliced_network
        connection = rf_controller.connection_for(2)
        received = []
        original_handle = rf_controller._handle

        def spy(conn, data):
            from repro.openflow import OpenFlowMessage
            message = OpenFlowMessage.decode(data)
            if isinstance(message, BarrierReply):
                received.append(message.xid)
            original_handle(conn, data)

        rf_controller._handle = spy
        connection.send(BarrierRequest(xid=4242))
        sim.run(until=4.0)
        assert received == [4242]

    def test_packet_out_forwarded_to_switch(self, sim, sliced_network):
        flowvisor, topo_controller, _, _, _, network = sliced_network
        connection = topo_controller.connection_for(1)
        before = network.switch(1).ports[1].interface.tx_packets
        connection.send_packet_out(lldp_frame(), out_port=1)
        sim.run(until=4.0)
        assert network.switch(1).ports[1].interface.tx_packets == before + 1

    def test_duplicate_slice_rejected(self, sim):
        flowvisor = FlowVisor(sim, FlowSpace())
        flowvisor.add_slice("a", Controller(sim))
        with pytest.raises(ValueError):
            flowvisor.add_slice("a", Controller(sim))
