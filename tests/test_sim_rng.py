"""Unit tests for the seeded randomness helpers."""

from __future__ import annotations

from repro.sim import SeededRandom


class TestSeededRandom:
    def test_same_seed_same_sequence(self):
        a = SeededRandom(7)
        b = SeededRandom(7)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = SeededRandom(1)
        b = SeededRandom(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent_and_reproducible(self):
        parent_a = SeededRandom(5)
        parent_b = SeededRandom(5)
        stream_a = parent_a.stream("ospf")
        stream_b = parent_b.stream("ospf")
        assert [stream_a.randint(0, 100) for _ in range(5)] == \
            [stream_b.randint(0, 100) for _ in range(5)]

    def test_named_streams_differ_from_each_other(self):
        parent = SeededRandom(5)
        one = parent.stream("one")
        two = parent.stream("two")
        assert [one.random() for _ in range(5)] != [two.random() for _ in range(5)]

    def test_uniform_respects_bounds(self):
        rng = SeededRandom(3)
        for _ in range(100):
            value = rng.uniform(2.0, 4.0)
            assert 2.0 <= value <= 4.0

    def test_choice_and_sample(self):
        rng = SeededRandom(3)
        population = list(range(10))
        assert rng.choice(population) in population
        sample = rng.sample(population, 4)
        assert len(sample) == 4
        assert len(set(sample)) == 4

    def test_shuffle_preserves_elements(self):
        rng = SeededRandom(3)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_jitter_zero_base(self):
        rng = SeededRandom(3)
        assert rng.jitter(0.0) == 0.0

    def test_jitter_stays_within_fraction(self):
        rng = SeededRandom(3)
        for _ in range(100):
            value = rng.jitter(10.0, fraction=0.2)
            assert 8.0 <= value <= 12.0
