"""Property-based round-trip tests for every bus message kind.

Each serialisable IPC payload — RouteMod, MappingRecord, ShardHeartbeat,
TakeoverAnnouncement, PortStatusRelay — and the bus Envelope itself must
survive ``to_json`` → ``from_json`` unchanged for randomized payloads, and
``payload_kind`` must discriminate every kind.  Hypothesis drives the
generation; ``derandomize=True`` pins the example stream so runs are
reproducible (the property suite is seeded, not flaky).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.bus import Envelope  # noqa: E402
from repro.routeflow.ipc import (  # noqa: E402
    MappingRecord,
    PortStatusRelay,
    RouteMod,
    ShardHeartbeat,
    TakeoverAnnouncement,
    payload_kind,
)

# JSON-safe building blocks.  Text stays unicode-arbitrary on purpose:
# json.dumps must escape whatever ends up in an interface name or reason.
names = st.text(max_size=40)
small_ints = st.integers(min_value=0, max_value=2**32)
sim_times = st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False)
octet = st.integers(min_value=0, max_value=255)
ip_strings = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
                       octet, octet, octet, octet)
prefix_strings = st.builds(lambda ip, length: f"{ip}/{length}",
                           ip_strings, st.integers(min_value=0, max_value=32))

route_mods = st.builds(
    RouteMod,
    mod_type=st.sampled_from(["add", "delete"]),
    vm_id=small_ints,
    prefix=prefix_strings,
    next_hop=st.one_of(st.none(), ip_strings),
    interface=names,
    metric=small_ints,
)

mapping_records = st.builds(
    MappingRecord,
    event=st.sampled_from([MappingRecord.VM_MAPPED,
                           MappingRecord.ADDRESS_ASSIGNED,
                           MappingRecord.ADDRESS_REMOVED]),
    vm_id=small_ints,
    datapath_id=small_ints,
    shard=st.integers(min_value=0, max_value=64),
    interface=names,
    address=st.one_of(st.none(), ip_strings),
    num_ports=st.integers(min_value=0, max_value=48),
)

heartbeats = st.builds(
    ShardHeartbeat,
    shard_id=st.integers(min_value=0, max_value=64),
    sent_at=sim_times,
    epoch=small_ints,
)

takeovers = st.builds(
    TakeoverAnnouncement,
    event=st.sampled_from([TakeoverAnnouncement.TAKEOVER,
                           TakeoverAnnouncement.RESHARD]),
    from_shard=st.integers(min_value=0, max_value=64),
    to_shard=st.integers(min_value=0, max_value=64),
    datapaths=st.lists(small_ints, max_size=16),
    reason=names,
)

port_statuses = st.builds(
    PortStatusRelay,
    dpid_a=small_ints,
    port_a=st.integers(min_value=1, max_value=255),
    dpid_b=small_ints,
    port_b=st.integers(min_value=1, max_value=255),
    up=st.booleans(),
)

KINDS = [
    ("route_mod", route_mods, RouteMod),
    ("mapping_record", mapping_records, MappingRecord),
    ("shard_heartbeat", heartbeats, ShardHeartbeat),
    ("takeover", takeovers, TakeoverAnnouncement),
    ("port_status", port_statuses, PortStatusRelay),
]


class TestPayloadRoundTrips:
    @settings(derandomize=True)
    @given(message=route_mods)
    def test_route_mod(self, message):
        assert RouteMod.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=mapping_records)
    def test_mapping_record(self, message):
        assert MappingRecord.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=heartbeats)
    def test_shard_heartbeat(self, message):
        assert ShardHeartbeat.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=takeovers)
    def test_takeover_announcement(self, message):
        assert TakeoverAnnouncement.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=port_statuses)
    def test_port_status_relay(self, message):
        assert PortStatusRelay.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(envelope=st.builds(
        Envelope, topic=names, seq=small_ints, sender=names,
        published_at=sim_times, payload=st.text(max_size=200)))
    def test_envelope(self, envelope):
        assert Envelope.from_json(envelope.to_json()) == envelope

    @settings(derandomize=True)
    @given(message=st.one_of(*(strategy for _, strategy, _ in KINDS)))
    def test_payload_kind_discriminates(self, message):
        expected = {cls: kind for kind, _, cls in KINDS}[type(message)]
        assert payload_kind(message.to_json()) == expected

    @settings(derandomize=True)
    @given(message=takeovers)
    def test_wrong_decoder_rejects(self, message):
        text = message.to_json()
        for kind, _, cls in KINDS:
            if cls is TakeoverAnnouncement:
                continue
            with pytest.raises(ValueError, match="not a"):
                cls.from_json(text)


class TestPayloadKindEdgeCases:
    def test_garbage_is_none(self):
        assert payload_kind("not json at all") is None

    def test_non_dict_json_is_none(self):
        assert payload_kind("[1, 2, 3]") is None
        assert payload_kind('"route_mod"') is None

    def test_missing_or_non_string_kind_is_none(self):
        assert payload_kind('{"vm_id": 3}') is None
        assert payload_kind('{"kind": 7}') is None

    def test_envelope_kind_visible(self):
        envelope = Envelope(topic="t", seq=1, sender="s", published_at=0.0,
                            payload="p")
        assert payload_kind(envelope.to_json()) == "envelope"
