"""Property-based tests for the IPC layer: payload round-trips and
reliable delivery.

Each serialisable IPC payload — RouteMod, MappingRecord, ShardHeartbeat,
TakeoverAnnouncement, PortStatusRelay — and the bus Envelope itself must
survive ``to_json`` → ``from_json`` unchanged for randomized payloads, and
``payload_kind`` must discriminate every kind.

The reliable-delivery properties pin what :mod:`repro.bus.reliable`
exists for: under *any* interleaving of drops, duplicates and reordering
— adversarial wire schedules within the reorder window, and any fault
profile the injector can express — every consumer observes each sender's
messages exactly once, in publish order.

Hypothesis drives the generation; ``derandomize=True`` pins the example
stream so runs are reproducible (the property suite is seeded, not
flaky).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.bus import (  # noqa: E402
    Discipline,
    Envelope,
    MessageBus,
    ReliablePolicy,
    acquire_publisher,
    consume,
)
from repro.bus.reliable import _wrap  # noqa: E402
from repro.routeflow.ipc import (  # noqa: E402
    MappingRecord,
    PortStatusRelay,
    RouteMod,
    ShardHeartbeat,
    TakeoverAnnouncement,
    payload_kind,
)
from repro.sim import Simulator  # noqa: E402

# JSON-safe building blocks.  Text stays unicode-arbitrary on purpose:
# json.dumps must escape whatever ends up in an interface name or reason.
names = st.text(max_size=40)
small_ints = st.integers(min_value=0, max_value=2**32)
sim_times = st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False)
octet = st.integers(min_value=0, max_value=255)
ip_strings = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
                       octet, octet, octet, octet)
prefix_strings = st.builds(lambda ip, length: f"{ip}/{length}",
                           ip_strings, st.integers(min_value=0, max_value=32))

route_mods = st.builds(
    RouteMod,
    mod_type=st.sampled_from(["add", "delete"]),
    vm_id=small_ints,
    prefix=prefix_strings,
    next_hop=st.one_of(st.none(), ip_strings),
    interface=names,
    metric=small_ints,
)

mapping_records = st.builds(
    MappingRecord,
    event=st.sampled_from([MappingRecord.VM_MAPPED,
                           MappingRecord.ADDRESS_ASSIGNED,
                           MappingRecord.ADDRESS_REMOVED]),
    vm_id=small_ints,
    datapath_id=small_ints,
    shard=st.integers(min_value=0, max_value=64),
    interface=names,
    address=st.one_of(st.none(), ip_strings),
    num_ports=st.integers(min_value=0, max_value=48),
)

heartbeats = st.builds(
    ShardHeartbeat,
    shard_id=st.integers(min_value=0, max_value=64),
    sent_at=sim_times,
    epoch=small_ints,
)

takeovers = st.builds(
    TakeoverAnnouncement,
    event=st.sampled_from([TakeoverAnnouncement.TAKEOVER,
                           TakeoverAnnouncement.RESHARD]),
    from_shard=st.integers(min_value=0, max_value=64),
    to_shard=st.integers(min_value=0, max_value=64),
    datapaths=st.lists(small_ints, max_size=16),
    reason=names,
)

port_statuses = st.builds(
    PortStatusRelay,
    dpid_a=small_ints,
    port_a=st.integers(min_value=1, max_value=255),
    dpid_b=small_ints,
    port_b=st.integers(min_value=1, max_value=255),
    up=st.booleans(),
)

KINDS = [
    ("route_mod", route_mods, RouteMod),
    ("mapping_record", mapping_records, MappingRecord),
    ("shard_heartbeat", heartbeats, ShardHeartbeat),
    ("takeover", takeovers, TakeoverAnnouncement),
    ("port_status", port_statuses, PortStatusRelay),
]


class TestPayloadRoundTrips:
    @settings(derandomize=True)
    @given(message=route_mods)
    def test_route_mod(self, message):
        assert RouteMod.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=mapping_records)
    def test_mapping_record(self, message):
        assert MappingRecord.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=heartbeats)
    def test_shard_heartbeat(self, message):
        assert ShardHeartbeat.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=takeovers)
    def test_takeover_announcement(self, message):
        assert TakeoverAnnouncement.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(message=port_statuses)
    def test_port_status_relay(self, message):
        assert PortStatusRelay.from_json(message.to_json()) == message

    @settings(derandomize=True)
    @given(envelope=st.builds(
        Envelope, topic=names, seq=small_ints, sender=names,
        published_at=sim_times, payload=st.text(max_size=200)))
    def test_envelope(self, envelope):
        assert Envelope.from_json(envelope.to_json()) == envelope

    @settings(derandomize=True)
    @given(message=st.one_of(*(strategy for _, strategy, _ in KINDS)))
    def test_payload_kind_discriminates(self, message):
        expected = {cls: kind for kind, _, cls in KINDS}[type(message)]
        assert payload_kind(message.to_json()) == expected

    @settings(derandomize=True)
    @given(message=takeovers)
    def test_wrong_decoder_rejects(self, message):
        text = message.to_json()
        for kind, _, cls in KINDS:
            if cls is TakeoverAnnouncement:
                continue
            with pytest.raises(ValueError, match="not a"):
                cls.from_json(text)


class TestPayloadKindEdgeCases:
    def test_garbage_is_none(self):
        assert payload_kind("not json at all") is None

    def test_non_dict_json_is_none(self):
        assert payload_kind("[1, 2, 3]") is None
        assert payload_kind('"route_mod"') is None

    def test_missing_or_non_string_kind_is_none(self):
        assert payload_kind('{"vm_id": 3}') is None
        assert payload_kind('{"kind": 7}') is None

    def test_envelope_kind_visible(self):
        envelope = Envelope(topic="t", seq=1, sender="s", published_at=0.0,
                            payload="p")
        assert payload_kind(envelope.to_json()) == "envelope"


# --------------------------------------------------------------------------
# Reliable-delivery properties
# --------------------------------------------------------------------------

WINDOW = ReliablePolicy().window


def _reliable_bus(fault_seed=0, policy=None):
    sim = Simulator()
    bus = MessageBus(sim, fault_seed=fault_seed)
    bus.enable_reliability((("t", policy or ReliablePolicy()),))
    return sim, bus


@st.composite
def wire_schedules(draw):
    """An adversarial delivery schedule for seqs ``1..n``: every message
    arrives at least once (the transport guarantees that much), in
    arbitrary order, with arbitrary extra duplicates — all within the
    consumer's reorder window."""
    n = draw(st.integers(min_value=1, max_value=WINDOW))
    seqs = list(range(1, n + 1))
    extras = draw(st.lists(st.sampled_from(seqs), max_size=2 * n))
    return n, draw(st.permutations(seqs + extras))


class TestConsumerAgainstAdversarialWire:
    @settings(derandomize=True, deadline=None, max_examples=200)
    @given(schedule=wire_schedules())
    def test_any_in_window_interleaving_applies_exactly_once_in_order(
            self, schedule):
        n, arrivals = schedule
        sim, bus = _reliable_bus()
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        for seq in arrivals:
            bus.publish("t", _wrap("me", 1, 1, seq, f"m{seq}"), sender="me")
        assert seen == [f"m{seq}" for seq in range(1, n + 1)]

    @settings(derandomize=True, deadline=None, max_examples=100)
    @given(schedule=wire_schedules())
    def test_delivered_sequence_is_an_in_order_prefix_at_every_step(
            self, schedule):
        """Not just at the end: after *each* arrival the delivered
        sequence is a contiguous in-order prefix ``1..k``."""
        _, arrivals = schedule
        sim, bus = _reliable_bus()
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        for seq in arrivals:
            bus.publish("t", _wrap("me", 1, 1, seq, f"m{seq}"), sender="me")
            assert seen == [f"m{s}" for s in range(1, len(seen) + 1)]

    @settings(derandomize=True, deadline=None, max_examples=100)
    @given(events=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.integers(min_value=1, max_value=8)),
        max_size=40))
    def test_interleaved_senders_keep_independent_streams(self, events):
        """Dedup/reorder state is per sender: interleaving three senders'
        messages never lets one stream corrupt another's ordering."""
        sim, bus = _reliable_bus()
        seen = {"a": [], "b": [], "c": []}

        def record(env):
            src, seq = env.payload.split(":")
            seen[src].append(int(seq))

        consume(bus, "t", record)
        for src, seq in events:
            bus.publish("t", _wrap(src, 1, 1, seq, f"{src}:{seq}"),
                        sender=src)
        for delivered in seen.values():
            assert delivered == list(range(1, len(delivered) + 1))


class TestRoundTripUnderFaults:
    @settings(derandomize=True, deadline=None, max_examples=40)
    @given(drop=st.floats(min_value=0.0, max_value=0.3),
           duplicate=st.floats(min_value=0.0, max_value=0.3),
           reorder=st.floats(min_value=0.0, max_value=0.5),
           jitter=st.floats(min_value=0.0, max_value=0.1),
           fault_seed=st.integers(min_value=0, max_value=2**31),
           count=st.integers(min_value=1, max_value=100))
    def test_roundtrip_is_exactly_once_in_order_for_any_fault_profile(
            self, drop, duplicate, reorder, jitter, fault_seed, count):
        """The full protocol — acks riding the same lossy wire — converges
        to exactly-once in-order delivery for any fault profile the
        injector can express."""
        sim, bus = _reliable_bus(fault_seed=fault_seed)
        bus.channel("t", latency=0.05, discipline=Discipline.DELAY)
        bus.configure_faults("t", drop=drop, duplicate=duplicate,
                             reorder=reorder, jitter=jitter)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "t", "me")
        sent = [f"m{index}" for index in range(count)]
        for payload in sent:
            publisher.publish(payload)
        sim.run()
        assert seen == sent
        assert publisher.pending == 0
        assert bus.stats()["t"]["exhausted"] == 0


class TestSeqModeProperties:
    @settings(derandomize=True, deadline=None, max_examples=100)
    @given(arrivals=st.lists(st.integers(min_value=1, max_value=30),
                             max_size=60))
    def test_seq_mode_only_ever_delivers_strictly_fresher_beats(
            self, arrivals):
        """Whatever the wire does to a seq-mode (heartbeat) stream, the
        consumer sees strictly increasing sequence numbers — stale and
        duplicate beats never reach the failure detector."""
        sim, bus = _reliable_bus(policy=ReliablePolicy(mode="seq"))
        seen = []
        consume(bus, "t", lambda env: seen.append(int(env.payload)))
        for seq in arrivals:
            bus.publish("t", _wrap("hb", 1, 1, seq, str(seq)), sender="hb")
        assert seen == sorted(set(seen))
        assert set(seen) <= set(arrivals)
