"""Tests for the controller framework and LLDP topology discovery."""

from __future__ import annotations

import pytest

from repro.controller import Controller, ControllerApp, DatapathConnection, TopologyDiscovery
from repro.core.ipam import IPAddressManager
from repro.openflow import PacketIn
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import linear_topology, ring_topology


class RecordingApp(ControllerApp):
    """Collects every event for assertions."""

    def __init__(self):
        super().__init__(name="recorder")
        self.joined = []
        self.left = []
        self.packet_ins = []
        self.port_statuses = []

    def on_datapath_join(self, connection):
        self.joined.append(connection.datapath_id)

    def on_datapath_leave(self, connection):
        self.left.append(connection.datapath_id)

    def on_packet_in(self, connection, message):
        self.packet_ins.append((connection.datapath_id, message.in_port))

    def on_port_status(self, connection, message):
        self.port_statuses.append((connection.datapath_id, message.port.port_no))


def build_network(sim, topology, controller):
    network = EmulatedNetwork(sim, topology, ipam=IPAddressManager())
    network.connect_control_plane(controller.accept_channel, controller)
    return network


class TestController:
    def test_handshake_registers_datapaths(self, sim):
        controller = Controller(sim, name="c0")
        app = RecordingApp()
        controller.register_app(app)
        build_network(sim, linear_topology(3), controller)
        sim.run(until=2.0)
        assert sorted(app.joined) == [1, 2, 3]
        assert controller.connected_datapaths == [1, 2, 3]
        connection = controller.connection_for(2)
        assert connection is not None
        assert connection.handshake_complete
        assert len(connection.ports) == 2  # middle switch of a 3-chain

    def test_apps_receive_events_in_registration_order(self, sim):
        controller = Controller(sim, name="c0")
        order = []

        class First(ControllerApp):
            def on_datapath_join(self, connection):
                order.append("first")

        class Second(ControllerApp):
            def on_datapath_join(self, connection):
                order.append("second")

        controller.register_app(First())
        controller.register_app(Second())
        build_network(sim, linear_topology(2), controller)
        sim.run(until=2.0)
        assert order[:2] == ["first", "second"]

    def test_app_lookup_by_type(self, sim):
        controller = Controller(sim)
        app = RecordingApp()
        controller.register_app(app)
        assert controller.app(RecordingApp) is app
        assert controller.app(TopologyDiscovery) is None

    def test_channel_close_triggers_leave(self, sim):
        controller = Controller(sim, name="c0")
        app = RecordingApp()
        controller.register_app(app)
        network = build_network(sim, linear_topology(2), controller)
        sim.run(until=2.0)
        network.control_channel(1).close()
        sim.run(until=3.0)
        assert app.left == [1]
        assert controller.connection_for(1) is None

    def test_port_status_updates_connection_ports(self, sim):
        controller = Controller(sim, name="c0")
        app = RecordingApp()
        controller.register_app(app)
        network = build_network(sim, linear_topology(2), controller)
        sim.run(until=2.0)
        network.switch(1).set_port_state(1, up=False)
        sim.run(until=3.0)
        assert (1, 1) in app.port_statuses


class TestDiscovery:
    def build(self, sim, topology, probe_interval=2.0):
        controller = Controller(sim, name="topo")
        discovery = TopologyDiscovery(probe_interval=probe_interval)
        controller.register_app(discovery)
        network = build_network(sim, topology, controller)
        return controller, discovery, network

    def test_switches_reported(self, sim):
        _, discovery, _ = self.build(sim, ring_topology(4))
        seen = []
        discovery.on_switch_discovered(lambda dpid, ports: seen.append((dpid, tuple(ports))))
        sim.run(until=3.0)
        assert sorted(d for d, _ in seen) == [1, 2, 3, 4]
        # Every ring switch has exactly two ports.
        assert all(ports == (1, 2) for _, ports in seen)

    def test_links_discovered_in_both_directions(self, sim):
        _, discovery, _ = self.build(sim, linear_topology(2))
        sim.run(until=10.0)
        assert len(discovery.links) == 2  # one per direction
        assert len(discovery.bidirectional_links) == 1

    def test_ring_links_all_found(self, sim):
        _, discovery, _ = self.build(sim, ring_topology(6))
        sim.run(until=15.0)
        assert len(discovery.bidirectional_links) == 6

    def test_link_callbacks_fire_once_per_direction(self, sim):
        _, discovery, _ = self.build(sim, linear_topology(2))
        events = []
        discovery.on_link_discovered(events.append)
        sim.run(until=20.0)
        assert len(events) == 2
        canonical = {link.canonical() for link in events}
        assert len(canonical) == 1

    def test_lldp_counters_increase(self, sim):
        _, discovery, _ = self.build(sim, linear_topology(3))
        sim.run(until=10.0)
        assert discovery.lldp_sent > 0
        assert discovery.lldp_received > 0

    def test_link_failure_times_out(self, sim):
        _, discovery, network = self.build(sim, linear_topology(2), probe_interval=2.0)
        discovery.link_timeout = 6.0
        lost = []
        discovery.on_link_lost(lost.append)
        sim.run(until=10.0)
        assert len(discovery.bidirectional_links) == 1
        network.fail_link(1, 2)
        sim.run(until=30.0)
        assert lost, "link loss should be reported after the timeout"
        assert len(discovery.bidirectional_links) == 0

    def test_topology_snapshot(self, sim):
        _, discovery, _ = self.build(sim, linear_topology(3))
        sim.run(until=10.0)
        snapshot = discovery.topology_snapshot()
        assert snapshot["switches"] == [1, 2, 3]
        assert len(snapshot["links"]) == 2

    def test_non_lldp_packet_in_ignored(self, sim):
        controller = Controller(sim, name="topo")
        discovery = TopologyDiscovery()
        controller.register_app(discovery)
        connection = DatapathConnection(controller, channel=None)
        connection.datapath_id = 42
        message = PacketIn(buffer_id=0, in_port=1, reason=0, data=b"not lldp")
        discovery.on_packet_in(connection, message)
        assert discovery.links == {}
