"""Integration tests: OSPF adjacency formation between RouteFlow VMs.

These tests drive real VirtualMachine instances wired together by the
RouteFlow virtual switch, booting zebra + ospfd from generated Quagga
configuration files — the same path the RPC server exercises.
"""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network
from repro.quagga import (
    InterfaceConfig,
    OSPFNetworkStatement,
    generate_ospfd_conf,
    generate_zebra_conf,
)
from repro.quagga.ospf.constants import NeighborState
from repro.routeflow import RFVirtualSwitch, VirtualMachine
from repro.sim import Simulator


def configure_vm(vm: VirtualMachine, router_id: str,
                 interfaces: list, hello: int = 2) -> None:
    """Write zebra.conf + ospfd.conf covering the given (name, ip, plen) list."""
    iface_configs = [InterfaceConfig(name, IPv4Address(ip), plen)
                     for name, ip, plen in interfaces]
    vm.write_config_file("zebra.conf", generate_zebra_conf(vm.name, iface_configs))
    statements = [OSPFNetworkStatement(IPv4Network((IPv4Address(ip), plen)))
                  for _, ip, plen in interfaces]
    vm.write_config_file("ospfd.conf", generate_ospfd_conf(
        f"{vm.name}-ospfd", IPv4Address(router_id), statements,
        hello_interval=hello, dead_interval=4 * hello))


@pytest.fixture
def linked_pair(sim):
    """Two VMs with one point-to-point link, booted and configured."""
    rfvs = RFVirtualSwitch(sim)
    vm_a = VirtualMachine(sim, vm_id=1, num_ports=2, boot_delay=1.0)
    vm_b = VirtualMachine(sim, vm_id=2, num_ports=2, boot_delay=1.0)
    rfvs.connect(vm_a.interface("eth1"), vm_b.interface("eth1"))
    configure_vm(vm_a, "10.0.0.1", [("eth1", "172.16.0.1", 30),
                                    ("eth2", "192.168.1.1", 24)])
    configure_vm(vm_b, "10.0.0.2", [("eth1", "172.16.0.2", 30),
                                    ("eth2", "192.168.2.1", 24)])
    vm_a.start()
    vm_b.start()
    return vm_a, vm_b, rfvs


class TestAdjacency:
    def test_full_adjacency_forms(self, sim, linked_pair):
        vm_a, vm_b, _ = linked_pair
        sim.run(until=30.0)
        assert vm_a.ospf is not None and vm_b.ospf is not None
        assert vm_a.ospf.full_neighbor_count == 1
        assert vm_b.ospf.full_neighbor_count == 1
        neighbor = vm_a.ospf.interfaces["eth1"].neighbors[IPv4Address("10.0.0.2")]
        assert neighbor.state == NeighborState.FULL
        assert neighbor.address == IPv4Address("172.16.0.2")

    def test_lsdbs_synchronise(self, sim, linked_pair):
        vm_a, vm_b, _ = linked_pair
        sim.run(until=30.0)
        keys_a = {lsa.key for lsa in vm_a.ospf.lsdb.lsas}
        keys_b = {lsa.key for lsa in vm_b.ospf.lsdb.lsas}
        assert keys_a == keys_b
        assert len(keys_a) == 2

    def test_remote_stub_routes_installed(self, sim, linked_pair):
        vm_a, vm_b, _ = linked_pair
        sim.run(until=30.0)
        remote = IPv4Network("192.168.2.0/24")
        assert remote in vm_a.zebra.fib
        route = vm_a.zebra.fib[remote]
        assert route.source == "ospf"
        assert route.next_hop == IPv4Address("172.16.0.2")
        assert route.interface == "eth1"
        # And symmetrically on the other VM.
        assert IPv4Network("192.168.1.0/24") in vm_b.zebra.fib

    def test_connected_routes_not_overridden(self, sim, linked_pair):
        vm_a, _, _ = linked_pair
        sim.run(until=30.0)
        link_prefix = IPv4Network("172.16.0.0/30")
        assert vm_a.zebra.fib[link_prefix].source == "connected"

    def test_neighbor_dead_timer_withdraws_routes(self, sim, linked_pair):
        vm_a, vm_b, rfvs = linked_pair
        sim.run(until=30.0)
        assert IPv4Network("192.168.2.0/24") in vm_a.zebra.fib
        rfvs.disconnect(vm_a.interface("eth1"), vm_b.interface("eth1"))
        sim.run(until=80.0)
        assert vm_a.ospf.full_neighbor_count == 0
        assert IPv4Network("192.168.2.0/24") not in vm_a.zebra.fib

    def test_show_ip_ospf_neighbor_lists_peer(self, sim, linked_pair):
        vm_a, _, _ = linked_pair
        sim.run(until=30.0)
        output = vm_a.ospf.show_ip_ospf_neighbor()
        assert "10.0.0.2" in output
        assert "Full" in output

    def test_spf_run_counters(self, sim, linked_pair):
        vm_a, _, _ = linked_pair
        sim.run(until=30.0)
        assert vm_a.ospf.spf_runs >= 1
        assert vm_a.ospf.lsas_originated >= 2  # initial + after adjacency


class TestThreeNodeLine:
    def build(self, sim, hello=2):
        rfvs = RFVirtualSwitch(sim)
        vms = {i: VirtualMachine(sim, vm_id=i, num_ports=2, boot_delay=0.5)
               for i in (1, 2, 3)}
        rfvs.connect(vms[1].interface("eth1"), vms[2].interface("eth1"))
        rfvs.connect(vms[2].interface("eth2"), vms[3].interface("eth1"))
        configure_vm(vms[1], "10.0.0.1", [("eth1", "172.16.0.1", 30),
                                          ("eth2", "192.168.1.1", 24)], hello)
        configure_vm(vms[2], "10.0.0.2", [("eth1", "172.16.0.2", 30),
                                          ("eth2", "172.16.0.5", 30)], hello)
        configure_vm(vms[3], "10.0.0.3", [("eth1", "172.16.0.6", 30),
                                          ("eth2", "192.168.3.1", 24)], hello)
        for vm in vms.values():
            vm.start()
        return vms

    def test_multi_hop_route_via_middle_router(self, sim):
        vms = self.build(sim)
        sim.run(until=60.0)
        remote = IPv4Network("192.168.3.0/24")
        assert remote in vms[1].zebra.fib
        route = vms[1].zebra.fib[remote]
        # Next hop is the middle router's interface towards VM 1.
        assert route.next_hop == IPv4Address("172.16.0.2")
        assert route.metric == 30  # two p2p hops + stub cost

    def test_every_vm_learns_every_prefix(self, sim):
        vms = self.build(sim)
        sim.run(until=60.0)
        all_prefixes = {IPv4Network("172.16.0.0/30"), IPv4Network("172.16.0.4/30"),
                        IPv4Network("192.168.1.0/24"), IPv4Network("192.168.3.0/24")}
        for vm in vms.values():
            assert all_prefixes.issubset(set(vm.zebra.fib))

    def test_flooding_reaches_non_adjacent_router(self, sim):
        vms = self.build(sim)
        sim.run(until=60.0)
        assert vms[1].ospf.lsdb.router_lsa(IPv4Address("10.0.0.3")) is not None
