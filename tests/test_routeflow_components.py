"""Tests for RouteFlow building blocks: VM, mapping, IPC, virtual switch."""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network, MACAddress
from repro.quagga import InterfaceConfig, generate_ospfd_conf, generate_zebra_conf
from repro.quagga.configfile import OSPFNetworkStatement
from repro.routeflow import (
    MappingError,
    MappingTable,
    RFVirtualSwitch,
    RouteMod,
    RouteModType,
    VirtualMachine,
    VMState,
)


class TestVirtualMachine:
    def test_interfaces_created_for_each_port(self, sim):
        vm = VirtualMachine(sim, vm_id=7, num_ports=3)
        assert sorted(vm.interfaces) == ["eth1", "eth2", "eth3"]
        assert vm.num_ports == 3
        assert vm.interface_for_port(2).name == "eth2"
        macs = {iface.mac for iface in vm.interfaces.values()}
        assert len(macs) == 3

    def test_boot_delay_gates_running_state(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1, boot_delay=5.0)
        vm.start()
        sim.run(until=4.0)
        assert vm.state == VMState.BOOTING
        assert not vm.is_running
        sim.run(until=5.5)
        assert vm.is_running
        assert vm.running_since == pytest.approx(5.0)

    def test_config_written_before_boot_is_applied_after_boot(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1, boot_delay=2.0)
        vm.start()
        text = generate_zebra_conf(vm.name, [InterfaceConfig("eth1", IPv4Address("10.0.0.1"), 24)])
        vm.write_config_file("zebra.conf", text)
        assert vm.interface("eth1").ip is None
        sim.run(until=3.0)
        assert vm.interface("eth1").ip == IPv4Address("10.0.0.1")
        assert IPv4Network("10.0.0.0/24") in vm.zebra.fib

    def test_ospfd_config_starts_daemon(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1, boot_delay=0.5)
        vm.start()
        vm.write_config_file("zebra.conf", generate_zebra_conf(
            vm.name, [InterfaceConfig("eth1", IPv4Address("10.0.0.1"), 24)]))
        vm.write_config_file("ospfd.conf", generate_ospfd_conf(
            "o", IPv4Address("1.1.1.1"),
            [OSPFNetworkStatement(IPv4Network("10.0.0.0/24"))]))
        sim.run(until=5.0)
        assert vm.ospf is not None
        assert vm.ospf.running
        assert "eth1" in vm.ospf.interfaces

    def test_hello_interval_override(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1, boot_delay=0.5, hello_interval=2)
        vm.start()
        vm.write_config_file("ospfd.conf", generate_ospfd_conf(
            "o", IPv4Address("1.1.1.1"), [], hello_interval=10))
        sim.run(until=3.0)
        assert vm.ospf.config.hello_interval == 2
        assert vm.ospf.config.dead_interval == 8

    def test_unknown_config_file_ignored(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1, boot_delay=0.1)
        vm.start()
        sim.run(until=1.0)
        vm.write_config_file("ripd.conf", "hostname rip\n")
        assert "ripd.conf" in vm.config_files

    def test_owns_ip(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=2, boot_delay=0.1)
        vm.start()
        vm.write_config_file("zebra.conf", generate_zebra_conf(
            vm.name, [InterfaceConfig("eth2", IPv4Address("172.16.0.5"), 30)]))
        sim.run(until=1.0)
        assert vm.owns_ip(IPv4Address("172.16.0.5")).name == "eth2"
        assert vm.owns_ip(IPv4Address("172.16.0.9")) is None

    def test_stop_prevents_further_activity(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1, boot_delay=0.1)
        vm.start()
        sim.run(until=1.0)
        vm.stop()
        assert vm.state == VMState.STOPPED
        assert not vm.is_running

    def test_add_port_after_creation(self, sim):
        vm = VirtualMachine(sim, vm_id=1, num_ports=1)
        iface = vm.add_port(2)
        assert iface.name == "eth2"
        assert vm.add_port(2) is iface  # idempotent


class TestMappingTable:
    def test_vm_and_port_mapping(self):
        table = MappingTable()
        table.map_vm(1, 0x11)
        table.map_port(1, "eth1", 0x11, 1)
        table.map_port(1, "eth2", 0x11, 2)
        assert table.dpid_for_vm(1) == 0x11
        assert table.vm_for_dpid(0x11) == 1
        assert table.interface_for_port(0x11, 2) == "eth2"
        assert table.port_for_interface(1, "eth1") == 1
        assert len(table) == 1
        assert 1 in table
        assert len(table.port_mappings) == 2

    def test_conflicting_vm_mapping_rejected(self):
        table = MappingTable()
        table.map_vm(1, 0x11)
        with pytest.raises(MappingError):
            table.map_vm(1, 0x22)
        with pytest.raises(MappingError):
            table.map_vm(2, 0x11)

    def test_remapping_same_pair_is_idempotent(self):
        table = MappingTable()
        table.map_vm(1, 0x11)
        table.map_vm(1, 0x11)
        assert len(table) == 1

    def test_port_mapping_requires_vm_mapping(self):
        table = MappingTable()
        with pytest.raises(MappingError):
            table.map_port(1, "eth1", 0x11, 1)

    def test_unmap_vm_clears_ports(self):
        table = MappingTable()
        table.map_vm(1, 0x11)
        table.map_port(1, "eth1", 0x11, 1)
        table.unmap_vm(1)
        assert table.dpid_for_vm(1) is None
        assert table.port_mapping(0x11, 1) is None

    def test_missing_lookups_return_none(self):
        table = MappingTable()
        assert table.vm_for_dpid(5) is None
        assert table.interface_for_port(5, 1) is None
        assert table.port_for_interface(5, "eth1") is None


class TestRouteMod:
    def test_add_roundtrip_via_json(self):
        message = RouteMod.add(vm_id=3, prefix=IPv4Network("10.1.0.0/24"),
                               next_hop=IPv4Address("172.16.0.2"), interface="eth1",
                               metric=20)
        decoded = RouteMod.from_json(message.to_json())
        assert decoded.mod_type == RouteModType.ADD
        assert decoded.vm_id == 3
        assert decoded.prefix_network == IPv4Network("10.1.0.0/24")
        assert decoded.next_hop_address == IPv4Address("172.16.0.2")
        assert decoded.interface == "eth1"
        assert decoded.metric == 20
        assert not decoded.is_connected

    def test_connected_route(self):
        message = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.0.0/24"),
                               next_hop=None, interface="eth2")
        decoded = RouteMod.from_json(message.to_json())
        assert decoded.is_connected
        assert decoded.next_hop_address is None

    def test_delete_roundtrip(self):
        message = RouteMod.delete(vm_id=1, prefix=IPv4Network("10.1.0.0/24"))
        decoded = RouteMod.from_json(message.to_json())
        assert decoded.mod_type == RouteModType.DELETE

    def test_non_routemod_json_rejected(self):
        with pytest.raises(ValueError):
            RouteMod.from_json('{"kind": "other"}')


class TestRFVirtualSwitch:
    def test_connect_creates_wire(self, sim):
        rfvs = RFVirtualSwitch(sim)
        vm_a = VirtualMachine(sim, 1, 1)
        vm_b = VirtualMachine(sim, 2, 1)
        link = rfvs.connect(vm_a.interface("eth1"), vm_b.interface("eth1"))
        assert len(rfvs) == 1
        assert rfvs.is_connected(vm_a.interface("eth1"), vm_b.interface("eth1"))
        assert link.up

    def test_connect_is_idempotent(self, sim):
        rfvs = RFVirtualSwitch(sim)
        vm_a = VirtualMachine(sim, 1, 1)
        vm_b = VirtualMachine(sim, 2, 1)
        first = rfvs.connect(vm_a.interface("eth1"), vm_b.interface("eth1"))
        second = rfvs.connect(vm_b.interface("eth1"), vm_a.interface("eth1"))
        assert first is second
        assert len(rfvs) == 1

    def test_interface_already_wired_elsewhere_rejected(self, sim):
        rfvs = RFVirtualSwitch(sim)
        vm_a = VirtualMachine(sim, 1, 2)
        vm_b = VirtualMachine(sim, 2, 2)
        vm_c = VirtualMachine(sim, 3, 2)
        rfvs.connect(vm_a.interface("eth1"), vm_b.interface("eth1"))
        with pytest.raises(ValueError):
            rfvs.connect(vm_a.interface("eth1"), vm_c.interface("eth1"))

    def test_disconnect(self, sim):
        rfvs = RFVirtualSwitch(sim)
        vm_a = VirtualMachine(sim, 1, 1)
        vm_b = VirtualMachine(sim, 2, 1)
        rfvs.connect(vm_a.interface("eth1"), vm_b.interface("eth1"))
        assert rfvs.disconnect(vm_a.interface("eth1"), vm_b.interface("eth1")) is True
        assert len(rfvs) == 0
        assert vm_a.interface("eth1").link is None
        # Disconnecting again is a no-op.
        assert rfvs.disconnect(vm_a.interface("eth1"), vm_b.interface("eth1")) is False
