"""End-to-end interdomain tests: multi-AS topologies, the framework with
BGP enabled, the full withdrawal lifecycle under border failures, and the
``run_interdomain`` experiment harness."""

from __future__ import annotations

import pytest

from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
from repro.experiments.failover import (
    _mirror_into_routeflow,
    verify_spf_rib_consistency,
)
from repro.experiments.interdomain import run_interdomain, verify_interdomain
from repro.quagga.ospf.constants import EXTERNAL_ROUTE_TAG
from repro.quagga.rib import RouteSource
from repro.routeflow.sharding import PartitionError, make_partitioner
from repro.scenarios import FailureSchedule, ScenarioSpec, get
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import (
    BASE_ASN,
    as_map_from_topology,
    multi_as_topology,
    ring_topology,
    transit_stub_topology,
)
from repro.topology.graph import TopologyError


class TestGenerators:
    def test_multi_as_ring_shape(self):
        topology = multi_as_topology(3, as_size=4)
        assert topology.num_nodes == 12
        # 3 ASes x 4 ring links + 3 border links.
        assert topology.num_links == 15
        as_map = as_map_from_topology(topology)
        assert sorted(set(as_map.values())) == [BASE_ASN + 1, BASE_ASN + 2,
                                                BASE_ASN + 3]
        assert all(as_map[n] == BASE_ASN + 1 for n in (1, 2, 3, 4))
        assert topology.is_connected()

    def test_multi_as_two_ases_single_border(self):
        topology = multi_as_topology(2, as_size=3)
        # 2 x 3 ring links + exactly one border link (no duplicate).
        assert topology.num_links == 7

    def test_multi_as_torus_shape(self):
        topology = multi_as_topology(2, shape="torus", as_rows=2, as_cols=2)
        assert topology.num_nodes == 8
        # Each 2x2 grid has 4 links; one border link joins the two ASes.
        assert topology.num_links == 9

    def test_multi_as_validation(self):
        with pytest.raises(TopologyError):
            multi_as_topology(1)
        with pytest.raises(TopologyError):
            multi_as_topology(2, shape="torus")  # needs rows/cols

    def test_transit_stub_shape(self):
        topology = transit_stub_topology(3, stub_size=3, transit_size=3)
        assert topology.num_nodes == 12
        # Transit mesh 3 + 3 stub rings x 3 + 3 border links.
        assert topology.num_links == 15
        as_map = as_map_from_topology(topology)
        assert {as_map[n] for n in (1, 2, 3)} == {BASE_ASN}
        assert len(set(as_map.values())) == 4

    def test_as_map_requires_assignment(self):
        with pytest.raises(TopologyError, match="no AS assignment"):
            as_map_from_topology(ring_topology(4))


class TestASPartitioner:
    def test_whole_as_lands_on_one_shard(self):
        topology = multi_as_topology(3, as_size=4)
        as_map = as_map_from_topology(topology)
        partitioner = make_partitioner("as", 3, as_map=as_map)
        for asn in set(as_map.values()):
            members = [n for n, owner in as_map.items() if owner == asn]
            assert len({partitioner.shard_for(n) for n in members}) == 1
        # 3 ASes over 3 shards: all shards used.
        assert {partitioner.shard_for(n) for n in as_map} == {0, 1, 2}

    def test_needs_an_as_map(self):
        with pytest.raises(PartitionError, match="dpid->AS map"):
            make_partitioner("as", 2)


class TestScenarioSpec:
    def test_interdomain_spec_round_trips(self):
        spec = ScenarioSpec("tmp-inter", "multi-as",
                            {"num_ases": 2, "as_size": 2}, interdomain=True)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.interdomain
        assert clone == spec

    def test_interdomain_framework_config(self):
        spec = get("interdomain-3as")
        config = spec.framework_config()
        assert config.enable_bgp
        assert len(config.as_map) == 12

    def test_interdomain_needs_as_topology(self):
        from repro.scenarios import ScenarioError

        spec = ScenarioSpec("tmp-bad-inter", "ring", {"num_switches": 4},
                            interdomain=True)
        with pytest.raises(ScenarioError, match="no AS assignment"):
            spec.framework_config()

    def test_enable_bgp_requires_as_map(self):
        with pytest.raises(ValueError, match="as_map"):
            AutoConfigFramework(Simulator(),
                                config=FrameworkConfig(enable_bgp=True))

    def test_registry_interdomain_entries_build(self):
        for name in ("interdomain-3as", "interdomain-4as-torus",
                     "interdomain-transit-3", "interdomain-3as-c3",
                     "interdomain-3as-flap"):
            spec = get(name)
            assert spec.interdomain
            topology = spec.build_topology()
            assert topology.is_connected()
            as_map_from_topology(topology)


def configure_interdomain(spec_name=None, topology=None, max_time=900.0):
    """Configure a multi-AS topology with BGP enabled; returns the pieces."""
    if topology is None:
        spec = get(spec_name)
        topology = spec.build_topology()
        config = spec.framework_config(topology)
    else:
        config = FrameworkConfig(
            detect_edge_ports=False, enable_bgp=True,
            as_map=as_map_from_topology(topology))
    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured = framework.run_until_configured(max_time=max_time)
    return sim, framework, network, configured


class TestInterdomainEndToEnd:
    @pytest.fixture(scope="class")
    def small_run(self):
        """A configured 2-AS network (2 routers per AS), settled."""
        topology = multi_as_topology(2, as_size=2)
        sim, framework, network, configured = configure_interdomain(
            topology=topology)
        assert configured is not None
        sim.run(until=configured + 60.0)
        return sim, framework, network

    def test_full_reachability_and_bgp_flows(self, small_run):
        _, framework, _ = small_run
        control_plane = framework.control_plane
        # 3 links (two intra rings of one link each + the border) plus
        # 4 loopbacks = 7 prefixes everywhere.
        for vm in control_plane.vms.values():
            assert len(vm.zebra.fib) == 7
        # Border VMs (2 and 3) hold eBGP routes in their FIBs and the
        # corresponding flows are installed on their switches.
        for border in (2, 3):
            vm = control_plane.vms[border]
            bgp_routes = [r for r in vm.zebra.fib_routes
                          if r.source == RouteSource.BGP]
            assert bgp_routes
            for route in bgp_routes:
                assert (border, str(route.prefix)) in \
                    framework.rfproxy.installed_flows

    def test_interior_learns_through_redistribution(self, small_run):
        _, framework, _ = small_run
        # Interior VMs (1 and 4) have no eBGP sessions; other-AS prefixes
        # arrive as tagged OSPF AS-external routes.
        for interior in (1, 4):
            vm = framework.control_plane.vms[interior]
            assert not vm.bgp.ebgp_sessions
            external = [r for r in vm.zebra.fib_routes
                        if r.tag == EXTERNAL_ROUTE_TAG]
            assert external

    def test_interdomain_invariants(self, small_run):
        _, framework, _ = small_run
        as_map = dict(framework.config.as_map)
        assert verify_interdomain(framework.control_plane, as_map) == []
        assert verify_spf_rib_consistency(framework.control_plane) == []

    def test_shard_loads_report_bgp_message_counts(self, small_run):
        _, framework, _ = small_run
        loads = framework.shard_loads()
        for load in loads:
            assert "bgp_updates_sent" in load
            assert "bgp_withdrawals_sent" in load
            assert "bgp_updates_received" in load
        # The eBGP exchange actually happened and both directions saw it.
        assert sum(load["bgp_updates_sent"] for load in loads) > 0
        assert sum(load["bgp_updates_received"] for load in loads) > 0

    def test_border_flap_withdraws_and_recovers(self):
        """Session flap -> withdrawal -> OFPFC_DELETE -> re-advertisement."""
        topology = multi_as_topology(2, as_size=2)
        sim, framework, network, configured = configure_interdomain(
            topology=topology)
        assert configured is not None
        sim.run(until=configured + 60.0)
        steady_flows = sum(load["flows_current"]
                           for load in framework.shard_loads())
        removed_before = sum(load["flow_mods_removed"]
                             for load in framework.shard_loads())
        network.add_failure_listener(
            _mirror_into_routeflow(network, framework.bus))
        network.schedule_failures(FailureSchedule.single_link_failure(
            2, 3, at=5.0, restore_after=60.0))
        sim.run(until=sim.now + 35.0)
        # Both eBGP sessions dropped; withdrawals reached the switches.
        for border, peer in ((2, 3), (3, 2)):
            vm = framework.control_plane.vms[border]
            assert not vm.bgp.established_sessions or all(
                s.is_ibgp for s in vm.bgp.established_sessions)
        # The dead border /30 left the area too: the borders withdrew the
        # redistributed-connected external, so no interior router keeps a
        # route towards a subnet its border lost (the blackhole case).
        nets2 = {i.network for i in
                 framework.control_plane.vms[2].interfaces.values() if i.ip}
        nets3 = {i.network for i in
                 framework.control_plane.vms[3].interfaces.values() if i.ip}
        (border_net,) = nets2 & nets3
        for interior in (1, 4):
            vm = framework.control_plane.vms[interior]
            assert border_net not in vm.zebra.fib
        removed_after = sum(load["flow_mods_removed"]
                            for load in framework.shard_loads())
        assert removed_after > removed_before
        assert sum(load["flows_current"]
                   for load in framework.shard_loads()) < steady_flows
        # Restore: sessions re-establish and the flows come back exactly.
        sim.run(until=sim.now + 90.0)
        for border in (2, 3):
            vm = framework.control_plane.vms[border]
            assert any(not s.is_ibgp for s in vm.bgp.established_sessions)
        assert sum(load["flows_current"]
                   for load in framework.shard_loads()) == steady_flows
        assert verify_spf_rib_consistency(framework.control_plane) == []

    def test_border_teardown_races_shard_failover(self):
        """BGP session teardown racing shard failover: the border dpid
        migrates to the standby while its eBGP hold timer is already
        running.  The adopting shard must process the teardown — flow
        withdrawals included — and the later session recovery; the dead
        shard must stay frozen throughout."""
        topology = multi_as_topology(2, as_size=2)
        config = FrameworkConfig(detect_edge_ports=False, enable_bgp=True,
                                 as_map=as_map_from_topology(topology),
                                 controllers=2, partitioner="as")
        sim = Simulator()
        ipam = IPAddressManager()
        framework = AutoConfigFramework(sim, config=config, ipam=ipam)
        network = EmulatedNetwork(sim, topology, ipam=ipam)
        framework.attach(network)
        configured = framework.run_until_configured(max_time=900.0)
        assert configured is not None
        sim.run(until=configured + 60.0)
        plane = framework.control_plane
        steady_flows = sum(load["flows_current"]
                           for load in framework.shard_loads())
        network.add_failure_listener(
            _mirror_into_routeflow(network, framework.bus))
        from repro.scenarios import FailureAction, FailureEvent

        victim = plane.owner_of(2)  # the shard hosting border dpid 2
        survivor = 1 - victim
        network.schedule_failures(FailureSchedule((
            FailureEvent(5.0, FailureAction.LINK_DOWN, 2, 3),
            # 10s into the 30s hold window: the border dpid migrates
            # while its hold timer is running.
            FailureEvent(15.0, FailureAction.SHARD_FAILOVER, victim),
            FailureEvent(100.0, FailureAction.LINK_UP, 2, 3),
            FailureEvent(100.0, FailureAction.SHARD_UP, victim),
        )))
        dead_proxy = framework.shards[victim].rfproxy
        # Run past the hold-timer expiry (~35s after the link drop).
        sim.run(until=sim.now + 60.0)
        assert plane.takeovers == 1
        assert plane.owner_of(2) == survivor
        dead_installed = dead_proxy.flows_installed
        dead_removed = dead_proxy.flows_removed
        vm2 = plane.vms[2]
        assert all(s.is_ibgp for s in vm2.bgp.established_sessions)
        # The withdrawals reached the switches through the adopting shard.
        assert sum(load["flows_current"]
                   for load in framework.shard_loads()) < steady_flows
        # Recovery: the link returns, the session re-establishes under the
        # adopting shard, and the flows come back exactly.
        sim.run(until=sim.now + 120.0)
        assert any(not s.is_ibgp for s in vm2.bgp.established_sessions)
        assert sum(load["flows_current"]
                   for load in framework.shard_loads()) == steady_flows
        assert dead_proxy.flows_installed == dead_installed
        assert dead_proxy.flows_removed == dead_removed
        assert verify_spf_rib_consistency(plane) == []
        assert plane.ownership_violations() == []
        assert plane.orphaned_parked_route_mods() == []

    def test_node_failure_tears_down_border_sessions(self):
        """A fail-stopped border switch takes its eBGP sessions with it."""
        topology = multi_as_topology(2, as_size=2)
        sim, framework, network, configured = configure_interdomain(
            topology=topology)
        assert configured is not None
        sim.run(until=configured + 60.0)
        network.add_failure_listener(
            _mirror_into_routeflow(network, framework.bus))
        from repro.scenarios import FailureAction, FailureEvent

        network.schedule_failures(FailureSchedule((
            FailureEvent(5.0, FailureAction.NODE_DOWN, 3),)))
        sim.run(until=sim.now + 40.0)
        vm2 = framework.control_plane.vms[2]
        assert all(s.is_ibgp for s in vm2.bgp.established_sessions)
        # AS1 still has full reachability to its own prefixes.
        vm1 = framework.control_plane.vms[1]
        assert any(r.source == RouteSource.OSPF for r in vm1.zebra.fib_routes)


class TestRunInterdomain:
    def test_run_interdomain_healthy_with_flap(self):
        spec = ScenarioSpec("tmp-run-inter", "multi-as",
                            {"num_ases": 2, "as_size": 2}, interdomain=True)
        result = run_interdomain(spec, flap=True)
        assert result.configured
        assert result.settled
        assert result.healthy
        assert result.num_ases == 2
        assert result.border_links == 1
        assert result.ebgp_sessions == 1
        assert result.redistribution_violations == []
        assert set(result.per_as) == {BASE_ASN + 1, BASE_ASN + 2}
        assert all(report["flows"] > 0 for report in result.per_as.values())
        flap = result.flap
        assert flap is not None and flap.verified
        assert flap.withdrawn_flow_mods > 0
        assert flap.sessions_dropped and flap.reestablished
        assert flap.flows_restored

    def test_run_interdomain_rejects_single_domain_scenario(self):
        with pytest.raises(Exception):
            run_interdomain("ring-4", flap=False)

    def test_run_interdomain_rejects_non_border_flap_link(self):
        spec = ScenarioSpec("tmp-run-inter2", "multi-as",
                            {"num_ases": 2, "as_size": 2}, interdomain=True)
        with pytest.raises(ValueError, match="not an eBGP border link"):
            run_interdomain(spec, flap=True, flap_link=(1, 2))
