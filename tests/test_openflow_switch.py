"""Tests for the software OpenFlow switch against a scripted controller."""

from __future__ import annotations

from typing import List

import pytest

from repro.net import Ethernet, EtherType, IPv4, IPv4Address, MACAddress, UDP
from repro.net.ipv4 import IPProtocol
from repro.net.link import Interface, connect
from repro.openflow import (
    BarrierReply,
    BarrierRequest,
    ControlChannel,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    Match,
    OFPFlowModCommand,
    OFPPort,
    OpenFlowMessage,
    OpenFlowSwitch,
    OutputAction,
    PacketIn,
    PacketOut,
    PortStatus,
    SetDlDstAction,
    StatsReply,
    StatsRequest,
)
from repro.openflow.constants import OFPFlowModFlags, OFP_NO_BUFFER


class ScriptedController:
    """A channel endpoint that records every message from the switch."""

    def __init__(self, sim):
        self.sim = sim
        self.channel = None
        self.messages: List[OpenFlowMessage] = []

    def attach(self, switch: OpenFlowSwitch, latency: float = 0.001) -> ControlChannel:
        self.channel = ControlChannel(self.sim, latency=latency, name="test")
        self.channel.connect(switch, self)
        switch.connect_to_controller(self.channel)
        # Play the controller's half of the handshake.
        self.send(Hello(xid=1))
        self.send(FeaturesRequest(xid=2))
        return self.channel

    def channel_receive(self, channel, data: bytes) -> None:
        self.messages.append(OpenFlowMessage.decode(data))

    def channel_closed(self, channel) -> None:
        pass

    def send(self, message: OpenFlowMessage) -> None:
        self.channel.send(self, message.encode())

    def of_type(self, klass) -> List[OpenFlowMessage]:
        return [m for m in self.messages if isinstance(m, klass)]


@pytest.fixture
def switch_setup(sim):
    """A 2-port switch whose data ports feed into capture interfaces."""
    switch = OpenFlowSwitch(sim, datapath_id=0x11, name="s1")
    captures = {}
    for port in (1, 2):
        iface = Interface(f"s1-eth{port}", MACAddress.from_local_id(0x11, port))
        switch.add_port(port, iface)
        peer = Interface(f"peer{port}", MACAddress.from_local_id(0x99, port))
        received = []
        peer.set_handler(lambda i, d, bucket=received: bucket.append(d))
        connect(sim, iface, peer)
        captures[port] = (peer, received)
    controller = ScriptedController(sim)
    controller.attach(switch)
    sim.run(until=1.0)
    return switch, controller, captures


def ipv4_frame(dst_ip: str, dst_mac: str = "02:00:00:00:00:ff") -> bytes:
    packet = IPv4(src=IPv4Address("10.0.0.1"), dst=IPv4Address(dst_ip),
                  protocol=IPProtocol.UDP, payload=UDP(1, 2, b"data"))
    return Ethernet(src=MACAddress("02:00:00:00:00:aa"), dst=MACAddress(dst_mac),
                    ethertype=EtherType.IPV4, payload=packet).encode()


class TestHandshake:
    def test_switch_sends_hello_and_features_reply(self, switch_setup):
        switch, controller, _ = switch_setup
        assert controller.of_type(Hello)
        replies = controller.of_type(FeaturesReply)
        assert len(replies) == 1
        assert replies[0].datapath_id == 0x11
        assert sorted(p.port_no for p in replies[0].ports) == [1, 2]
        assert switch.connected

    def test_echo_is_answered(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        controller.send(EchoRequest(data=b"ping", xid=55))
        sim.run(until=2.0)
        replies = controller.of_type(EchoReply)
        assert replies and replies[-1].data == b"ping" and replies[-1].xid == 55

    def test_barrier_is_answered_with_same_xid(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        controller.send(BarrierRequest(xid=77))
        sim.run(until=2.0)
        replies = controller.of_type(BarrierReply)
        assert replies and replies[-1].xid == 77

    def test_stats_request_answered(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        controller.send(StatsRequest(stats_type=0, xid=5))
        sim.run(until=2.0)
        assert controller.of_type(StatsReply)


class TestDataPlane:
    def test_table_miss_generates_packet_in(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        frame = ipv4_frame("10.9.9.9")
        peer, _ = captures[1]
        peer.send(frame)
        sim.run(until=2.0)
        packet_ins = controller.of_type(PacketIn)
        assert len(packet_ins) == 1
        assert packet_ins[0].in_port == 1
        assert packet_ins[0].total_len == len(frame)

    def test_flow_mod_then_forwarding(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        match = Match.for_destination_prefix(IPv4Address("10.9.0.0"), 16)
        controller.send(FlowMod(match=match, actions=[OutputAction(2)], priority=100))
        sim.run(until=2.0)
        assert len(switch.flow_table) == 1
        peer1, _ = captures[1]
        _, received2 = captures[2]
        peer1.send(ipv4_frame("10.9.1.1"))
        sim.run(until=3.0)
        assert len(received2) == 1
        assert switch.data_packets_forwarded == 1
        # No packet-in for the matched packet.
        assert len(controller.of_type(PacketIn)) == 0

    def test_flow_actions_rewrite_headers(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        new_mac = MACAddress("02:00:00:00:00:77")
        match = Match.for_destination_prefix(IPv4Address("10.9.0.0"), 16)
        controller.send(FlowMod(match=match, priority=10,
                                actions=[SetDlDstAction(new_mac), OutputAction(2)]))
        sim.run(until=2.0)
        captures[1][0].send(ipv4_frame("10.9.1.1"))
        sim.run(until=3.0)
        _, received2 = captures[2]
        assert len(received2) == 1
        assert Ethernet.decode(received2[0]).dst == new_mac

    def test_packet_out_flood_excludes_in_port(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        frame = ipv4_frame("10.1.1.1")
        controller.send(PacketOut(in_port=1, actions=[OutputAction(OFPPort.FLOOD)],
                                  data=frame))
        sim.run(until=2.0)
        assert len(captures[1][1]) == 0
        assert len(captures[2][1]) == 1

    def test_packet_out_to_specific_port(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        controller.send(PacketOut(actions=[OutputAction(1)], data=b"\x00" * 20))
        sim.run(until=2.0)
        assert len(captures[1][1]) == 1

    def test_packet_out_with_buffer_id_releases_buffered_packet(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        captures[1][0].send(ipv4_frame("10.9.9.9"))
        sim.run(until=2.0)
        packet_in = controller.of_type(PacketIn)[0]
        assert packet_in.buffer_id != OFP_NO_BUFFER
        controller.send(PacketOut(buffer_id=packet_in.buffer_id,
                                  in_port=packet_in.in_port,
                                  actions=[OutputAction(2)]))
        sim.run(until=3.0)
        assert len(captures[2][1]) == 1

    def test_empty_action_list_drops(self, sim, switch_setup):
        switch, controller, captures = switch_setup
        controller.send(FlowMod(match=Match.wildcard_all(), actions=[], priority=1))
        sim.run(until=2.0)
        captures[1][0].send(ipv4_frame("10.9.9.9"))
        sim.run(until=3.0)
        assert len(captures[2][1]) == 0
        assert len(controller.of_type(PacketIn)) == 0


class TestFlowModSemantics:
    def test_delete_removes_and_reports_when_flagged(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        match = Match.for_destination_prefix(IPv4Address("10.9.0.0"), 16)
        controller.send(FlowMod(match=match, actions=[OutputAction(2)],
                                flags=OFPFlowModFlags.SEND_FLOW_REM, priority=9))
        sim.run(until=2.0)
        controller.send(FlowMod(match=Match.wildcard_all(),
                                command=OFPFlowModCommand.DELETE, actions=[]))
        sim.run(until=3.0)
        assert len(switch.flow_table) == 0
        assert controller.of_type(FlowRemoved)

    def test_check_overlap_rejected_with_error(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        match = Match.for_destination_prefix(IPv4Address("10.0.0.0"), 8)
        controller.send(FlowMod(match=match, actions=[OutputAction(2)], priority=5))
        sim.run(until=2.0)
        overlapping = Match.for_destination_prefix(IPv4Address("10.1.0.0"), 16)
        controller.send(FlowMod(match=overlapping, actions=[OutputAction(1)],
                                priority=5, flags=OFPFlowModFlags.CHECK_OVERLAP))
        sim.run(until=3.0)
        assert controller.of_type(ErrorMessage)
        assert len(switch.flow_table) == 1

    def test_idle_timeout_expires_flow(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        controller.send(FlowMod(match=Match.wildcard_all(), actions=[OutputAction(2)],
                                idle_timeout=3, flags=OFPFlowModFlags.SEND_FLOW_REM))
        sim.run(until=2.0)
        assert len(switch.flow_table) == 1
        sim.run(until=10.0)
        assert len(switch.flow_table) == 0
        assert controller.of_type(FlowRemoved)

    def test_modify_without_match_behaves_as_add(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        match = Match.for_destination_prefix(IPv4Address("10.5.0.0"), 16)
        controller.send(FlowMod(match=match, command=OFPFlowModCommand.MODIFY,
                                actions=[OutputAction(1)]))
        sim.run(until=2.0)
        assert len(switch.flow_table) == 1


class TestPortStatus:
    def test_port_state_change_notifies_controller(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        switch.set_port_state(1, up=False)
        sim.run(until=2.0)
        updates = controller.of_type(PortStatus)
        assert updates
        assert updates[-1].port.port_no == 1

    def test_add_port_after_connect_notifies_controller(self, sim, switch_setup):
        switch, controller, _ = switch_setup
        iface = Interface("s1-eth3", MACAddress.from_local_id(0x11, 3))
        switch.add_port(3, iface)
        sim.run(until=2.0)
        updates = controller.of_type(PortStatus)
        assert any(u.port.port_no == 3 for u in updates)

    def test_duplicate_port_number_rejected(self, sim, switch_setup):
        switch, _, _ = switch_setup
        with pytest.raises(ValueError):
            switch.add_port(1, Interface("dup", MACAddress.from_local_id(1, 1)))
