"""Tests for interfaces, links, hosts and namespaces."""

from __future__ import annotations

import pytest

from repro.net import (
    ARP,
    Ethernet,
    EtherType,
    Host,
    IPv4,
    IPv4Address,
    Interface,
    MACAddress,
    NamespaceRegistry,
    connect,
)
from repro.net.namespace import NamespaceError


def make_interface(name: str, mac_id: int) -> Interface:
    return Interface(name=name, mac=MACAddress.from_local_id(mac_id))


class TestLink:
    def test_frame_delivery_after_delay(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        received = []
        iface_b.set_handler(lambda iface, data: received.append((sim.now, data)))
        connect(sim, iface_a, iface_b, delay=0.5, bandwidth_bps=0)
        iface_a.send(b"hello")
        sim.run()
        assert received == [(0.5, b"hello")]

    def test_serialization_delay_from_bandwidth(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        received = []
        iface_b.set_handler(lambda iface, data: received.append(sim.now))
        connect(sim, iface_a, iface_b, delay=0.0, bandwidth_bps=8000)  # 1000 B/s
        iface_a.send(b"x" * 100)
        sim.run()
        assert received == [pytest.approx(0.1)]

    def test_bidirectional(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        got_a, got_b = [], []
        iface_a.set_handler(lambda i, d: got_a.append(d))
        iface_b.set_handler(lambda i, d: got_b.append(d))
        connect(sim, iface_a, iface_b)
        iface_a.send(b"to-b")
        iface_b.send(b"to-a")
        sim.run()
        assert got_b == [b"to-b"]
        assert got_a == [b"to-a"]

    def test_down_link_drops_frames(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        received = []
        iface_b.set_handler(lambda i, d: received.append(d))
        link = connect(sim, iface_a, iface_b)
        link.set_down()
        iface_a.send(b"lost")
        sim.run()
        assert received == []
        assert link.dropped_frames == 1
        link.set_up()
        iface_a.send(b"found")
        sim.run()
        assert received == [b"found"]

    def test_send_without_link_counts_drop(self, sim):
        iface = make_interface("a", 1)
        assert iface.send(b"nowhere") is False
        assert iface.tx_dropped == 1

    def test_interface_down_drops_rx(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        received = []
        iface_b.set_handler(lambda i, d: received.append(d))
        connect(sim, iface_a, iface_b)
        iface_b.up = False
        iface_a.send(b"ignored")
        sim.run()
        assert received == []
        assert iface_b.rx_dropped == 1

    def test_cannot_double_cable_interface(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        iface_c = make_interface("c", 3)
        connect(sim, iface_a, iface_b)
        with pytest.raises(ValueError):
            connect(sim, iface_a, iface_c)

    def test_counters(self, sim):
        iface_a = make_interface("a", 1)
        iface_b = make_interface("b", 2)
        iface_b.set_handler(lambda i, d: None)
        connect(sim, iface_a, iface_b)
        iface_a.send(b"12345")
        sim.run()
        assert iface_a.tx_packets == 1 and iface_a.tx_bytes == 5
        assert iface_b.rx_packets == 1 and iface_b.rx_bytes == 5

    def test_interface_network_property(self):
        iface = make_interface("a", 1)
        assert iface.network is None
        iface.configure_ip(IPv4Address("10.0.0.5"), 24)
        assert str(iface.network) == "10.0.0.0/24"


class TestHost:
    def build_pair(self, sim):
        host_a = Host(sim, "h1", MACAddress.from_local_id(1), IPv4Address("10.0.0.1"),
                      prefix_len=24)
        host_b = Host(sim, "h2", MACAddress.from_local_id(2), IPv4Address("10.0.0.2"),
                      prefix_len=24)
        connect(sim, host_a.interface, host_b.interface)
        return host_a, host_b

    def test_udp_delivery_with_arp_resolution(self, sim):
        host_a, host_b = self.build_pair(sim)
        received = []
        host_b.bind_udp(9000, lambda src, sport, data: received.append((str(src), data)))
        host_a.send_udp(host_b.ip, 9000, b"payload", src_port=1234)
        sim.run()
        assert received == [("10.0.0.1", b"payload")]
        # ARP table was populated on both sides.
        assert host_b.ip in host_a.arp_table
        assert host_a.ip in host_b.arp_table

    def test_ping_round_trip(self, sim):
        host_a, host_b = self.build_pair(sim)
        host_a.ping(host_b.ip)
        sim.run()
        assert len(host_a.echo_replies) == 1
        _, source, _ = host_a.echo_replies[0]
        assert source == host_b.ip

    def test_off_subnet_without_gateway_is_dropped(self, sim):
        host_a, _ = self.build_pair(sim)
        host_a.send_udp(IPv4Address("192.168.1.1"), 80, b"x")
        sim.run()
        assert host_a.sent_ip_packets == 0 or host_a.interface.tx_packets == 0

    def test_off_subnet_uses_gateway_arp(self, sim):
        host = Host(sim, "h1", MACAddress.from_local_id(1), IPv4Address("10.0.0.1"),
                    prefix_len=24, gateway=IPv4Address("10.0.0.254"))
        peer = make_interface("sw", 9)
        frames = []
        peer.set_handler(lambda i, d: frames.append(Ethernet.decode(d)))
        connect(sim, host.interface, peer)
        host.send_udp(IPv4Address("172.16.0.1"), 80, b"x")
        sim.run(until=0.5)
        arp_frames = [f for f in frames if f.ethertype == EtherType.ARP]
        assert arp_frames, "host should ARP for its gateway"
        assert arp_frames[0].payload.target_ip == IPv4Address("10.0.0.254")

    def test_arp_queue_limit(self, sim):
        host = Host(sim, "h1", MACAddress.from_local_id(1), IPv4Address("10.0.0.1"),
                    prefix_len=24, gateway=IPv4Address("10.0.0.254"))
        peer = make_interface("sw", 9)
        peer.set_handler(lambda i, d: None)
        connect(sim, host.interface, peer)
        for index in range(100):
            host.send_udp(IPv4Address("172.16.0.1"), 80, bytes([index]))
        pending = host._pending_arp[IPv4Address("10.0.0.254")]
        assert len(pending) <= Host.ARP_QUEUE_LIMIT

    def test_duplicate_udp_bind_rejected(self, sim):
        host, _ = self.build_pair(sim)
        host.bind_udp(80, lambda *a: None)
        with pytest.raises(ValueError):
            host.bind_udp(80, lambda *a: None)
        host.unbind_udp(80)
        host.bind_udp(80, lambda *a: None)

    def test_ignores_frames_for_other_macs(self, sim):
        host_a, host_b = self.build_pair(sim)
        # Craft a frame addressed to a third-party MAC.
        rogue = Ethernet(src=host_a.mac, dst=MACAddress.from_local_id(99),
                         ethertype=EtherType.IPV4,
                         payload=IPv4(src=host_a.ip, dst=host_b.ip, protocol=17))
        received = []
        host_b.bind_udp(1, lambda *a: received.append(a))
        host_a.interface.send(rogue.encode())
        sim.run()
        assert host_b.received_ip_packets == 0

    def test_arp_request_for_other_ip_not_answered(self, sim):
        host_a, host_b = self.build_pair(sim)
        request = ARP.request(host_a.mac, host_a.ip, IPv4Address("10.0.0.77"))
        frame = Ethernet(src=host_a.mac, dst=MACAddress.broadcast(),
                         ethertype=EtherType.ARP, payload=request)
        host_a.interface.send(frame.encode())
        sim.run()
        assert IPv4Address("10.0.0.77") not in host_a.arp_table


class TestNamespaces:
    def test_create_and_lookup(self):
        registry = NamespaceRegistry()
        namespace = registry.create("s1")
        iface = make_interface("s1-eth1", 1)
        namespace.add_interface(iface)
        assert registry.get("s1").interface("s1-eth1") is iface
        assert "s1" in registry
        assert len(registry) == 1

    def test_duplicate_namespace_rejected(self):
        registry = NamespaceRegistry()
        registry.create("s1")
        with pytest.raises(NamespaceError):
            registry.create("s1")

    def test_duplicate_interface_rejected(self):
        namespace = NamespaceRegistry().create("s1")
        namespace.add_interface(make_interface("eth0", 1))
        with pytest.raises(NamespaceError):
            namespace.add_interface(make_interface("eth0", 2))

    def test_missing_lookups_raise(self):
        registry = NamespaceRegistry()
        with pytest.raises(NamespaceError):
            registry.get("missing")
        namespace = registry.create("s1")
        with pytest.raises(NamespaceError):
            namespace.interface("missing")

    def test_single_device_per_namespace(self):
        namespace = NamespaceRegistry().create("s1")
        namespace.attach_device(object())
        with pytest.raises(NamespaceError):
            namespace.attach_device(object())
