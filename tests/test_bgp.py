"""Tests for the BGP speaker: sessions, policy, lifecycle, redistribution."""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network
from repro.quagga import BGPNeighbor, Route, generate_bgpd_conf, parse_bgpd_conf
from repro.quagga.bgp import BGPDaemon, BGPSessionBroker, BGPSessionState
from repro.quagga.ospf.constants import EXTERNAL_ROUTE_TAG
from repro.quagga.rib import RouteSource
from repro.quagga.zebra import ZebraDaemon


def build_speaker(sim, broker, local_as, router_id, local_ip, neighbors,
                  networks=None, address_book=None, **config_kwargs):
    """Construct a BGP speaker from a generated-then-parsed bgpd.conf.

    ``neighbors`` entries are ``(ip, remote_as)`` tuples or full
    :class:`BGPNeighbor` objects; extra keyword arguments flow into
    :func:`generate_bgpd_conf` (timers, redistribution, prefix lists).
    """
    neighbor_objs = [n if isinstance(n, BGPNeighbor)
                     else BGPNeighbor(IPv4Address(n[0]), n[1])
                     for n in neighbors]
    text = generate_bgpd_conf(f"as{local_as}", local_as, IPv4Address(router_id),
                              neighbor_objs,
                              networks=[IPv4Network(n) for n in (networks or [])],
                              **config_kwargs)
    config = parse_bgpd_conf(text)
    zebra = ZebraDaemon(f"as{local_as}")
    zebra.start()
    daemon = BGPDaemon(sim, zebra, config, broker,
                       local_addresses=[IPv4Address(local_ip)],
                       address_book=address_book)
    daemon.start()
    return daemon, zebra


@pytest.fixture
def bgp_pair(sim):
    broker = BGPSessionBroker(sim, session_delay=1.0)
    a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                               [("10.0.12.2", 65002)], networks=["192.168.1.0/24"])
    b, zebra_b = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                               [("10.0.12.1", 65001)], networks=["192.168.2.0/24"])
    return broker, (a, zebra_a), (b, zebra_b)


class TestBGPSessions:
    def test_session_established_both_sides(self, sim, bgp_pair):
        _, (a, _), (b, _) = bgp_pair
        sim.run(until=5.0)
        assert len(a.established_sessions) == 1
        assert len(b.established_sessions) == 1
        assert a.sessions[IPv4Address("10.0.12.2")].state == BGPSessionState.ESTABLISHED

    def test_unmatched_neighbor_stays_idle(self, sim):
        broker = BGPSessionBroker(sim)
        a, _ = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                             [("10.0.12.9", 65009)])
        sim.run(until=10.0)
        assert a.established_sessions == []

    def test_routes_exchanged_after_establishment(self, sim, bgp_pair):
        _, (a, zebra_a), (b, zebra_b) = bgp_pair
        sim.run(until=5.0)
        assert IPv4Network("192.168.2.0/24") in zebra_a.fib
        assert IPv4Network("192.168.1.0/24") in zebra_b.fib
        route = zebra_a.fib[IPv4Network("192.168.2.0/24")]
        assert route.source == RouteSource.BGP

    def test_late_announcement_propagates(self, sim, bgp_pair):
        _, (a, _), (b, zebra_b) = bgp_pair
        sim.run(until=5.0)
        a.announce_network(IPv4Network("172.20.0.0/16"))
        sim.run(until=7.0)
        assert IPv4Network("172.20.0.0/16") in zebra_b.fib


class TestBGPPathSelection:
    def test_as_path_loop_rejected(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65002)])
        b, _ = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001)])
        sim.run(until=3.0)
        from repro.quagga.bgp import BGPAnnouncement

        poisoned = BGPAnnouncement(prefix=IPv4Network("10.50.0.0/16"),
                                   next_hop=IPv4Address("10.0.12.2"),
                                   as_path=(65002, 65001))
        a.receive_announcement(IPv4Address("10.0.12.1"), IPv4Address("10.0.12.2"),
                               poisoned)
        assert IPv4Network("10.50.0.0/16") not in zebra_a.fib

    def test_transit_propagation_three_speakers(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65002)], networks=["192.168.1.0/24"])
        b, _ = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001), ("10.0.23.2", 65003)])
        c, zebra_c = build_speaker(sim, broker, 65003, "3.3.3.3", "10.0.23.2",
                                   [("10.0.23.1", 65002)])
        # The middle speaker owns both transit addresses.
        b.local_addresses.append(IPv4Address("10.0.23.1"))
        b.sessions[IPv4Address("10.0.23.2")].local_address = IPv4Address("10.0.23.1")
        broker.register(IPv4Address("10.0.23.1"), b)
        sim.run(until=10.0)
        assert IPv4Network("192.168.1.0/24") in zebra_c.fib
        # The AS path seen at C includes both upstream ASes (metric = path length).
        assert zebra_c.fib[IPv4Network("192.168.1.0/24")].metric == 2

    def test_stop_withdraws_bgp_routes(self, sim, bgp_pair):
        _, (a, zebra_a), _ = bgp_pair
        sim.run(until=5.0)
        assert any(r.source == RouteSource.BGP for r in zebra_a.fib_routes)
        a.stop()
        assert not any(r.source == RouteSource.BGP for r in zebra_a.fib_routes)


class TestSessionRolesAndDistances:
    def test_ebgp_installs_with_distance_20(self, sim, bgp_pair):
        _, (a, zebra_a), _ = bgp_pair
        sim.run(until=5.0)
        route = zebra_a.fib[IPv4Network("192.168.2.0/24")]
        assert route.admin_distance == 20

    def test_ibgp_installs_with_distance_200(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        book_a = lambda: {IPv4Address("10.0.12.1"): ("eth1", 30)}
        book_b = lambda: {IPv4Address("10.0.12.2"): ("eth1", 30)}
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65001)], address_book=book_a)
        b, _ = build_speaker(sim, broker, 65001, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001)], networks=["192.168.9.0/24"],
                             address_book=book_b)
        # iBGP next-hop-self points at b's loopback; a's IGP knows the way.
        zebra_a.announce_route(Route(prefix=IPv4Network("2.2.2.2/32"),
                                     next_hop=IPv4Address("10.0.12.2"),
                                     interface="eth1",
                                     source=RouteSource.OSPF, metric=10))
        sim.run(until=5.0)
        session = a.sessions[IPv4Address("10.0.12.2")]
        assert session.is_ibgp
        route = zebra_a.fib[IPv4Network("192.168.9.0/24")]
        assert route.admin_distance == RouteSource.IBGP_DISTANCE == 200

    def test_ebgp_beats_ospf_but_ibgp_loses(self, sim, bgp_pair):
        """The redistribution tie-breaks: eBGP 20 < OSPF 110 < iBGP 200."""
        _, (a, zebra_a), _ = bgp_pair
        sim.run(until=5.0)
        prefix = IPv4Network("192.168.2.0/24")
        zebra_a.announce_route(Route(prefix=prefix,
                                     next_hop=IPv4Address("10.0.99.1"),
                                     interface="eth9",
                                     source=RouteSource.OSPF, metric=10))
        assert zebra_a.fib[prefix].source == RouteSource.BGP  # eBGP wins
        ibgp = Route(prefix=prefix, next_hop=IPv4Address("10.0.99.2"),
                     interface="eth8", source=RouteSource.BGP,
                     distance=RouteSource.IBGP_DISTANCE)
        rib = ZebraDaemon("tie").rib
        rib.add_route(Route(prefix=prefix, next_hop=IPv4Address("10.0.99.1"),
                            interface="eth9", source=RouteSource.OSPF,
                            metric=10))
        rib.add_route(ibgp)
        assert rib.best_route(prefix).source == RouteSource.OSPF  # iBGP loses


class TestPolicy:
    def test_local_pref_beats_shorter_as_path(self, sim):
        """A peer with local-preference 200 wins despite a longer AS path."""
        broker = BGPSessionBroker(sim, session_delay=0.5)
        prefer = BGPNeighbor(IPv4Address("10.0.12.2"), 65002, local_pref=200)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [prefer, ("10.0.13.2", 65003)])
        a.local_addresses.append(IPv4Address("10.0.13.1"))
        b, _ = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001)])
        c, _ = build_speaker(sim, broker, 65003, "3.3.3.3", "10.0.13.2",
                             [("10.0.13.1", 65001)])
        broker.register(IPv4Address("10.0.13.1"), a)
        sim.run(until=3.0)
        prefix = IPv4Network("10.50.0.0/16")
        from repro.quagga.bgp import BGPAnnouncement

        # b's path is two ASes long, c's is one — local_pref must override.
        long_path = BGPAnnouncement(prefix=prefix,
                                    next_hop=IPv4Address("10.0.12.2"),
                                    as_path=(65002, 65009))
        a.receive_announcement(IPv4Address("10.0.12.1"),
                               IPv4Address("10.0.12.2"), long_path)
        short_path = BGPAnnouncement(prefix=prefix,
                                     next_hop=IPv4Address("10.0.13.2"),
                                     as_path=(65003,))
        a.receive_announcement(IPv4Address("10.0.13.1"),
                               IPv4Address("10.0.13.2"), short_path)
        best = a.best_routes()[prefix]
        assert best.as_path == (65002, 65009)  # local_pref 200 won
        assert zebra_a.fib[prefix].next_hop == IPv4Address("10.0.12.2")

    def test_med_attached_on_egress(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        toward_b = BGPNeighbor(IPv4Address("10.0.12.2"), 65002, med=77)
        a, _ = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                             [toward_b], networks=["192.168.1.0/24"])
        b, _ = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001)])
        sim.run(until=5.0)
        received = b.sessions[IPv4Address("10.0.12.1")].received
        assert received[IPv4Network("192.168.1.0/24")].med == 77

    def test_export_prefix_list_filters(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        secret = "10.99.0.0/16"
        toward_b = BGPNeighbor(IPv4Address("10.0.12.2"), 65002,
                               export_prefix_list="NO-SECRET")
        a, _ = build_speaker(
            sim, broker, 65001, "1.1.1.1", "10.0.12.1", [toward_b],
            networks=["192.168.1.0/24", secret],
            prefix_lists={"NO-SECRET": [("deny", IPv4Network(secret)),
                                        ("permit", None)]})
        b, zebra_b = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                                   [("10.0.12.1", 65001)])
        sim.run(until=5.0)
        assert IPv4Network("192.168.1.0/24") in zebra_b.fib
        assert IPv4Network(secret) not in zebra_b.fib


def flapping_pair(sim, hold=30.0):
    broker = BGPSessionBroker(sim, session_delay=0.5)
    book_a = lambda: {IPv4Address("10.0.12.1"): ("eth1", 30)}
    book_b = lambda: {IPv4Address("10.0.12.2"): ("eth1", 30)}
    a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                               [("10.0.12.2", 65002)],
                               address_book=book_a,
                               keepalive_interval=hold / 3, hold_time=hold)
    b, zebra_b = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                               [("10.0.12.1", 65001)],
                               networks=["192.168.2.0/24"],
                               address_book=book_b,
                               keepalive_interval=hold / 3, hold_time=hold)
    return broker, (a, zebra_a), (b, zebra_b)


class TestSessionLifecycle:
    def _flapping_pair(self, sim, hold=30.0):
        return flapping_pair(sim, hold=hold)

    def test_interface_down_drops_session_and_withdraws(self, sim):
        _, (a, zebra_a), (b, _) = self._flapping_pair(sim)
        sim.run(until=5.0)
        prefix = IPv4Network("192.168.2.0/24")
        assert prefix in zebra_a.fib
        a.interface_down("eth1")
        b.interface_down("eth1")  # both ends see the carrier loss
        assert a.sessions[IPv4Address("10.0.12.2")].state == BGPSessionState.IDLE
        assert prefix not in zebra_a.fib

    def test_session_reestablishes_and_readvertises_on_restore(self, sim):
        _, (a, zebra_a), (b, _) = self._flapping_pair(sim)
        sim.run(until=5.0)
        prefix = IPv4Network("192.168.2.0/24")
        a.interface_down("eth1")
        b.interface_down("eth1")
        sim.run(until=10.0)
        assert prefix not in zebra_a.fib
        a.interface_up("eth1")
        b.interface_up("eth1")
        sim.run(until=15.0)
        session = a.sessions[IPv4Address("10.0.12.2")]
        assert session.state == BGPSessionState.ESTABLISHED
        assert prefix in zebra_a.fib

    def test_hold_timer_expires_when_peer_falls_silent(self, sim):
        _, (a, zebra_a), (b, _) = self._flapping_pair(sim, hold=3.0)
        sim.run(until=2.0)
        assert a.established_sessions
        # The peer's process freezes: no keepalives, no TCP close.
        b._timer.stop()
        b.running = False
        sim.run(until=10.0)
        assert not a.established_sessions
        assert IPv4Network("192.168.2.0/24") not in zebra_a.fib

    def test_withdrawal_propagates_between_speakers(self, sim, bgp_pair):
        _, (a, zebra_a), (b, _) = bgp_pair
        sim.run(until=5.0)
        prefix = IPv4Network("192.168.2.0/24")
        assert prefix in zebra_a.fib
        # b's origination disappears (the IGP route it redistributed died).
        del b._local_networks[prefix]
        b._reevaluate(prefix)
        sim.run(until=7.0)
        assert prefix not in zebra_a.fib


class TestRedistributionAndResolution:
    def test_redistribute_ospf_announces_and_withdraws(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65002)],
                                   redistribute_ospf=True)
        b, zebra_b = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                                   [("10.0.12.1", 65001)])
        sim.run(until=3.0)
        prefix = IPv4Network("10.7.0.0/24")
        zebra_a.announce_route(Route(prefix=prefix,
                                     next_hop=IPv4Address("10.1.1.1"),
                                     interface="eth2",
                                     source=RouteSource.OSPF, metric=10))
        sim.run(until=5.0)
        assert prefix in zebra_b.fib
        zebra_a.withdraw_route(prefix, RouteSource.OSPF)
        sim.run(until=7.0)
        assert prefix not in zebra_b.fib

    def test_tagged_external_ospf_routes_not_reexported(self, sim):
        """The EXTERNAL_ROUTE_TAG guard against AS-path truncation."""
        broker = BGPSessionBroker(sim, session_delay=0.5)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65002)],
                                   redistribute_ospf=True)
        b, zebra_b = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                                   [("10.0.12.1", 65001)])
        sim.run(until=3.0)
        leaked = IPv4Network("10.8.0.0/24")
        zebra_a.announce_route(Route(prefix=leaked,
                                     next_hop=IPv4Address("10.1.1.1"),
                                     interface="eth2",
                                     source=RouteSource.OSPF, metric=20,
                                     tag=EXTERNAL_ROUTE_TAG))
        sim.run(until=5.0)
        assert leaked not in zebra_b.fib

    def test_recursive_next_hop_resolution_via_igp(self, sim):
        """An iBGP next-hop-self resolves through the IGP route to it."""
        from repro.quagga.bgp import BGPAnnouncement

        broker = BGPSessionBroker(sim, session_delay=0.5)
        book = lambda: {IPv4Address("10.0.12.1"): ("eth1", 30)}
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("9.9.9.9", 65001)], address_book=book)
        peer_loopback = IPv4Address("9.9.9.9")
        session = a.sessions[peer_loopback]
        session.state = BGPSessionState.ESTABLISHED
        session.established_at = sim.now
        # The IGP knows the way to the peer's loopback.
        igp_next_hop = IPv4Address("10.0.12.2")
        zebra_a.announce_route(Route(prefix=IPv4Network("9.9.9.9/32"),
                                     next_hop=igp_next_hop, interface="eth1",
                                     source=RouteSource.OSPF, metric=10))
        prefix = IPv4Network("172.30.0.0/16")
        a.receive_announcement(IPv4Address("10.0.12.1"), peer_loopback,
                               BGPAnnouncement(prefix=prefix,
                                               next_hop=peer_loopback,
                                               as_path=(65002,)))
        route = zebra_a.fib[prefix]
        assert route.next_hop == igp_next_hop
        assert route.interface == "eth1"
        # The IGP route dies: the BGP route is unresolvable and withdrawn.
        zebra_a.withdraw_route(IPv4Network("9.9.9.9/32"), RouteSource.OSPF)
        assert prefix not in zebra_a.fib
        # It comes back: the BGP route is re-installed.
        zebra_a.announce_route(Route(prefix=IPv4Network("9.9.9.9/32"),
                                     next_hop=igp_next_hop, interface="eth1",
                                     source=RouteSource.OSPF, metric=10))
        assert prefix in zebra_a.fib


class TestBrokerPendingSet:
    """The broker's pending-session set: idle sessions are probed from a
    queue keyed by the awaited peer address, so the established steady
    state costs nothing per ConnectRetry tick and a retry sweep is linear
    in the number of idle sessions."""

    def test_steady_state_costs_no_probes(self, sim, bgp_pair):
        broker, (a, _), (b, _) = bgp_pair
        sim.run(until=5.0)
        assert a.established_sessions and b.established_sessions
        # A sweep drops entries enlisted during the handshake lazily;
        # afterwards nothing is pending and nothing gets probed again.
        broker.retry()
        assert not broker._pending
        baseline = broker.probe_attempts
        # Dozens of keepalive/ConnectRetry ticks with nothing idle.
        sim.run(until=300.0)
        assert broker.probe_attempts == baseline

    def test_enlist_is_idempotent(self, sim):
        broker = BGPSessionBroker(sim)
        a, _ = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                             [("10.0.12.9", 65009)])
        session = a.sessions[IPv4Address("10.0.12.9")]
        assert session.retry_pending
        for _ in range(5):
            broker.enlist(a, session)
        assert len(broker._pending[IPv4Address("10.0.12.9")]) == 1

    def test_retry_probes_each_idle_session_once(self, sim):
        broker = BGPSessionBroker(sim)
        speakers = []
        for index in range(4):
            daemon, _ = build_speaker(
                sim, broker, 65001 + index, f"{index + 1}.{index + 1}.1.1",
                f"10.0.{index + 1}.1",
                [(f"10.0.{index + 1}.200", 64999)])  # nobody home
            speakers.append(daemon)
        before = broker.probe_attempts
        broker.retry()
        # One probe per pending session — not O(speakers x sessions).
        assert broker.probe_attempts == before + len(speakers)
        for daemon in speakers:
            (session,) = daemon.sessions.values()
            assert session.retry_pending  # still idle: re-enlisted

    def test_stopped_speaker_dropped_lazily_from_pending(self, sim):
        broker = BGPSessionBroker(sim)
        a, _ = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                             [("10.0.12.9", 65009)])
        a.stop()
        broker.retry()
        assert not broker._pending


class TestGracefulReadvertisementDelta:
    """A re-established session re-sends only the Adj-RIB-Out delta: the
    end-of-RIB marker revalidates whatever the peer retained unchanged."""

    def test_flap_skips_unchanged_advertisements(self, sim):
        _, (a, zebra_a), (b, _) = flapping_pair(sim)
        sim.run(until=5.0)
        prefix = IPv4Network("192.168.2.0/24")
        assert prefix in zebra_a.fib
        sent_before = b.updates_sent
        a.interface_down("eth1")
        b.interface_down("eth1")
        sim.run(until=8.0)
        assert prefix not in zebra_a.fib
        a.interface_up("eth1")
        b.interface_up("eth1")
        sim.run(until=25.0)
        assert a.sessions[IPv4Address("10.0.12.2")].established
        # The route is back via EOR revalidation, not a re-sent UPDATE.
        assert prefix in zebra_a.fib
        assert b.updates_sent == sent_before

    def test_flap_resends_only_the_delta(self, sim):
        _, (a, zebra_a), (b, _) = flapping_pair(sim)
        sim.run(until=5.0)
        old_prefix = IPv4Network("192.168.2.0/24")
        new_prefix = IPv4Network("172.16.0.0/16")
        a.interface_down("eth1")
        b.interface_down("eth1")
        sim.run(until=8.0)
        # While the session is down the advertiser's RIB changes: one
        # origination appears, the old one disappears.
        b.announce_network(new_prefix)
        del b._local_networks[old_prefix]
        b._reevaluate(old_prefix)
        sent_before = b.updates_sent
        withdrawn_before = b.withdrawals_sent
        a.interface_up("eth1")
        b.interface_up("eth1")
        sim.run(until=25.0)
        assert a.sessions[IPv4Address("10.0.12.2")].established
        assert new_prefix in zebra_a.fib
        assert old_prefix not in zebra_a.fib
        # Exactly one UPDATE (the new prefix) and one withdrawal (the
        # prefix the peer retained but the advertiser no longer exports).
        assert b.updates_sent == sent_before + 1
        assert b.withdrawals_sent == withdrawn_before + 1
