"""Tests for the simplified BGP speaker."""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network
from repro.quagga import BGPNeighbor, generate_bgpd_conf, parse_bgpd_conf
from repro.quagga.bgp import BGPDaemon, BGPSessionBroker, BGPSessionState
from repro.quagga.rib import RouteSource
from repro.quagga.zebra import ZebraDaemon


def build_speaker(sim, broker, local_as, router_id, local_ip, neighbors,
                  networks=None):
    """Construct a BGP speaker from a generated-then-parsed bgpd.conf."""
    text = generate_bgpd_conf(f"as{local_as}", local_as, IPv4Address(router_id),
                              [BGPNeighbor(IPv4Address(ip), remote)
                               for ip, remote in neighbors],
                              networks=[IPv4Network(n) for n in (networks or [])])
    config = parse_bgpd_conf(text)
    zebra = ZebraDaemon(f"as{local_as}")
    zebra.start()
    daemon = BGPDaemon(sim, zebra, config, broker,
                       local_addresses=[IPv4Address(local_ip)])
    daemon.start()
    return daemon, zebra


@pytest.fixture
def bgp_pair(sim):
    broker = BGPSessionBroker(sim, session_delay=1.0)
    a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                               [("10.0.12.2", 65002)], networks=["192.168.1.0/24"])
    b, zebra_b = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                               [("10.0.12.1", 65001)], networks=["192.168.2.0/24"])
    return broker, (a, zebra_a), (b, zebra_b)


class TestBGPSessions:
    def test_session_established_both_sides(self, sim, bgp_pair):
        _, (a, _), (b, _) = bgp_pair
        sim.run(until=5.0)
        assert len(a.established_sessions) == 1
        assert len(b.established_sessions) == 1
        assert a.sessions[IPv4Address("10.0.12.2")].state == BGPSessionState.ESTABLISHED

    def test_unmatched_neighbor_stays_idle(self, sim):
        broker = BGPSessionBroker(sim)
        a, _ = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                             [("10.0.12.9", 65009)])
        sim.run(until=10.0)
        assert a.established_sessions == []

    def test_routes_exchanged_after_establishment(self, sim, bgp_pair):
        _, (a, zebra_a), (b, zebra_b) = bgp_pair
        sim.run(until=5.0)
        assert IPv4Network("192.168.2.0/24") in zebra_a.fib
        assert IPv4Network("192.168.1.0/24") in zebra_b.fib
        route = zebra_a.fib[IPv4Network("192.168.2.0/24")]
        assert route.source == RouteSource.BGP

    def test_late_announcement_propagates(self, sim, bgp_pair):
        _, (a, _), (b, zebra_b) = bgp_pair
        sim.run(until=5.0)
        a.announce_network(IPv4Network("172.20.0.0/16"))
        sim.run(until=7.0)
        assert IPv4Network("172.20.0.0/16") in zebra_b.fib


class TestBGPPathSelection:
    def test_as_path_loop_rejected(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65002)])
        b, _ = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001)])
        sim.run(until=3.0)
        from repro.quagga.bgp import BGPAnnouncement

        poisoned = BGPAnnouncement(prefix=IPv4Network("10.50.0.0/16"),
                                   next_hop=IPv4Address("10.0.12.2"),
                                   as_path=(65002, 65001))
        a.receive_announcement(IPv4Address("10.0.12.1"), IPv4Address("10.0.12.2"),
                               poisoned)
        assert IPv4Network("10.50.0.0/16") not in zebra_a.fib

    def test_transit_propagation_three_speakers(self, sim):
        broker = BGPSessionBroker(sim, session_delay=0.5)
        a, zebra_a = build_speaker(sim, broker, 65001, "1.1.1.1", "10.0.12.1",
                                   [("10.0.12.2", 65002)], networks=["192.168.1.0/24"])
        b, _ = build_speaker(sim, broker, 65002, "2.2.2.2", "10.0.12.2",
                             [("10.0.12.1", 65001), ("10.0.23.2", 65003)])
        c, zebra_c = build_speaker(sim, broker, 65003, "3.3.3.3", "10.0.23.2",
                                   [("10.0.23.1", 65002)])
        # The middle speaker owns both transit addresses.
        b.local_addresses.append(IPv4Address("10.0.23.1"))
        b.sessions[IPv4Address("10.0.23.2")].local_address = IPv4Address("10.0.23.1")
        broker.register(IPv4Address("10.0.23.1"), b)
        sim.run(until=10.0)
        assert IPv4Network("192.168.1.0/24") in zebra_c.fib
        # The AS path seen at C includes both upstream ASes (metric = path length).
        assert zebra_c.fib[IPv4Network("192.168.1.0/24")].metric == 2

    def test_stop_withdraws_bgp_routes(self, sim, bgp_pair):
        _, (a, zebra_a), _ = bgp_pair
        sim.run(until=5.0)
        assert any(r.source == RouteSource.BGP for r in zebra_a.fib_routes)
        a.stop()
        assert not any(r.source == RouteSource.BGP for r in zebra_a.fib_routes)
