"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.sim import SeededRandom, Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator per test."""
    return Simulator()


@pytest.fixture
def rng() -> SeededRandom:
    """A deterministic random source."""
    return SeededRandom(42)
