"""Tests for the OpenFlow flow table."""

from __future__ import annotations

import pytest

from repro.net import EtherType, IPv4Address
from repro.openflow import FlowEntry, FlowTable, Match, OutputAction, PacketFields
from repro.openflow.constants import OFPFlowModFlags, OFPPort


def prefix_match(prefix: str, plen: int) -> Match:
    return Match.for_destination_prefix(IPv4Address(prefix), plen)


def fields_for(dst: str, in_port: int = 1) -> PacketFields:
    fields = PacketFields(in_port=in_port)
    fields.dl_type = EtherType.IPV4
    fields.nw_dst = IPv4Address(dst)
    return fields


class TestLookup:
    def test_empty_table_misses(self):
        table = FlowTable()
        assert table.lookup(fields_for("10.0.0.1")) is None
        assert table.lookup_count == 1
        assert table.matched_count == 0

    def test_highest_priority_wins(self):
        table = FlowTable()
        low = FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(1)], priority=100)
        high = FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(2)], priority=200)
        table.add(low)
        table.add(high)
        assert table.lookup(fields_for("10.1.1.1")) is high

    def test_exact_match_beats_wildcard_priority(self):
        table = FlowTable()
        wildcard = FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(1)],
                             priority=0xFFFF)
        exact_fields = fields_for("10.0.0.9", in_port=2)
        exact = FlowEntry(Match.exact_from_fields(exact_fields), [OutputAction(2)],
                          priority=1)
        table.add(wildcard)
        table.add(exact)
        assert table.lookup(exact_fields) is exact

    def test_non_matching_entry_skipped(self):
        table = FlowTable()
        table.add(FlowEntry(prefix_match("192.168.0.0", 16), [OutputAction(1)]))
        assert table.lookup(fields_for("10.0.0.1")) is None

    def test_add_replaces_identical_match_and_priority(self):
        table = FlowTable()
        table.add(FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(1)], priority=5))
        table.add(FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(2)], priority=5))
        assert len(table) == 1
        entry = table.lookup(fields_for("10.2.3.4"))
        assert entry.actions == [OutputAction(2)]

    def test_counters_update_on_use(self, sim):
        table = FlowTable()
        entry = FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(1)])
        table.add(entry)
        entry.mark_used(now=5.0, packet_len=100)
        entry.mark_used(now=6.0, packet_len=50)
        assert entry.packet_count == 2
        assert entry.byte_count == 150
        assert entry.last_used == 6.0


class TestModifyDelete:
    def test_strict_delete_requires_exact_match_and_priority(self):
        table = FlowTable()
        entry = FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(1)], priority=7)
        table.add(entry)
        removed = table.delete(prefix_match("10.0.0.0", 8), strict=True, priority=8)
        assert removed == []
        removed = table.delete(prefix_match("10.0.0.0", 8), strict=True, priority=7)
        assert removed == [entry]
        assert len(table) == 0

    def test_nonstrict_delete_removes_covered_entries(self):
        table = FlowTable()
        narrow = FlowEntry(prefix_match("10.1.0.0", 16), [OutputAction(1)], priority=5)
        other = FlowEntry(prefix_match("192.168.0.0", 16), [OutputAction(1)], priority=5)
        table.add(narrow)
        table.add(other)
        removed = table.delete(prefix_match("10.0.0.0", 8), strict=False, priority=0)
        assert removed == [narrow]
        assert len(table) == 1

    def test_delete_filtered_by_out_port(self):
        table = FlowTable()
        to_port1 = FlowEntry(prefix_match("10.1.0.0", 16), [OutputAction(1)])
        to_port2 = FlowEntry(prefix_match("10.2.0.0", 16), [OutputAction(2)])
        table.add(to_port1)
        table.add(to_port2)
        removed = table.delete(Match.wildcard_all(), strict=False, priority=0, out_port=2)
        assert removed == [to_port2]

    def test_modify_changes_actions_in_place(self):
        table = FlowTable()
        entry = FlowEntry(prefix_match("10.1.0.0", 16), [OutputAction(1)], priority=9)
        table.add(entry)
        touched = table.modify(prefix_match("10.0.0.0", 8), [OutputAction(3)],
                               strict=False, priority=0)
        assert touched == 1
        assert entry.actions == [OutputAction(3)]

    def test_overlap_detection(self):
        table = FlowTable()
        table.add(FlowEntry(prefix_match("10.0.0.0", 8), [OutputAction(1)], priority=5))
        overlap = table.find_overlapping(prefix_match("10.3.0.0", 16), priority=5)
        assert overlap is not None
        assert table.find_overlapping(prefix_match("10.3.0.0", 16), priority=6) is None

    def test_clear(self):
        table = FlowTable()
        table.add(FlowEntry(Match.wildcard_all(), [OutputAction(1)]))
        table.clear()
        assert len(table) == 0


class TestExpiry:
    def test_hard_timeout(self):
        table = FlowTable()
        entry = FlowEntry(Match.wildcard_all(), [OutputAction(1)], hard_timeout=10,
                          install_time=0.0)
        table.add(entry)
        assert table.expire(now=5.0) == []
        expired = table.expire(now=10.0)
        assert expired == [(entry, "hard")]
        assert len(table) == 0

    def test_idle_timeout_reset_by_use(self):
        table = FlowTable()
        entry = FlowEntry(Match.wildcard_all(), [OutputAction(1)], idle_timeout=10,
                          install_time=0.0)
        table.add(entry)
        entry.mark_used(now=8.0, packet_len=1)
        assert table.expire(now=15.0) == []
        expired = table.expire(now=18.0)
        assert expired == [(entry, "idle")]

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        entry = FlowEntry(Match.wildcard_all(), [OutputAction(1)], install_time=0.0)
        table.add(entry)
        assert table.expire(now=1e9) == []

    def test_send_flow_removed_flag(self):
        entry = FlowEntry(Match.wildcard_all(), [OutputAction(1)],
                          flags=OFPFlowModFlags.SEND_FLOW_REM)
        assert entry.send_flow_removed
        assert not FlowEntry(Match.wildcard_all(), []).send_flow_removed

    def test_table_capacity(self):
        table = FlowTable(max_entries=2)
        table.add(FlowEntry(prefix_match("10.1.0.0", 16), [OutputAction(1)]))
        table.add(FlowEntry(prefix_match("10.2.0.0", 16), [OutputAction(1)]))
        assert table.is_full

    def test_outputs_to_none_port_matches_everything(self):
        entry = FlowEntry(Match.wildcard_all(), [OutputAction(4)])
        assert entry.outputs_to(OFPPort.NONE)
        assert entry.outputs_to(4)
        assert not entry.outputs_to(5)
