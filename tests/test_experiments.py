"""Tests for the experiment harness (Figure 3, the demo and the ablations)."""

from __future__ import annotations

import pytest

from repro.core import FrameworkConfig
from repro.experiments import (
    format_seconds,
    format_table,
    render_ablation_table,
    render_config_time_table,
    render_demo_report,
    run_config_time_sweep,
    run_demo,
    run_single_configuration,
    run_vm_latency_ablation,
)
from repro.experiments.results import ConfigTimeResult
from repro.topology.generators import linear_topology, ring_topology


def quick_config(**overrides) -> FrameworkConfig:
    defaults = dict(vm_boot_delay=1.0, ospf_hello_interval=2, ospf_dead_interval=8,
                    discovery_probe_interval=2.0, detect_edge_ports=False,
                    monitor_interval=0.5)
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


class TestResultFormatting:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert "333" in lines[3]

    def test_format_seconds_scales_units(self):
        assert format_seconds(None) == "n/a"
        assert format_seconds(30) == "30.0 s"
        assert format_seconds(600) == "10.0 min"
        assert format_seconds(7 * 3600) == "7.0 h"

    def test_config_time_result_derived_fields(self):
        result = ConfigTimeResult(num_switches=4, num_links=4,
                                  auto_seconds=120.0, manual_seconds=3600.0)
        assert result.auto_minutes == 2.0
        assert result.manual_minutes == 60.0
        assert result.speedup == 30.0
        missing = ConfigTimeResult(num_switches=4, num_links=4,
                                   auto_seconds=None, manual_seconds=3600.0)
        assert missing.speedup is None


class TestConfigTimeExperiment:
    def test_single_configuration_measures_auto_and_manual(self):
        result = run_single_configuration(ring_topology(4), config=quick_config(),
                                          max_time=600.0)
        assert result.auto_seconds is not None
        assert result.auto_seconds > 0
        assert result.manual_seconds == 4 * 15 * 60
        assert "ospf_converged" in result.milestones
        assert result.auto_seconds < result.manual_seconds

    def test_sweep_shows_manual_growing_much_faster(self):
        results = run_config_time_sweep(ring_sizes=(4, 8), config=quick_config(),
                                        max_time=900.0)
        assert len(results) == 2
        assert results[1].manual_seconds == 2 * results[0].manual_seconds
        # Automatic configuration grows far slower than the 15 min/switch
        # manual baseline.
        auto_growth = results[1].auto_seconds - results[0].auto_seconds
        manual_growth = results[1].manual_seconds - results[0].manual_seconds
        assert auto_growth < manual_growth / 10
        table = render_config_time_table(results)
        assert "switches" in table and "manual" in table

    def test_works_on_non_ring_topologies(self):
        result = run_single_configuration(linear_topology(3), config=quick_config(),
                                          max_time=600.0)
        assert result.auto_seconds is not None
        assert result.num_links == 2


class TestDemoExperiment:
    def test_demo_on_small_topology_delivers_video(self):
        result = run_demo(topology=linear_topology(3), server_node=1, client_node=3,
                          config=quick_config(detect_edge_ports=True,
                                              edge_port_grace=5.0),
                          max_time=600.0, extra_run_time=10.0)
        assert result.num_switches == 3
        assert result.configuration_seconds is not None
        assert result.video_start_seconds is not None
        assert result.frames_received > 0
        assert result.video_start_seconds < result.manual_seconds
        assert len(result.green_timeline) == 3
        report = render_demo_report(result)
        assert "first video frame" in report
        assert "Manual configuration" in report

    def test_demo_report_without_video(self):
        from repro.experiments.results import DemoResult

        result = DemoResult(topology_name="t", num_switches=2, num_links=1,
                            video_start_seconds=None, configuration_seconds=None,
                            manual_seconds=1800.0, frames_received=0, frames_sent=10)
        report = render_demo_report(result)
        assert "did not reach" in report


class TestAblations:
    def test_vm_latency_ablation_is_monotone(self):
        results = run_vm_latency_ablation(boot_delays=(0.5, 5.0), num_switches=4,
                                          max_time=900.0)
        assert len(results) == 2
        assert results[0].auto_seconds is not None
        assert results[1].auto_seconds is not None
        assert results[0].auto_seconds < results[1].auto_seconds
        table = render_ablation_table(results, title="A2")
        assert table.startswith("A2")
        assert "vm_boot_delay_s" in table
