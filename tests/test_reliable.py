"""Tests for the reliable-delivery layer (ack/retransmit/dedup/window).

The layer is opt-in: without :meth:`MessageBus.enable_reliability` the
acquire/consume helpers degrade to passthrough shims whose bus calls are
bit-identical to the bare API (the golden traces pin this).  With it, the
critical topics get at-least-once transport plus idempotent consumption:
exactly-once, in-order application per sender under any mix of drops,
duplicates, reordering and jitter the fault layer can inject.
"""

import json

import pytest

from repro.bus import (
    Discipline,
    MessageBus,
    PassthroughPublisher,
    ReliablePolicy,
    ReliablePublisher,
    acquire_publisher,
    consume,
)
from repro.bus.reliable import RMSG_KIND, _wrap, ack_topic
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def reliable_bus(sim, policies=(("t", ReliablePolicy()),), **bus_kwargs):
    bus = MessageBus(sim, **bus_kwargs)
    bus.enable_reliability(policies)
    return bus


class TestOptIn:
    def test_disabled_bus_hands_out_passthrough(self, sim):
        bus = MessageBus(sim)
        publisher = acquire_publisher(bus, "t", "me")
        assert isinstance(publisher, PassthroughPublisher)
        assert not publisher.is_reliable
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher.publish("raw bytes")
        assert seen == ["raw bytes"]          # no wrapper on the wire
        assert not bus.has_channel(ack_topic("t"))
        assert sim.pending() == 0             # no timers armed

    def test_uncovered_topic_stays_passthrough(self, sim):
        bus = reliable_bus(sim, policies=(("covered", ReliablePolicy()),))
        assert isinstance(acquire_publisher(bus, "other", "me"),
                          PassthroughPublisher)
        assert isinstance(acquire_publisher(bus, "covered", "me"),
                          ReliablePublisher)

    def test_ack_topics_are_never_themselves_reliable(self, sim):
        bus = reliable_bus(sim, policies=(("t*", ReliablePolicy()),))
        assert bus.reliability_for("t") is not None
        assert bus.reliability_for(ack_topic("t")) is None


class TestAckProtocol:
    def test_lossless_roundtrip_acks_and_drains(self, sim):
        bus = reliable_bus(sim)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "t", "me")
        publisher.publish("a")
        publisher.publish("b")
        assert seen == ["a", "b"]             # direct channel: synchronous
        assert publisher.pending == 0         # acked synchronously too
        stats = bus.stats()["t"]
        assert stats["acked"] == 2
        assert stats["retransmits"] == 0

    def test_consumer_sees_inner_payload_not_wrapper(self, sim):
        bus = reliable_bus(sim)
        seen = []
        consume(bus, "t", lambda env: seen.append(env))
        acquire_publisher(bus, "t", "me").publish('{"kind": "route_mod"}')
        (envelope,) = seen
        assert envelope.payload == '{"kind": "route_mod"}'
        assert envelope.topic == "t"

    def test_drop_is_repaired_by_retransmit(self, sim):
        bus = reliable_bus(sim)
        bus.channel("t", latency=0.1, discipline=Discipline.DELAY)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "t", "me")
        bus.configure_faults("t", drop=1.0)
        publisher.publish("x")
        bus.clear_faults("t")                 # outage ends; RTO re-offers
        sim.run()
        assert seen == ["x"]
        assert publisher.pending == 0
        assert bus.stats()["t"]["retransmits"] >= 1

    def test_duplicates_applied_once_and_reacked(self, sim):
        bus = reliable_bus(sim)
        bus.channel("t", latency=0.1, discipline=Discipline.DELAY)
        bus.configure_faults("t", duplicate=1.0)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "t", "me")
        publisher.publish("x")
        sim.run()
        assert seen == ["x"]                  # applied exactly once
        assert publisher.pending == 0
        assert bus.stats()["t"]["rx_duplicates"] >= 1

    def test_reordered_burst_applied_in_sequence(self, sim):
        bus = reliable_bus(sim)
        bus.channel("t", latency=0.1, discipline=Discipline.DELAY)
        bus.configure_faults("t", reorder=0.8, reorder_delay=0.3)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "t", "me")
        sent = [str(index) for index in range(30)]
        for payload in sent:
            publisher.publish(payload)
        sim.run()
        assert seen == sent
        assert publisher.pending == 0

    def test_out_of_window_message_is_refused_without_ack(self, sim):
        bus = reliable_bus(sim, policies=(("t", ReliablePolicy(window=2)),))
        seen = []
        acks = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        bus.subscribe(ack_topic("t"), lambda env: acks.append(env.payload))
        # Hand-crafted stream: seq 5 with base 1 while 1..4 never arrived.
        bus.publish("t", _wrap("me", 1, 1, 5, "early"), sender="me")
        assert seen == []
        assert acks == []                     # refusal leaves it unacked
        assert bus.stats()["t"]["rx_out_of_window"] == 1
        # Once the gap fills, the stream advances normally.
        bus.publish("t", _wrap("me", 1, 1, 1, "one"), sender="me")
        bus.publish("t", _wrap("me", 1, 1, 2, "two"), sender="me")
        assert seen == ["one", "two"]

    def test_inactive_consumer_neither_applies_nor_acks(self, sim):
        bus = reliable_bus(sim)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload),
                active=lambda: False)
        publisher = acquire_publisher(bus, "t", "me")
        publisher.publish("x")
        assert seen == []
        assert publisher.pending == 1         # still awaiting an ack

    def test_plain_payloads_pass_through_a_reliable_consumer(self, sim):
        bus = reliable_bus(sim)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        bus.publish("t", "not json at all")
        bus.publish("t", '{"kind": "route_mod"}')
        assert seen == ["not json at all", '{"kind": "route_mod"}']


class TestExhaustion:
    def test_budget_exhaustion_fires_escape_hatch(self, sim):
        policy = ReliablePolicy(max_retries=2, min_rto=0.1, max_rto=0.5)
        bus = reliable_bus(sim, policies=(("t", policy),))
        consume(bus, "t", lambda env: None, active=lambda: False)
        resyncs = []
        publisher = acquire_publisher(bus, "t", "me",
                                      on_exhausted=lambda: resyncs.append(1))
        publisher.publish("doomed")
        sim.run()
        assert resyncs == [1]
        assert publisher.pending == 0
        assert publisher.incarnation == 2
        assert bus.stats()["t"]["exhausted"] == 1
        assert bus.stats()["t"]["retransmits"] == 2

    def test_messages_after_exhaustion_flow_again(self, sim):
        policy = ReliablePolicy(max_retries=1, min_rto=0.1, max_rto=0.2)
        bus = reliable_bus(sim, policies=(("t", policy),))
        alive = [False]
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload),
                active=lambda: alive[0])
        publisher = acquire_publisher(bus, "t", "me")
        publisher.publish("lost to the outage")
        sim.run()
        assert publisher.incarnation == 2
        alive[0] = True
        publisher.publish("fresh start")
        assert seen == ["fresh start"]
        assert publisher.pending == 0


class TestRetarget:
    def test_pending_window_migrates_to_the_new_topic(self, sim):
        bus = reliable_bus(sim, policies=(("shard.*", ReliablePolicy()),))
        old_seen, new_seen = [], []
        consume(bus, "shard.0", lambda env: old_seen.append(env.payload),
                active=lambda: False)          # old shard is dead
        consume(bus, "shard.1", lambda env: new_seen.append(env.payload))
        publisher = acquire_publisher(bus, "shard.0", "me")
        publisher.publish("a")
        publisher.publish("b")
        assert publisher.pending == 2
        publisher.retarget("shard.1")
        assert publisher.topic == "shard.1"
        assert publisher.incarnation == 2
        assert new_seen == ["a", "b"]          # re-published in order
        assert publisher.pending == 0          # new shard acked them

    def test_lost_ack_migrates_as_a_duplicate_not_a_loss(self, sim):
        """An applied-but-unacked message rides the retarget: the new shard
        receives it again (at-least-once across the migration), which is
        why the component-level consumers must stay idempotent."""
        bus = reliable_bus(sim, policies=(("shard.*", ReliablePolicy()),))
        old_seen, new_seen = [], []
        consume(bus, "shard.0", lambda env: old_seen.append(env.payload))
        consume(bus, "shard.1", lambda env: new_seen.append(env.payload))
        publisher = acquire_publisher(bus, "shard.0", "me")
        bus.configure_faults(ack_topic("shard.0"), drop=1.0)
        publisher.publish("applied but unacked")
        assert old_seen == ["applied but unacked"]
        assert publisher.pending == 1          # the ack never came back
        publisher.retarget("shard.1")
        assert new_seen == ["applied but unacked"]
        assert publisher.pending == 0

    def test_out_of_order_ack_then_retarget_leaves_no_holes(self, sim):
        """Regression: seqs the old shard acked *out of order* must not
        become permanent gaps in the new incarnation.  m1's first tx is
        lost, so the old shard acks-and-buffers m2/m3 behind the gap;
        they are in doubt (received, never applied) and must ride the
        migration, renumbered so the new stream has no holes — without
        this, the new consumer delivered only m1 and held every later
        message in its reorder buffer forever."""
        bus = reliable_bus(sim, policies=(("shard.*", ReliablePolicy()),))
        old_seen, new_seen = [], []
        consume(bus, "shard.0", lambda env: old_seen.append(env.payload))
        consume(bus, "shard.1", lambda env: new_seen.append(env.payload))
        publisher = acquire_publisher(bus, "shard.0", "me")
        bus.configure_faults("shard.0", drop=1.0)
        publisher.publish("m1")                # lost on the wire
        bus.clear_faults("shard.0")
        publisher.publish("m2")                # acked+buffered at old shard
        publisher.publish("m3")
        assert old_seen == []
        assert publisher.pending == 1          # only m1 awaits its ack
        assert bus.stats()["shard.0"]["rx_out_of_order"] == 2
        publisher.retarget("shard.1")
        publisher.publish("m4")
        publisher.publish("m5")
        assert new_seen == ["m1", "m2", "m3", "m4", "m5"]
        assert publisher.pending == 0
        sim.run()                              # no retransmit stragglers
        assert new_seen == ["m1", "m2", "m3", "m4", "m5"]

    def test_repeated_migration_does_not_stack_ack_subscriptions(self, sim):
        """Regression: migrating back to a previously-used topic must not
        register a duplicate ack subscription (the bus has no
        unsubscribe, so churn would grow them without bound)."""
        bus = reliable_bus(sim, policies=(("shard.*", ReliablePolicy()),))
        seen = []
        consume(bus, "shard.0", lambda env: seen.append(env.payload))
        consume(bus, "shard.1", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "shard.0", "me")
        for _ in range(5):
            publisher.retarget("shard.1")
            publisher.retarget("shard.0")
        for topic in ("shard.0", "shard.1"):
            assert bus.stats()[ack_topic(topic)]["subscribers"] == 1
        publisher.publish("after churn")
        assert seen == ["after churn"]
        assert publisher.pending == 0


class TestLateJoiningConsumer:
    def test_untracked_publishes_leave_no_holes_for_late_joiners(self, sim):
        """Regression: ack-mode publishes with no subscriber are dropped
        by the bus but consume seqs; a consumer subscribing afterwards
        must start cleanly at the next tracked message rather than wait
        forever for the untracked ones."""
        bus = reliable_bus(sim)
        publisher = acquire_publisher(bus, "t", "me")
        publisher.publish("void 1")            # nobody listening: dropped
        publisher.publish("void 2")
        assert publisher.pending == 0          # untracked, not retried
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher.publish("first heard")
        publisher.publish("second heard")
        assert seen == ["first heard", "second heard"]
        assert publisher.pending == 0


class TestSeqMode:
    def test_seq_mode_never_acks(self, sim):
        bus = reliable_bus(
            sim, policies=(("hb", ReliablePolicy(mode="seq")),))
        beats = []
        consume(bus, "hb", lambda env: beats.append(env.payload))
        publisher = acquire_publisher(bus, "hb", "shard:0")
        publisher.publish("beat 1")
        publisher.publish("beat 2")
        assert beats == ["beat 1", "beat 2"]
        assert publisher.pending == 0          # nothing is ever tracked
        assert not bus.has_channel(ack_topic("hb"))
        assert sim.pending() == 0              # and no RTO timers

    def test_seq_mode_drops_stale_and_duplicate_beats(self, sim):
        bus = reliable_bus(
            sim, policies=(("hb", ReliablePolicy(mode="seq")),))
        beats = []
        consume(bus, "hb", lambda env: beats.append(env.payload))
        bus.publish("hb", _wrap("shard:0", 1, 1, 1, "one"), sender="shard:0")
        bus.publish("hb", _wrap("shard:0", 1, 1, 3, "three"), sender="shard:0")
        bus.publish("hb", _wrap("shard:0", 1, 1, 2, "late"), sender="shard:0")
        bus.publish("hb", _wrap("shard:0", 1, 1, 3, "dup"), sender="shard:0")
        assert beats == ["one", "three"]       # gap skipped, stale dropped
        stats = bus.stats()["hb"]
        assert stats["rx_duplicates"] == 2
        assert stats["rx_out_of_order"] == 1


class TestEndToEnd:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_exactly_once_in_order_under_compound_faults(self, sim, seed):
        """The acceptance property on one topic: 5% drop, 2% duplication,
        reordering and jitter (acks ride the same lossy wire) must still
        yield exactly-once, in-order application."""
        bus = reliable_bus(Simulator(), policies=(("t", ReliablePolicy()),),
                           fault_seed=seed)
        sim = bus.sim
        bus.channel("t", latency=0.05, discipline=Discipline.DELAY)
        bus.configure_faults("t", drop=0.05, duplicate=0.02,
                             reorder=0.25, jitter=0.05)
        seen = []
        consume(bus, "t", lambda env: seen.append(env.payload))
        publisher = acquire_publisher(bus, "t", "me")
        sent = [f"m{index}" for index in range(200)]
        for payload in sent:
            publisher.publish(payload)
        sim.run()
        assert seen == sent
        assert publisher.pending == 0
