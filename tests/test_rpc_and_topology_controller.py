"""Tests for the RPC client/server and the topology-controller glue."""

from __future__ import annotations

import pytest

from repro.controller import Controller, TopologyDiscovery
from repro.core import IPAddressManager, RPCClient, RPCServer
from repro.core.config_messages import (
    EdgePortConfigMessage,
    LinkConfigMessage,
    SwitchConfigMessage,
    SwitchRemovedMessage,
)
from repro.core.topology_controller import TopologyControllerApp, build_topology_controller
from repro.net import IPv4Address, IPv4Network
from repro.quagga import parse_ospfd_conf, parse_zebra_conf
from repro.routeflow import RFProxy, RFServer
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import linear_topology, ring_topology


@pytest.fixture
def rpc_stack(sim):
    """RFServer + RPC server/client with fast VM boots."""
    rfproxy = RFProxy()
    rfserver = RFServer(sim, rfproxy, vm_boot_delay=0.5)
    rpc_server = RPCServer(sim, rfserver, ipam=IPAddressManager())
    rpc_client = RPCClient(sim, rpc_server, network_delay=0.01)
    return rfserver, rpc_server, rpc_client


def send_switch(rpc_client, switch_id, ports=2):
    rpc_client.send(SwitchConfigMessage(switch_id=switch_id, num_ports=ports))


def send_link(rpc_client, dpid_a, port_a, dpid_b, port_b, base="172.16.0"):
    rpc_client.send(LinkConfigMessage(
        dpid_a=dpid_a, port_a=port_a, address_a=f"{base}.1",
        dpid_b=dpid_b, port_b=port_b, address_b=f"{base}.2", prefix_len=30))


class TestRPCServer:
    def test_switch_config_creates_vm_and_configs(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1, ports=3)
        sim.run(until=5.0)
        vm = rfserver.vm(1)
        assert vm is not None and vm.is_running
        assert vm.num_ports == 3
        assert rfserver.mapping.dpid_for_vm(1) == 1
        assert "zebra.conf" in vm.config_files
        assert "ospfd.conf" in vm.config_files
        assert "bgpd.conf" in vm.config_files
        parsed = parse_ospfd_conf(vm.config_files["ospfd.conf"])
        assert parsed.router_id == IPAddressManager().router_id(1)

    def test_switch_config_is_idempotent(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1)
        send_switch(rpc_client, 1)
        sim.run(until=5.0)
        assert rfserver.vm_count == 1

    def test_switch_configured_callback_fires(self, sim, rpc_stack):
        _, rpc_server, rpc_client = rpc_stack
        configured = []
        rpc_server.on_switch_configured(configured.append)
        send_switch(rpc_client, 7)
        sim.run(until=5.0)
        assert configured == [7]

    def test_link_config_assigns_addresses_and_wires_vms(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1)
        send_switch(rpc_client, 2)
        sim.run(until=2.0)
        send_link(rpc_client, 1, 1, 2, 1)
        sim.run(until=6.0)
        vm_a, vm_b = rfserver.vm(1), rfserver.vm(2)
        assert vm_a.interface("eth1").ip == IPv4Address("172.16.0.1")
        assert vm_b.interface("eth1").ip == IPv4Address("172.16.0.2")
        assert rfserver.rfvs.is_connected(vm_a.interface("eth1"), vm_b.interface("eth1"))
        zebra_conf = parse_zebra_conf(vm_a.config_files["zebra.conf"])
        assert zebra_conf.interface("eth1").prefix_len == 30
        ospf_conf = parse_ospfd_conf(vm_a.config_files["ospfd.conf"])
        assert any(str(n.prefix) == "172.16.0.0/30" for n in ospf_conf.networks)
        assert rpc_server.configured_link_count == 1

    def test_duplicate_link_config_ignored(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1)
        send_switch(rpc_client, 2)
        sim.run(until=2.0)
        send_link(rpc_client, 1, 1, 2, 1)
        send_link(rpc_client, 2, 1, 1, 1)  # same link, reversed direction
        sim.run(until=6.0)
        assert rpc_server.configured_link_count == 1

    def test_link_config_before_switch_config_is_deferred(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_link(rpc_client, 1, 1, 2, 1)
        sim.run(until=1.0)
        assert rpc_server.configured_link_count == 0
        send_switch(rpc_client, 1)
        send_switch(rpc_client, 2)
        sim.run(until=6.0)
        assert rpc_server.configured_link_count == 1
        assert rfserver.vm(1).interface("eth1").ip is not None

    def test_edge_port_config(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 3)
        sim.run(until=2.0)
        rpc_client.send(EdgePortConfigMessage(datapath_id=3, port_no=2,
                                              gateway="192.168.9.1", prefix_len=24))
        sim.run(until=5.0)
        vm = rfserver.vm(3)
        assert vm.interface("eth2").ip == IPv4Address("192.168.9.1")
        owner = rfserver.interface_owning_ip(IPv4Address("192.168.9.1"))
        assert owner is not None and owner[0] is vm

    def test_switch_removed_stops_vm(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1)
        sim.run(until=2.0)
        rpc_client.send(SwitchRemovedMessage(switch_id=1))
        sim.run(until=4.0)
        assert not rfserver.vm(1).is_running
        assert rfserver.mapping.dpid_for_vm(1) is None

    def test_bgp_config_lists_link_neighbors(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1)
        send_switch(rpc_client, 2)
        sim.run(until=2.0)
        send_link(rpc_client, 1, 1, 2, 1)
        sim.run(until=6.0)
        from repro.quagga import parse_bgpd_conf

        bgp_a = parse_bgpd_conf(rfserver.vm(1).config_files["bgpd.conf"])
        assert bgp_a.local_as == rpc_server.bgp_as_base + 1
        assert any(n.address == IPv4Address("172.16.0.2") for n in bgp_a.neighbors)

    def test_event_log_records_configuration_steps(self, sim, rpc_stack):
        rfserver, rpc_server, rpc_client = rpc_stack
        send_switch(rpc_client, 1)
        send_switch(rpc_client, 2)
        sim.run(until=2.0)
        send_link(rpc_client, 1, 1, 2, 1)
        sim.run(until=6.0)
        categories = {entry["category"] for entry in rfserver.event_log}
        assert {"vm_created", "switch_configured", "link_configured",
                "config_file", "virtual_link"} <= categories


class TestTopologyControllerApp:
    def build(self, sim, topology, detect_edge_ports=True, grace=3.0):
        rfproxy = RFProxy()
        rfserver = RFServer(sim, rfproxy, vm_boot_delay=0.2)
        ipam = IPAddressManager()
        rpc_server = RPCServer(sim, rfserver, ipam=ipam)
        rpc_client = RPCClient(sim, rpc_server)
        controller, discovery, app = build_topology_controller(
            sim, rpc_client, ipam=ipam, probe_interval=2.0,
            edge_port_grace=grace, detect_edge_ports=detect_edge_ports)
        network = EmulatedNetwork(sim, topology, ipam=ipam)
        network.connect_control_plane(controller.accept_channel, controller)
        return rfserver, rpc_server, app, network

    def test_switch_and_link_messages_sent(self, sim):
        rfserver, rpc_server, app, _ = self.build(sim, ring_topology(4),
                                                  detect_edge_ports=False)
        sim.run(until=20.0)
        assert app.switch_messages_sent == 4
        assert app.link_messages_sent == 4
        assert app.known_switches == [1, 2, 3, 4]
        assert rpc_server.configured_link_count == 4
        assert rfserver.vm_count == 4

    def test_each_physical_link_announced_once(self, sim):
        _, rpc_server, app, _ = self.build(sim, linear_topology(3),
                                           detect_edge_ports=False)
        sim.run(until=30.0)
        assert app.link_messages_sent == 2
        assert app.known_link_count == 2

    def test_edge_ports_detected_after_grace(self, sim):
        topology = linear_topology(2)
        topology.attach_host("h1", 1)
        rfserver, rpc_server, app, network = self.build(sim, topology, grace=3.0)
        sim.run(until=30.0)
        assert app.edge_port_count == 1
        info = network.host_info("h1")
        vm = rfserver.vm(info.datapath_id)
        gateway_iface = vm.interface(f"eth{info.port_no}")
        assert gateway_iface.ip == info.gateway

    def test_edge_detection_disabled(self, sim):
        topology = linear_topology(2)
        topology.attach_host("h1", 1)
        _, _, app, _ = self.build(sim, topology, detect_edge_ports=False)
        sim.run(until=30.0)
        assert app.edge_port_count == 0

    def test_inter_switch_ports_never_become_edges(self, sim):
        _, _, app, _ = self.build(sim, ring_topology(4), grace=3.0)
        sim.run(until=30.0)
        assert app.edge_port_count == 0
