"""Route-lifecycle semantics of the RIB: reconciliation and tie-breaks.

These tests pin the contract the OSPF daemon's SPF path relies on:
``replace_routes`` diffs a protocol's full snapshot against the installed
candidates, withdrawing anything stale — in particular the equal-metric
candidate with an outdated next hop that the seed implementation leaked
(the ROADMAP's OSPF/RIB wrinkle).
"""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network
from repro.quagga import RIB, Route, RouteSource, ZebraDaemon

P1 = IPv4Network("10.1.0.0/24")
P2 = IPv4Network("10.2.0.0/24")
P3 = IPv4Network("10.3.0.0/24")
HOP_A = IPv4Address("172.16.0.1")
HOP_B = IPv4Address("172.16.0.5")


def ospf_route(prefix=P1, hop=HOP_A, metric=10, iface="eth1") -> Route:
    return Route(prefix=prefix, next_hop=hop, interface=iface,
                 source=RouteSource.OSPF, metric=metric)


class TestReplaceRoutes:
    def test_installs_a_fresh_snapshot(self):
        rib = RIB()
        changed = rib.replace_routes(RouteSource.OSPF,
                                     [ospf_route(P1), ospf_route(P2)])
        assert changed == [P1, P2]
        assert rib.best_route(P1).next_hop == HOP_A
        assert len(rib) == 2

    def test_withdraws_prefixes_missing_from_the_snapshot(self):
        rib = RIB()
        rib.replace_routes(RouteSource.OSPF, [ospf_route(P1), ospf_route(P2)])
        changed = rib.replace_routes(RouteSource.OSPF, [ospf_route(P1)])
        assert changed == [P2]
        assert rib.best_route(P2) is None
        assert P2 not in rib

    def test_replaces_a_changed_next_hop_without_leaking_the_old(self):
        rib = RIB()
        rib.replace_routes(RouteSource.OSPF, [ospf_route(hop=HOP_A)])
        rib.replace_routes(RouteSource.OSPF,
                           [ospf_route(hop=HOP_B, iface="eth2")])
        candidates = rib.candidates(P1)
        assert len(candidates) == 1
        assert candidates[0].next_hop == HOP_B
        assert rib.best_route(P1).next_hop == HOP_B

    def test_identical_snapshot_is_a_silent_noop(self):
        rib = RIB()
        snapshot = [ospf_route(P1), ospf_route(P2)]
        rib.replace_routes(RouteSource.OSPF, snapshot)
        changes = []
        rib.add_listener(lambda prefix, new, old: changes.append(prefix))
        assert rib.replace_routes(RouteSource.OSPF, list(snapshot)) == []
        assert changes == []

    def test_does_not_touch_other_protocols(self):
        rib = RIB()
        rib.add_route(Route(prefix=P1, next_hop=None, interface="eth0",
                            source=RouteSource.CONNECTED))
        rib.replace_routes(RouteSource.OSPF, [ospf_route(P1), ospf_route(P2)])
        rib.replace_routes(RouteSource.OSPF, [])
        assert rib.best_route(P1).source == RouteSource.CONNECTED
        assert rib.best_route(P2) is None

    def test_rejects_routes_from_another_source(self):
        rib = RIB()
        with pytest.raises(ValueError):
            rib.replace_routes(RouteSource.OSPF, [
                Route(prefix=P1, next_hop=HOP_A, interface="eth1",
                      source=RouteSource.BGP)])

    def test_listener_order_is_ascending_prefix(self):
        rib = RIB()
        changes = []
        rib.add_listener(lambda prefix, new, old: changes.append(prefix))
        rib.replace_routes(RouteSource.OSPF,
                           [ospf_route(P3), ospf_route(P1), ospf_route(P2)])
        assert changes == [P1, P2, P3]

    def test_candidates_from_reports_only_that_source(self):
        rib = RIB()
        rib.add_route(Route(prefix=P1, next_hop=None, interface="eth0",
                            source=RouteSource.CONNECTED))
        rib.replace_routes(RouteSource.OSPF, [ospf_route(P1), ospf_route(P2)])
        ospf_only = rib.candidates_from(RouteSource.OSPF)
        assert set(ospf_only) == {P1, P2}
        assert all(r.source == RouteSource.OSPF
                   for routes in ospf_only.values() for r in routes)


class TestReselectTieBreaks:
    def test_equal_cost_tie_break_is_first_announced_and_stable(self):
        """min() keeps the earliest equal-cost candidate deterministically."""
        rib = RIB()
        rib.add_route(ospf_route(hop=HOP_A, metric=10))
        rib.add_route(ospf_route(hop=HOP_B, metric=10, iface="eth2"))
        assert rib.best_route(P1).next_hop == HOP_A
        # Re-announcing the losing candidate must not flap the selection.
        changes = []
        rib.add_listener(lambda prefix, new, old: changes.append(prefix))
        rib.add_route(ospf_route(hop=HOP_B, metric=10, iface="eth2"))
        assert rib.best_route(P1).next_hop == HOP_A
        assert changes == []

    def test_stale_candidate_does_not_survive_next_hop_change(self):
        """Regression for the seed wrinkle: an SPF run that moves a route to
        a new equal-metric next hop must withdraw the old candidate, so the
        old next hop cannot keep winning the tie-break."""
        rib = RIB()
        rib.replace_routes(RouteSource.OSPF, [ospf_route(hop=HOP_A, metric=10)])
        # SPF now says the (only) path is via HOP_B at the same metric.
        rib.replace_routes(RouteSource.OSPF,
                           [ospf_route(hop=HOP_B, metric=10, iface="eth2")])
        best = rib.best_route(P1)
        assert best.next_hop == HOP_B
        assert [r.next_hop for r in rib.candidates(P1)] == [HOP_B]

    def test_seed_behaviour_add_route_alone_leaks_the_stale_candidate(self):
        """Documents why announce-only is insufficient: add_route keeps the
        old (source, next hop, interface) candidate, and the stale one wins
        min()'s stable tie-break — exactly the bug replace_routes fixes."""
        rib = RIB()
        rib.add_route(ospf_route(hop=HOP_A, metric=10))
        rib.add_route(ospf_route(hop=HOP_B, metric=10, iface="eth2"))
        assert len(rib.candidates(P1)) == 2
        assert rib.best_route(P1).next_hop == HOP_A  # stale winner


class TestZebraReplaceRoutes:
    def test_fib_reconciles_and_notifies_once_per_prefix(self):
        zebra = ZebraDaemon("vm1")
        zebra.start()
        updates = []
        zebra.add_fib_listener(lambda prefix, new, old: updates.append((prefix, new)))
        zebra.replace_routes(RouteSource.OSPF, [ospf_route(P1), ospf_route(P2)])
        assert len(updates) == 2
        zebra.replace_routes(RouteSource.OSPF,
                             [ospf_route(P1, hop=HOP_B, iface="eth2")])
        assert zebra.fib[P1].next_hop == HOP_B
        assert P2 not in zebra.fib
        assert zebra.install_count == 3
        assert zebra.withdraw_count == 1
