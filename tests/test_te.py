"""Property and lifecycle tests for the TE subsystem (``repro.te``).

Hypothesis drives the pure-path invariants: Yen's k-shortest paths are
loop-free, cost-nondecreasing and distinct on seeded connected
topologies; ``ecmp_split`` conserves demand exactly; ``greedy_choice``
never selects a path with a link utilized at or above the bottleneck of
the path it abandons; ``suffix_compatible`` steer sets induce a
single-successor (loop-free) forwarding function per destination.

The lifecycle tests then pin the actuation contract on a converged
ring-4 control plane: moving a steered prefix emits exactly one
RouteMod DELETE + ADD pair per moved prefix (the OFPFC_DELETE
withdrawal lifecycle), and withdrawing every steer restores the
byte-identical OSPF route tables — with the TE stack imported, the
golden ring-4 trace stays byte-identical, because without TE routes in
the RIB the rfclient's pair branch is unreachable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.sim import SeededRandom
from repro.te import (
    KShortestPathEngine,
    bottleneck,
    ecmp_split,
    greedy_choice,
    k_shortest_paths,
    path_links,
    shortest_path,
    suffix_compatible,
)
from repro.topology.generators import random_topology

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_TRACE = DATA_DIR / "golden_ring4_trace.json"


def _adjacency(topology):
    """Sorted-neighbor adjacency straight from a Topology object."""
    neighbors = {node.node_id: [] for node in topology.nodes}
    for link in topology.links:
        neighbors[link.node_a].append(link.node_b)
        neighbors[link.node_b].append(link.node_a)
    return {node: tuple(sorted(peers)) for node, peers in neighbors.items()}


def _bfs_hops(adjacency, source):
    from collections import deque

    hops = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for peer in adjacency.get(node, ()):
            if peer not in hops:
                hops[peer] = hops[node] + 1
                queue.append(peer)
    return hops


#: (num_switches, extra-link prob %, topology seed, src pick, dst pick)
ksp_params = st.tuples(
    st.integers(min_value=3, max_value=14),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=0, max_value=2**16),
)


def _ksp_case(params, k=5):
    """Build a seeded connected graph and a (src, dst, paths) instance."""
    num, prob, seed, src_pick, dst_pick = params
    topology = random_topology(num, extra_link_probability=prob / 100.0,
                               seed=seed)
    adjacency = _adjacency(topology)
    src = 1 + src_pick % num
    dst = 1 + dst_pick % num
    return adjacency, src, dst, k_shortest_paths(adjacency, src, dst, k)


class TestKShortestPathProperties:
    @settings(derandomize=True, max_examples=80, deadline=None)
    @given(params=ksp_params)
    def test_paths_are_loop_free_walks(self, params):
        adjacency, src, dst, paths = _ksp_case(params)
        assert paths, "random_topology graphs are connected"
        for path in paths:
            assert path[0] == src and path[-1] == dst
            assert len(set(path)) == len(path)          # loop-free
            for hop, successor in zip(path, path[1:]):  # real edges only
                assert successor in adjacency[hop]

    @settings(derandomize=True, max_examples=80, deadline=None)
    @given(params=ksp_params)
    def test_costs_nondecreasing_and_first_is_shortest(self, params):
        adjacency, src, dst, paths = _ksp_case(params)
        costs = [len(path) - 1 for path in paths]
        assert costs == sorted(costs)
        assert costs[0] == _bfs_hops(adjacency, src)[dst]

    @settings(derandomize=True, max_examples=80, deadline=None)
    @given(params=ksp_params)
    def test_paths_are_distinct(self, params):
        _adjacency_, _src, _dst, paths = _ksp_case(params)
        assert len(set(paths)) == len(paths)

    @settings(derandomize=True, max_examples=40, deadline=None)
    @given(params=ksp_params)
    def test_dijkstra_agrees_with_bfs(self, params):
        adjacency, src, dst, _paths = _ksp_case(params, k=1)
        path = shortest_path(adjacency, src, dst)
        assert path is not None
        assert len(path) - 1 == _bfs_hops(adjacency, src)[dst]


class TestEcmpSplit:
    @settings(derandomize=True, max_examples=100, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=1e12,
                          allow_nan=False, allow_infinity=False),
           ways=st.integers(min_value=1, max_value=64))
    def test_split_conserves_demand_to_one_ulp(self, rate, ways):
        import math

        shares = ecmp_split(rate, ways)
        assert len(shares) == ways
        assert abs(sum(shares) - rate) <= math.ulp(rate)
        assert all(share >= 0.0 for share in shares)
        # All but the residue-absorbing first share are the even split,
        # and the first deviates by at most the summation error bound
        # (one rounding step per addition).
        even = rate / ways
        assert shares[1:] == [even] * (ways - 1)
        assert abs(shares[0] - even) <= 2 * ways * math.ulp(max(rate, 1.0))

    def test_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            ecmp_split(1e6, 0)


class TestGreedyChoice:
    @settings(derandomize=True, max_examples=80, deadline=None)
    @given(params=ksp_params,
           cur_pick=st.integers(min_value=0, max_value=2**16),
           util_seed=st.integers(min_value=0, max_value=2**16))
    def test_never_selects_a_link_hotter_than_the_abandoned_path(
            self, params, cur_pick, util_seed):
        _adj, _src, _dst, paths = _ksp_case(params)
        hypothesis.assume(len(paths) >= 2)
        rng = SeededRandom(util_seed)
        utilization = {}
        for path in paths:
            for key in path_links(path):
                utilization.setdefault(key, rng.random())
        current = paths[cur_pick % len(paths)]
        candidates = [path for path in paths if path != current]
        choice = greedy_choice(candidates, current, utilization)
        abandoned = bottleneck(current, utilization)
        if choice is None:
            # Nothing strictly better exists.
            assert all(bottleneck(path, utilization) >= abandoned
                       for path in candidates)
        else:
            # No link on the chosen path is utilized at or above the
            # level the greedy policy is fleeing.
            assert all(utilization.get(key, 0.0) < abandoned
                       for key in path_links(choice))
            # And it is the coldest strict improvement on offer.
            assert bottleneck(choice, utilization) == min(
                bottleneck(path, utilization) for path in candidates)

    @settings(derandomize=True, max_examples=60, deadline=None)
    @given(params=ksp_params,
           util_seed=st.integers(min_value=0, max_value=2**16))
    def test_peer_constrained_choice_is_suffix_compatible(
            self, params, util_seed):
        _adj, _src, _dst, paths = _ksp_case(params)
        hypothesis.assume(len(paths) >= 3)
        rng = SeededRandom(util_seed)
        utilization = {key: rng.random()
                       for path in paths for key in path_links(path)}
        current, peer = paths[0], paths[1]
        candidates = [path for path in paths if path != current]
        choice = greedy_choice(candidates, current, utilization,
                               peers=[peer])
        if choice is not None:
            assert suffix_compatible(choice, [peer])


class TestSuffixCompatible:
    @settings(derandomize=True, max_examples=60, deadline=None)
    @given(params=ksp_params)
    def test_reflexive_and_unconstrained(self, params):
        _adj, _src, _dst, paths = _ksp_case(params)
        for path in paths:
            assert suffix_compatible(path, [])
            assert suffix_compatible(path, [path])

    @settings(derandomize=True, max_examples=60, deadline=None)
    @given(params=ksp_params)
    def test_compatible_set_forwards_loop_free(self, params):
        """Greedily accepted compatible steers induce one successor per
        node, and following successors from any node reaches ``dst``."""
        _adj, _src, dst, paths = _ksp_case(params)
        accepted = []
        for path in paths:
            if suffix_compatible(path, accepted):
                accepted.append(path)
        assert accepted  # the first path is always accepted
        successor = {}
        for path in accepted:
            for hop, nxt in zip(path, path[1:]):
                assert successor.get(hop, nxt) == nxt  # a function
                successor[hop] = nxt
        for start in successor:
            node, steps = start, 0
            while node != dst:
                node = successor[node]
                steps += 1
                assert steps <= len(successor)  # no cycle

    def test_conflicting_successor_detected(self):
        assert not suffix_compatible((1, 2, 3), [(4, 2, 5, 3)])
        assert suffix_compatible((1, 2, 5, 3), [(4, 2, 5, 3)])


class TestKspEngineMemo:
    def test_memoizes_until_invalidated(self):
        calls = []
        adjacency = {1: (2, 3), 2: (1, 4), 3: (1, 4), 4: (2, 3)}

        def source():
            calls.append(1)
            return adjacency

        engine = KShortestPathEngine(source, k=3)
        first = engine.paths(1, 4)
        again = engine.paths(1, 4)
        assert first == again and first[0] in ((1, 2, 4), (1, 3, 4))
        assert engine.computations == 1 and engine.hits == 1
        assert len(calls) == 1            # adjacency built lazily, once
        engine.invalidate()
        assert engine.version == 1
        engine.paths(1, 4)
        assert engine.computations == 2 and len(calls) == 2


# ---------------------------------------------------------------------------
# lifecycle: the RouteMod pair contract and the no-TE gating
# ---------------------------------------------------------------------------
def _converged_ring4():
    """A converged 4-ring with loopbacks advertised (TE steerable)."""
    from repro.core import (AutoConfigFramework, FrameworkConfig,
                            IPAddressManager)
    from repro.sim import Simulator
    from repro.topology.emulator import EmulatedNetwork
    from repro.topology.generators import ring_topology

    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(
        sim, config=FrameworkConfig(detect_edge_ports=False,
                                    advertise_loopbacks=True), ipam=ipam)
    network = EmulatedNetwork(sim, ring_topology(4), ipam=ipam)
    framework.attach(network)
    assert framework.run_until_configured(max_time=3600.0) is not None
    return sim, framework, network, ipam


class TestZebraRerouteLifecycle:
    def test_exactly_one_delete_add_pair_per_moved_prefix(self):
        from repro.net.addresses import IPv4Network
        from repro.te import ZebraActuator

        sim, framework, network, ipam = _converged_ring4()
        addresses = {dpid: ipam.router_id(dpid) for dpid in network.switches}
        actuator = ZebraActuator(
            framework.control_plane, network,
            prefix_of=lambda dst: IPv4Network((addresses[dst], 32)))
        mods = []
        framework.bus.subscribe(
            framework.rfserver.route_mods_topic,
            lambda envelope: mods.append(json.loads(envelope.payload)))
        prefix = str(IPv4Network((addresses[3], 32)))

        # Steer dst 3 from ingress 1 one way around the ring, then flip
        # it to the other: the second apply must move VM 1's next hop.
        actuator.apply({(1, 3): (1, 2, 3)})
        sim.run(until=sim.now + 2.0)
        mods.clear()
        actuator.apply({(1, 3): (1, 4, 3)})
        sim.run(until=sim.now + 2.0)

        moved = [mod for mod in mods if mod["prefix"] == prefix]
        assert moved, "flipping the steer must emit RouteMods"
        # The moved VM emits its strict withdrawal immediately before the
        # replacement ADD — one pair, nothing else.
        vm1 = [mod["mod_type"] for mod in moved if mod["vm_id"] == 1]
        assert vm1 == ["delete", "add"]
        # No other VM saw its next hop change, so no other DELETE:
        # exactly one pair per moved prefix.
        deletes = [mod for mod in moved if mod["mod_type"] == "delete"]
        assert len(deletes) == 1 and deletes[0]["vm_id"] == 1
        adds = [mod for mod in moved
                if mod["mod_type"] == "add" and mod["vm_id"] == 1]
        assert adds[0]["metric"] == 2  # TE metric is the path hop count

    def test_withdrawing_all_steers_restores_ospf_tables(self):
        from repro.net.addresses import IPv4Network
        from repro.te import ZebraActuator

        sim, framework, network, ipam = _converged_ring4()
        addresses = {dpid: ipam.router_id(dpid) for dpid in network.switches}
        before = {dpid: framework.rfserver.vm_for_dpid(dpid).zebra
                  .show_ip_route() for dpid in sorted(network.switches)}
        actuator = ZebraActuator(
            framework.control_plane, network,
            prefix_of=lambda dst: IPv4Network((addresses[dst], 32)))
        actuator.apply({(1, 3): (1, 2, 3), (2, 4): (2, 3, 4)})
        sim.run(until=sim.now + 2.0)
        during = framework.rfserver.vm_for_dpid(1).zebra.show_ip_route()
        assert during != before[1]        # the steer really landed
        actuator.apply({})
        sim.run(until=sim.now + 2.0)
        after = {dpid: framework.rfserver.vm_for_dpid(dpid).zebra
                 .show_ip_route() for dpid in sorted(network.switches)}
        assert after == before            # byte-identical fallback


class TestNoTEGating:
    def test_scenarios_without_te_carry_no_te_spec(self):
        from repro.scenarios import get

        for name in ("ring-4", "fat-tree-k4", "torus-8x8"):
            assert get(name).te is None
        assert get("te-torus-8x8").te is not None
        assert get("te-torus-16x16").te is not None

    def test_golden_ring4_trace_byte_identical_with_te_imported(self):
        """Importing/steering machinery present, no TE configured: the
        seed golden trace must not move by a byte (same gate as
        ``enable_bgp`` — the rfclient pair branch stays unreachable)."""
        import repro.te  # noqa: F401  (the stack under suspicion)
        from repro.core import (AutoConfigFramework, FrameworkConfig,
                                IPAddressManager)
        from repro.sim import Simulator
        from repro.topology.emulator import EmulatedNetwork
        from repro.topology.generators import ring_topology

        sim = Simulator()
        trace = []
        sim.add_trace_hook(
            lambda event: trace.append(f"{event.time!r} {event.name}"))
        ipam = IPAddressManager()
        framework = AutoConfigFramework(
            sim, config=FrameworkConfig(detect_edge_ports=False), ipam=ipam)
        network = EmulatedNetwork(sim, ring_topology(4), ipam=ipam)
        framework.attach(network)
        configured_at = framework.run_until_configured(max_time=3600.0)
        route_table = framework.rfserver.vm(1).zebra.show_ip_route()

        golden = json.loads(GOLDEN_TRACE.read_text())
        assert len(trace) == golden["num_events"]
        assert configured_at == golden["configured_at"]
        assert route_table == golden["route_table"]
        digest = hashlib.sha256("\n".join(trace).encode()).hexdigest()
        assert digest == golden["trace_sha256"]


# ---------------------------------------------------------------------------
# the measurement loop, the experiment and the CLI
# ---------------------------------------------------------------------------
def _synthetic_torus(rows=4, cols=4):
    from repro.sim import Simulator
    from repro.topology.emulator import EmulatedNetwork
    from repro.topology.generators import torus_topology
    from repro.traffic import FluidEngine, SyntheticRoutes, service_address

    sim = Simulator()
    network = EmulatedNetwork(sim, torus_topology(rows, cols))
    routes = SyntheticRoutes(network)
    routes.install()
    addresses = {dpid: service_address(dpid) for dpid in network.switches}
    owners = {int(address): dpid for dpid, address in addresses.items()}
    engine = FluidEngine(sim, network, owner_of=owners.get)
    engine.attach()
    return sim, network, routes, engine, addresses, owners


class TestUtilizationMonitor:
    def test_snapshots_fluid_busy_time_on_the_timer(self):
        from repro.te import UtilizationMonitor
        from repro.traffic import DemandSpec, generate_demands

        sim, network, _routes, engine, addresses, _owners = _synthetic_torus()
        monitor = UtilizationMonitor(sim, network, interval=2.0,
                                     pre_sample=engine.reallocate)
        engine.register(generate_demands(
            DemandSpec(model="uniform", count=60, rate_bps=5e7, seed=3),
            addresses))
        monitor.start()
        assert monitor.running
        sim.run(until=sim.now + 7.0)
        assert monitor.samples == 3
        assert monitor.utilization  # every up link got a reading
        assert all(0.0 <= value <= 1.0
                   for value in monitor.utilization.values())
        (node_a, node_b), value = next(iter(monitor.utilization.items()))
        assert monitor.utilization_of(node_b, node_a) == value  # symmetric
        hottest = monitor.hottest(count=3)
        assert hottest == sorted(hottest, key=lambda item: (-item[0], item[1]))
        assert hottest[0][0] > 0.0  # 60 demands really moved bits
        monitor.stop()
        assert not monitor.running


class TestTEExperiment:
    def test_run_te_synthetic_compares_policies(self, tmp_path):
        from dataclasses import replace as dc_replace

        from repro.experiments import render_te_table, run_te, write_te_json
        from repro.scenarios import get
        from repro.traffic import DemandSpec

        spec = get("te-torus-8x8")
        suite = run_te(spec,
                       policies=("none", "static-ecmp", "greedy", "bandit"),
                       demands=DemandSpec(model="uniform", count=80,
                                          rate_bps=5e6, seed=5),
                       te_spec=dc_replace(spec.te, engine="synthetic"),
                       settle=2.0, window=10.0)
        assert suite.healthy
        assert [result.policy for result in suite.results] == \
            ["none", "static-ecmp", "greedy", "bandit"]
        baseline = suite.baseline
        assert baseline.policy == "none"
        assert baseline.delivered_gain == 0.0
        assert baseline.reroutes == 0 and baseline.steers == 0
        for result in suite.results:
            assert result.offered_bits > 0
            assert 0.0 <= result.loss_fraction <= 1.0
            assert result.stretch_p99 >= result.stretch_mean >= 1.0
        rendered = render_te_table(suite)
        for name in ("none", "static-ecmp", "greedy", "bandit"):
            assert name in rendered
        target = write_te_json(suite, tmp_path / "te.json")
        payload = json.loads(target.read_text())
        assert payload["scenario"] == "te-torus-8x8"
        assert payload["engine"] == "synthetic"
        assert len(payload["policies"]) == 4

    def test_run_te_zebra_rides_route_mods(self):
        from repro.experiments import run_te
        from repro.scenarios import ScenarioSpec
        from repro.te import TESpec
        from repro.traffic import DemandSpec

        suite = run_te(
            ScenarioSpec("te-unit-torus", "torus", {"rows": 3, "cols": 3}),
            policies=("none", "greedy"),
            demands=DemandSpec(model="uniform", count=24, rate_bps=2e7,
                               seed=2),
            te_spec=TESpec(policy="greedy", engine="zebra", interval=2.0,
                           threshold=0.0, hot_link="1:2",
                           hot_capacity_scale=0.05, k_paths=4),
            settle=2.0, window=10.0)
        assert suite.healthy and suite.engine == "zebra"
        greedy = suite.result_for("greedy")
        assert greedy.reroutes > 0      # the hot link forced steers
        # Steering happened over the bus, not behind it: the greedy run
        # carries the baseline's RouteMods plus the TE pairs.
        assert greedy.route_mods > suite.baseline.route_mods

    def test_cli_te(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "te.json"
        code = main(["te", "--scenario", "te-torus-8x8",
                     "--policy", "none", "--policy", "greedy",
                     "--demands", "60", "--window", "15",
                     "--settle", "2", "--out", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "greedy" in captured and "vs baseline" in captured
        assert out.exists() and json.loads(out.read_text())["policies"]

    def test_cli_te_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        assert main(["te", "--scenario", "no-such-scenario"]) == 2
        assert "no scenario named" in capsys.readouterr().err
