"""Tests for the experiment result exporters."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.export import (
    write_ablation_csv,
    write_config_time_csv,
    write_config_time_json,
    write_demo_json,
    write_markdown_report,
)
from repro.experiments.results import AblationResult, ConfigTimeResult, DemoResult


@pytest.fixture
def sample_results():
    return [
        ConfigTimeResult(num_switches=4, num_links=4, auto_seconds=33.0,
                         manual_seconds=3600.0, milestones={"ospf_converged": 33.0}),
        ConfigTimeResult(num_switches=8, num_links=8, auto_seconds=53.0,
                         manual_seconds=7200.0, milestones={"ospf_converged": 53.0}),
    ]


@pytest.fixture
def sample_demo():
    return DemoResult(topology_name="pan-european-28", num_switches=28, num_links=42,
                      video_start_seconds=132.6, configuration_seconds=153.0,
                      manual_seconds=25200.0, frames_received=1261, frames_sent=4576,
                      green_timeline=[(5.5, 1), (140.5, 28)],
                      milestones={"ospf_converged": 153.0})


class TestCSVExport:
    def test_config_time_csv(self, tmp_path, sample_results):
        path = write_config_time_csv(sample_results, tmp_path / "fig3.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["switches", "links", "auto_seconds", "manual_seconds", "speedup"]
        assert rows[1][0] == "4" and rows[2][0] == "8"
        assert float(rows[1][2]) == 33.0

    def test_ablation_csv_uses_label_as_header(self, tmp_path):
        results = [AblationResult(label="vm_boot_delay_s", parameter=1.0, auto_seconds=30.0),
                   AblationResult(label="vm_boot_delay_s", parameter=5.0, auto_seconds=93.0)]
        path = write_ablation_csv(results, tmp_path / "a2.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["vm_boot_delay_s", "auto_seconds"]
        assert len(rows) == 3

    def test_empty_ablation_csv(self, tmp_path):
        path = write_ablation_csv([], tmp_path / "empty.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["parameter", "auto_seconds"]]


class TestJSONExport:
    def test_config_time_json_includes_milestones(self, tmp_path, sample_results):
        path = write_config_time_json(sample_results, tmp_path / "fig3.json")
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["milestones"]["ospf_converged"] == 33.0
        assert payload[1]["speedup"] == pytest.approx(7200.0 / 53.0)

    def test_demo_json(self, tmp_path, sample_demo):
        path = write_demo_json(sample_demo, tmp_path / "demo.json")
        payload = json.loads(path.read_text())
        assert payload["switches"] == 28
        assert payload["video_start_seconds"] == 132.6
        assert payload["green_timeline"][0] == [5.5, 1]


class TestMarkdownExport:
    def test_full_report(self, tmp_path, sample_results, sample_demo):
        path = write_markdown_report(sample_results, sample_demo, tmp_path / "report.md")
        text = path.read_text()
        assert "# Measured results" in text
        assert "| 4 | 33.0" in text
        assert "video reached the client" in text
        assert "7.0 h" in text

    def test_report_without_demo(self, tmp_path, sample_results):
        text = write_markdown_report(sample_results, None, tmp_path / "r.md").read_text()
        assert "Demonstration" not in text
        assert "Figure 3" in text
