"""Tests for the LSDB and the SPF computation."""

from __future__ import annotations

import pytest

from repro.net import IPv4Address, IPv4Network
from repro.quagga.ospf import LSDB, RouterLSA, RouterLink, build_router_graph, compute_routes, shortest_paths
from repro.quagga.ospf.constants import MAX_AGE


def rid(index: int) -> IPv4Address:
    return IPv4Address(f"10.0.0.{index}")


def p2p(neighbor: IPv4Address, local_ip: str, metric: int = 10) -> RouterLink:
    return RouterLink.point_to_point(neighbor, IPv4Address(local_ip), metric)


def stub(network: str, plen: int = 30, metric: int = 10) -> RouterLink:
    mask = IPv4Network(f"{network}/{plen}").netmask
    return RouterLink.stub(IPv4Address(network), mask, metric)


def lsa(router: IPv4Address, links, sequence=0x80000001) -> RouterLSA:
    return RouterLSA.originate(router_id=router, sequence=sequence, links=links)


def build_triangle() -> LSDB:
    """Three routers in a triangle, each advertising its two links + stubs."""
    lsdb = LSDB()
    lsdb.install(lsa(rid(1), [p2p(rid(2), "172.16.0.1"), p2p(rid(3), "172.16.0.5"),
                              stub("172.16.0.0"), stub("172.16.0.4"),
                              stub("192.168.1.0", 24)]))
    lsdb.install(lsa(rid(2), [p2p(rid(1), "172.16.0.2"), p2p(rid(3), "172.16.0.9"),
                              stub("172.16.0.0"), stub("172.16.0.8")]))
    lsdb.install(lsa(rid(3), [p2p(rid(1), "172.16.0.6"), p2p(rid(2), "172.16.0.10"),
                              stub("172.16.0.4"), stub("172.16.0.8"),
                              stub("192.168.3.0", 24)]))
    return lsdb


class TestLSDB:
    def test_install_new(self):
        lsdb = LSDB()
        assert lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)])) is True
        assert len(lsdb) == 1
        assert lsdb.router_lsa(rid(1)) is not None

    def test_newer_sequence_replaces(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=1))
        fresh = lsa(rid(1), [stub("10.0.1.0", 24)], sequence=2)
        assert lsdb.install(fresh) is True
        assert lsdb.get(fresh.key).links[0].link_id == IPv4Address("10.0.1.0")

    def test_older_sequence_rejected(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=5))
        assert lsdb.install(lsa(rid(1), [stub("10.0.1.0", 24)], sequence=4)) is False

    def test_missing_or_older_than(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [], sequence=5))
        advertised = [lsa(rid(1), [], sequence=5).header,       # same: not needed
                      lsa(rid(1), [], sequence=9).header,       # newer: needed
                      lsa(rid(2), [], sequence=1).header]       # unknown: needed
        needed = lsdb.missing_or_older_than(advertised)
        assert len(needed) == 2

    def test_remove_from(self):
        lsdb = build_triangle()
        removed = lsdb.remove_from(rid(2))
        assert removed == 1
        assert lsdb.router_lsa(rid(2)) is None
        assert len(lsdb) == 2


class TestLSDBAdvertisingRouterIndex:
    """Regression tests for the by-advertising-router index: router_lsa()
    must stay correct through install/replace/remove, not just on the
    freshly built database the linear scan happened to handle."""

    def test_lookup_among_many_routers(self):
        lsdb = LSDB()
        for index in range(1, 41):
            lsdb.install(lsa(rid(index), [stub(f"10.1.{index}.0", 24)]))
        found = lsdb.router_lsa(rid(23))
        assert found is not None
        assert found.header.advertising_router == rid(23)
        assert lsdb.router_lsa(IPv4Address("10.9.9.9")) is None

    def test_lookup_accepts_address_like_values(self):
        lsdb = build_triangle()
        assert lsdb.router_lsa("10.0.0.1") is not None
        assert lsdb.router_lsa(int(rid(1))) is not None

    def test_index_follows_replacement(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=1))
        fresh = lsa(rid(1), [stub("10.0.1.0", 24)], sequence=2)
        lsdb.install(fresh)
        assert lsdb.router_lsa(rid(1)) is fresh

    def test_index_follows_remove(self):
        lsdb = build_triangle()
        key = lsdb.router_lsa(rid(3)).key
        assert lsdb.remove(key) is True
        assert lsdb.router_lsa(rid(3)) is None
        assert lsdb.router_lsa(rid(1)) is not None

    def test_version_counts_mutations_only(self):
        lsdb = LSDB()
        v0 = lsdb.version
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=5))
        v1 = lsdb.version
        assert v1 > v0
        # A stale install changes nothing and must not bump the version.
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=4))
        assert lsdb.version == v1
        lsdb.remove_from(rid(1))
        assert lsdb.version > v1

    def test_graph_cache_keyed_on_version(self):
        lsdb = build_triangle()
        first = build_router_graph(lsdb)
        assert build_router_graph(lsdb) is first  # unchanged db: cache hit
        lsdb.install(lsa(rid(1), [p2p(rid(2), "172.16.0.1"),
                                  stub("172.16.0.0")], sequence=0x80000002))
        second = build_router_graph(lsdb)
        assert second is not first
        # r1 no longer advertises the r1<->r3 link: the bidirectional check
        # must drop that edge from the rebuilt graph.
        assert int(rid(3)) not in second[int(rid(1))]


class TestMaxAge:
    """RFC 2328 MaxAge enforcement: premature-aging flushes and expiry."""

    def test_maxage_flush_removes_the_stored_copy(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=5))
        flush = RouterLSA.originate(router_id=rid(1), sequence=6, links=[],
                                    age=MAX_AGE)
        assert lsdb.install(flush) is True
        assert lsdb.router_lsa(rid(1)) is None
        assert len(lsdb) == 0

    def test_maxage_lsa_is_not_retained(self):
        lsdb = LSDB()
        flush = RouterLSA.originate(router_id=rid(1), sequence=6, links=[],
                                    age=MAX_AGE)
        # Nothing to supersede: the flush is discarded (and not re-flooded).
        assert lsdb.install(flush) is False
        assert len(lsdb) == 0

    def test_stale_maxage_flush_is_ignored(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)], sequence=7))
        flush = RouterLSA.originate(router_id=rid(1), sequence=6, links=[],
                                    age=MAX_AGE)
        assert lsdb.install(flush) is False
        assert lsdb.router_lsa(rid(1)) is not None

    def test_expire_aged_retires_old_lsas(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [stub("10.0.0.0", 24)]), now=0.0)
        lsdb.install(lsa(rid(2), [stub("10.0.1.0", 24)]), now=3000.0)
        expired = lsdb.expire_aged(now=float(MAX_AGE))
        assert expired == [lsa(rid(1), []).key]
        assert lsdb.router_lsa(rid(1)) is None
        assert lsdb.router_lsa(rid(2)) is not None

    def test_effective_age_includes_origination_age(self):
        lsdb = LSDB()
        aged = RouterLSA.originate(router_id=rid(1), sequence=2,
                                   links=[stub("10.0.0.0", 24)],
                                   age=MAX_AGE - 100)
        lsdb.install(aged, now=0.0)
        assert lsdb.age_of(aged.key, now=50.0) == MAX_AGE - 50
        assert lsdb.expire_aged(now=50.0) == []
        assert lsdb.expire_aged(now=100.0) == [aged.key]

    def test_clockless_installs_accrue_no_residence_age(self):
        lsdb = build_triangle()  # installed without now=
        assert lsdb.expire_aged(now=float(MAX_AGE) * 10) == []
        assert len(lsdb) == 3

    def test_expiry_bumps_the_version_for_spf_caches(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [p2p(rid(2), "172.16.0.1"),
                                  stub("172.16.0.0")]), now=0.0)
        lsdb.install(lsa(rid(2), [p2p(rid(1), "172.16.0.2"),
                                  stub("172.16.0.0")]), now=0.0)
        version = lsdb.version
        assert lsdb.expire_aged(now=float(MAX_AGE)) != []
        assert lsdb.version > version
        assert compute_routes(lsdb, rid(1)) == []


class TestSPF:
    def test_router_graph_requires_bidirectional_links(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(1), [p2p(rid(2), "172.16.0.1")]))
        # Router 2 does not (yet) advertise the link back.
        graph = build_router_graph(lsdb)
        assert graph[int(rid(1))] == {}
        lsdb.install(lsa(rid(2), [p2p(rid(1), "172.16.0.2")]))
        graph = build_router_graph(lsdb)
        assert graph[int(rid(1))] == {int(rid(2)): 10}

    def test_shortest_paths_triangle(self):
        lsdb = build_triangle()
        nodes = shortest_paths(lsdb, rid(1))
        assert nodes[int(rid(1))].distance == 0
        assert nodes[int(rid(2))].distance == 10
        assert nodes[int(rid(3))].distance == 10
        assert nodes[int(rid(2))].first_hop == rid(2)
        assert nodes[int(rid(3))].first_hop == rid(3)

    def test_shortest_paths_prefers_cheaper_two_hop_path(self):
        lsdb = LSDB()
        # 1 -- 2 with cost 100; 1 -- 3 -- 2 with cost 10 + 10.
        lsdb.install(lsa(rid(1), [p2p(rid(2), "172.16.0.1", 100),
                                  p2p(rid(3), "172.16.0.5", 10)]))
        lsdb.install(lsa(rid(2), [p2p(rid(1), "172.16.0.2", 100),
                                  p2p(rid(3), "172.16.0.9", 10)]))
        lsdb.install(lsa(rid(3), [p2p(rid(1), "172.16.0.6", 10),
                                  p2p(rid(2), "172.16.0.10", 10)]))
        nodes = shortest_paths(lsdb, rid(1))
        assert nodes[int(rid(2))].distance == 20
        assert nodes[int(rid(2))].first_hop == rid(3)

    def test_compute_routes_includes_remote_stubs(self):
        lsdb = build_triangle()
        routes = {str(r.prefix): r for r in compute_routes(lsdb, rid(1))}
        assert "192.168.3.0/24" in routes
        remote = routes["192.168.3.0/24"]
        assert remote.first_hop == rid(3)
        assert remote.cost == 20  # 10 to reach router 3 + stub metric 10

    def test_compute_routes_marks_local_stubs(self):
        lsdb = build_triangle()
        routes = {str(r.prefix): r for r in compute_routes(lsdb, rid(1))}
        assert routes["192.168.1.0/24"].first_hop is None

    def test_shared_link_prefix_uses_cheapest_advertiser(self):
        lsdb = build_triangle()
        routes = {str(r.prefix): r for r in compute_routes(lsdb, rid(1))}
        # 172.16.0.8/30 connects routers 2 and 3; both are one hop away.
        assert routes["172.16.0.8/30"].cost == 20

    def test_unreachable_router_stubs_excluded(self):
        lsdb = build_triangle()
        lsdb.install(lsa(rid(9), [stub("10.99.0.0", 24)]))  # isolated router
        routes = {str(r.prefix) for r in compute_routes(lsdb, rid(1))}
        assert "10.99.0.0/24" not in routes

    def test_empty_lsdb(self):
        assert compute_routes(LSDB(), rid(1)) == []

    def test_spf_root_not_in_graph(self):
        lsdb = LSDB()
        lsdb.install(lsa(rid(2), [p2p(rid(3), "172.16.0.1")]))
        nodes = shortest_paths(lsdb, rid(1))
        assert int(rid(1)) in nodes
        assert nodes[int(rid(1))].distance == 0
