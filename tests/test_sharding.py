"""Tests for the sharded control plane and the satellite RFServer fixes
(pending-RouteMod replay, indexed next-hop resolution)."""

from __future__ import annotations

import pytest

from repro.controller import Controller
from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
from repro.experiments.ctlscale import (
    check_load_conservation,
    run_ctlscale,
    write_ctlscale_csv,
    write_ctlscale_json,
)
from repro.experiments.failover import verify_spf_rib_consistency
from repro.net import IPv4Address, IPv4Network
from repro.quagga import InterfaceConfig, generate_zebra_conf
from repro.routeflow import (
    ContiguousPartitioner,
    ExplicitPartitioner,
    HashPartitioner,
    PartitionError,
    RFProxy,
    RFServer,
    RouteMod,
    ShardRole,
    TakeoverAnnouncement,
    make_partitioner,
)
from repro.scenarios import (
    FailureAction,
    FailureEvent,
    FailureSchedule,
    FailureScheduleError,
    ScenarioError,
    ScenarioSpec,
)
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import linear_topology, ring_topology


@pytest.fixture
def sim():
    return Simulator()


# ---------------------------------------------------------------------------
# partitioners
# ---------------------------------------------------------------------------
class TestPartitioners:
    def test_hash_covers_every_shard(self):
        partitioner = HashPartitioner(3)
        shards = {partitioner.shard_for(dpid) for dpid in range(1, 10)}
        assert shards == {0, 1, 2}

    def test_contiguous_blocks_are_contiguous(self):
        partitioner = ContiguousPartitioner(2)
        partitioner.seed([5, 1, 3, 2, 4, 6])
        assignment = {dpid: partitioner.shard_for(dpid) for dpid in range(1, 7)}
        assert assignment == {1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1}

    def test_contiguous_unseeded_dpid_rejected(self):
        partitioner = ContiguousPartitioner(2)
        with pytest.raises(PartitionError, match="seeded universe"):
            partitioner.shard_for(7)

    def test_explicit_map_is_authoritative(self):
        partitioner = ExplicitPartitioner(2, {1: 0, 2: 1, 3: 1})
        assert [partitioner.shard_for(d) for d in (1, 2, 3)] == [0, 1, 1]
        with pytest.raises(PartitionError, match="explicit shard map"):
            partitioner.shard_for(9)
        with pytest.raises(PartitionError, match="misses datapaths"):
            partitioner.seed([1, 2, 3, 4])

    def test_explicit_map_rejects_out_of_range_shards(self):
        with pytest.raises(PartitionError, match="out of range"):
            ExplicitPartitioner(2, {1: 5})

    def test_make_partitioner(self):
        assert isinstance(make_partitioner("hash", 2), HashPartitioner)
        assert isinstance(make_partitioner("contiguous", 2),
                          ContiguousPartitioner)
        assert isinstance(make_partitioner("slice", 2, {1: 0}),
                          ExplicitPartitioner)
        with pytest.raises(PartitionError, match="needs an explicit"):
            make_partitioner("slice", 2)
        with pytest.raises(PartitionError, match="unknown partitioner"):
            make_partitioner("round-robin", 2)


# ---------------------------------------------------------------------------
# satellite fixes on the (single) RFServer
# ---------------------------------------------------------------------------
def build_two_switch_pipeline(sim):
    """Two switches + two VMs, configuration injected directly."""
    controller = Controller(sim, name="rf")
    rfproxy = RFProxy()
    controller.register_app(rfproxy)
    rfserver = RFServer(sim, rfproxy, vm_boot_delay=0.2)
    network = EmulatedNetwork(sim, linear_topology(2))
    network.connect_control_plane(controller.accept_channel, controller)
    for vm_id in (1, 2):
        rfserver.create_vm(vm_id=vm_id, num_ports=2)
    return controller, rfproxy, rfserver, network


class TestPendingRouteMods:
    def test_route_mod_before_gateway_address_is_parked_then_replayed(self, sim):
        """Regression: a RouteMod arriving before the next-hop gateway
        address is assigned must install its flow once the address lands,
        not vanish."""
        controller, rfproxy, rfserver, network = build_two_switch_pipeline(sim)
        rfserver.assign_interface_address(1, "eth1", IPv4Address("172.16.0.1"), 30)
        sim.run(until=1.0)
        mod = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.2.0/24"),
                           next_hop=IPv4Address("172.16.0.2"), interface="eth1")
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=2.0)
        # The next hop (VM 2's eth1) has no address yet: parked, no flow.
        assert len(network.switch(1).flow_table) == 0
        assert rfserver.pending_route_mods == 1
        assert rfserver.route_mods_parked == 1
        # The gateway address arrives (RPC link configuration lands).
        rfserver.assign_interface_address(2, "eth1", IPv4Address("172.16.0.2"), 30)
        sim.run(until=3.0)
        assert rfserver.pending_route_mods == 0
        flows = network.switch(1).flow_table.entries
        assert len(flows) == 1
        assert flows[0].match.nw_dst == IPv4Address("192.168.2.0")

    def test_newer_parked_route_mod_replaces_older(self, sim):
        controller, rfproxy, rfserver, network = build_two_switch_pipeline(sim)
        rfserver.assign_interface_address(1, "eth1", IPv4Address("172.16.0.1"), 30)
        for metric in (10, 20):
            mod = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.2.0/24"),
                               next_hop=IPv4Address("172.16.0.2"),
                               interface="eth1", metric=metric)
            rfserver.receive_route_mod(mod.to_json())
        sim.run(until=1.0)
        assert rfserver.pending_route_mods == 1  # keyed by (vm, prefix)
        rfserver.assign_interface_address(2, "eth1", IPv4Address("172.16.0.2"), 30)
        sim.run(until=2.0)
        installed = rfproxy.flows_on(1)
        assert len(installed) == 1
        assert installed[0].metric == 20  # the newer announcement won

    def test_delete_drops_parked_add(self, sim):
        controller, rfproxy, rfserver, network = build_two_switch_pipeline(sim)
        rfserver.assign_interface_address(1, "eth1", IPv4Address("172.16.0.1"), 30)
        prefix = IPv4Network("192.168.2.0/24")
        add = RouteMod.add(vm_id=1, prefix=prefix,
                           next_hop=IPv4Address("172.16.0.2"), interface="eth1")
        rfserver.receive_route_mod(add.to_json())
        sim.run(until=1.0)
        assert rfserver.pending_route_mods == 1
        rfserver.receive_route_mod(RouteMod.delete(vm_id=1, prefix=prefix).to_json())
        sim.run(until=2.0)
        assert rfserver.pending_route_mods == 0
        rfserver.assign_interface_address(2, "eth1", IPv4Address("172.16.0.2"), 30)
        sim.run(until=3.0)
        assert len(network.switch(1).flow_table) == 0  # nothing resurrected


class TestAddressIndexing:
    def test_zebra_applied_address_is_resolvable_without_assignment(self, sim):
        """Addresses applied through zebra.conf land in the next-hop index
        via the interface address listeners (no linear VM scan)."""
        controller, rfproxy, rfserver, network = build_two_switch_pipeline(sim)
        vm = rfserver.vm(2)
        rfserver.write_config_file(2, "zebra.conf", generate_zebra_conf(
            vm.name, [InterfaceConfig("eth1", IPv4Address("172.16.0.2"), 30)]))
        sim.run(until=1.0)  # boot + config apply
        owner = rfserver.interface_owning_ip(IPv4Address("172.16.0.2"))
        assert owner is not None
        assert owner[0] is vm
        assert owner[1].name == "eth1"

    def test_reassigned_address_drops_stale_index_entry(self, sim):
        controller, rfproxy, rfserver, network = build_two_switch_pipeline(sim)
        vm = rfserver.vm(2)
        sim.run(until=1.0)
        vm.interfaces["eth1"].configure_ip(IPv4Address("172.16.0.2"), 30)
        assert rfserver.interface_owning_ip(IPv4Address("172.16.0.2")) is not None
        vm.interfaces["eth1"].configure_ip(IPv4Address("172.16.0.6"), 30)
        assert rfserver.interface_owning_ip(IPv4Address("172.16.0.2")) is None
        assert rfserver.interface_owning_ip(
            IPv4Address("172.16.0.6"))[1].name == "eth1"


# ---------------------------------------------------------------------------
# sharded convergence
# ---------------------------------------------------------------------------
def configure_ring(num_switches, controllers, partitioner="hash",
                   settle=5.0, **config_kwargs):
    sim = Simulator()
    ipam = IPAddressManager()
    config = FrameworkConfig(detect_edge_ports=False, controllers=controllers,
                             partitioner=partitioner, **config_kwargs)
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, ring_topology(num_switches), ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=1200.0,
                                                   settle=settle)
    return sim, framework, network, configured_at


class TestShardedConvergence:
    def test_two_shards_converge_with_consistent_ribs(self):
        sim, framework, network, configured_at = configure_ring(8, 2)
        assert configured_at is not None
        assert verify_spf_rib_consistency(framework.control_plane) == []
        loads = framework.shard_loads()
        assert len(loads) == 2
        assert sum(load["switches"] for load in loads) == 8
        assert all(load["vms"] == 4 for load in loads)
        # Every switch holds flows, whichever shard owns it.
        for switch in network.switches.values():
            assert len(switch.flow_table) >= 2

    def test_sharding_reduces_configuration_time(self):
        _, _, _, single = configure_ring(8, 1, settle=0.0)
        _, _, _, sharded = configure_ring(8, 4, settle=0.0)
        assert single is not None and sharded is not None
        assert sharded < single  # per-shard VM boot serialisation

    def test_flow_state_is_conserved_across_shard_counts(self):
        spec = ScenarioSpec("tmp-ctlscale-ring8", "ring", {"num_switches": 8})
        results = run_ctlscale(spec, controller_counts=(1, 2, 4))
        assert all(result.configured for result in results)
        assert check_load_conservation(results) == []
        reference = results[0].total_flows
        assert reference > 0
        assert all(result.total_flows == reference for result in results)

    def test_sharded_framework_requires_flowvisor(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="FlowVisor"):
            AutoConfigFramework(sim, config=FrameworkConfig(
                controllers=2, use_flowvisor=False))

    def test_contiguous_partition_keeps_neighbours_together(self):
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        loads = {load["shard"]: load for load in framework.shard_loads()}
        shard0 = framework.shards[0].rfserver.mapping.mapped_datapaths
        shard1 = framework.shards[1].rfserver.mapping.mapped_datapaths
        assert shard0 == [1, 2, 3, 4]
        assert shard1 == [5, 6, 7, 8]
        assert loads[0]["flows_current"] > 0 and loads[1]["flows_current"] > 0

    def test_bus_reports_per_shard_topics(self):
        sim, framework, network, configured_at = configure_ring(8, 2)
        stats = framework.bus.stats()
        for shard in (0, 1):
            assert stats[f"routeflow.route_mods.{shard}"]["delivered"] > 0
            assert stats[f"routeflow.flow_specs.{shard}"]["delivered"] > 0
        assert stats["routeflow.mapping"]["published"] > 0
        assert stats["config.rpc"]["delivered"] > 0


# ---------------------------------------------------------------------------
# shard failure injection
# ---------------------------------------------------------------------------
class TestShardFailure:
    def test_surviving_shards_keep_converging_after_shard_death(self):
        """Kill shard 0 via the failure-injection subsystem, then fail a
        link wholly inside shard 1's partition: shard 1 must reroute its
        switches while the dead shard processes nothing."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        schedule = FailureSchedule((
            FailureEvent(5.0, FailureAction.SHARD_DOWN, 0),
            FailureEvent(10.0, FailureAction.LINK_DOWN, 6, 7),
        ))
        network.schedule_failures(schedule)
        # Mirror physical changes into the virtual topology like the
        # failover harness does (over the port-status bus topic).
        from repro.experiments.failover import _mirror_into_routeflow
        network.add_failure_listener(_mirror_into_routeflow(network,
                                                            framework.bus))
        frozen_route_mods = None
        dead, alive = framework.shards
        sim.run(until=sim.now + 7.0)
        assert dead.failed and not alive.failed
        frozen_route_mods = dead.rfserver.route_mods_received
        flows_before = alive.rfproxy.flows_installed + alive.rfproxy.flows_removed
        sim.run(until=sim.now + 120.0)
        # The dead shard processed nothing after its failure...
        assert dead.rfserver.route_mods_received == frozen_route_mods
        # ...while the surviving shard rerouted its switches...
        assert alive.rfproxy.flows_installed + alive.rfproxy.flows_removed \
            > flows_before
        # ...and every surviving-shard VM's RIB matches a fresh SPF run.
        assert verify_spf_rib_consistency(alive.rfserver) == []

    def test_restored_shard_resumes_processing(self):
        sim, framework, network, configured_at = configure_ring(4, 2)
        plane = framework.control_plane
        plane.fail_shard(1)
        assert framework.shards[1].failed
        plane.restore_shard(1)
        assert not framework.shards[1].failed
        assert framework.shards[1].rfserver.active

    def test_unknown_shard_index_rejected(self):
        sim, framework, network, configured_at = configure_ring(4, 2)
        with pytest.raises(PartitionError, match="no controller shard"):
            framework.control_plane.fail_shard(7)

    def test_failed_shard_does_not_replay_parked_route_mods(self, sim):
        """A fail-stopped shard must not install flows through the parked
        RouteMod replay path (a dead controller mutating switch state)."""
        controller, rfproxy, rfserver, network = build_two_switch_pipeline(sim)
        rfserver.assign_interface_address(1, "eth1", IPv4Address("172.16.0.1"), 30)
        mod = RouteMod.add(vm_id=1, prefix=IPv4Network("192.168.2.0/24"),
                           next_hop=IPv4Address("172.16.0.2"), interface="eth1")
        rfserver.receive_route_mod(mod.to_json())
        sim.run(until=1.0)
        assert rfserver.pending_route_mods == 1
        rfserver.active = False
        assert rfserver.replay_pending_next_hop(IPv4Address("172.16.0.2")) == 0
        assert rfserver.pending_route_mods == 1  # parked, not lost
        assert len(network.switch(1).flow_table) == 0

    def test_schedule_validation_rejects_unknown_shard_up_front(self):
        schedule = FailureSchedule((
            FailureEvent(5.0, FailureAction.SHARD_DOWN, 5),))
        from repro.scenarios import FailureScheduleError
        with pytest.raises(FailureScheduleError, match="no controller shard"):
            schedule.validate_against([1, 2], [(1, 2)], shards=2)
        # Without a shard count (the emulator's view) the event passes.
        schedule.validate_against([1, 2], [(1, 2)])

    def test_replaced_address_is_retracted_from_peer_directories(self):
        """Re-addressing an interface must retract the old entry from the
        cross-shard directory, not leave a stale gateway behind."""
        sim, framework, network, configured_at = configure_ring(
            4, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        vm = framework.shards[0].rfserver.vms[1]
        old_ip = vm.interfaces["eth1"].ip
        assert old_ip is not None
        assert plane.interface_owning_ip(old_ip) is not None
        vm.interfaces["eth1"].configure_ip(IPv4Address("10.99.99.1"), 30)
        assert plane.interface_owning_ip(old_ip) is None
        assert plane.interface_owning_ip(IPv4Address("10.99.99.1")) is not None


# ---------------------------------------------------------------------------
# scenario knob and exports
# ---------------------------------------------------------------------------
class TestControllersKnob:
    def test_scenario_spec_controllers_round_trip(self):
        spec = ScenarioSpec("tmp-c", "ring", {"num_switches": 4}, controllers=3)
        assert spec.framework_config().controllers == 3
        assert ScenarioSpec.from_dict(spec.to_dict()).controllers == 3
        # Default stays out of the archived form.
        assert "controllers" not in ScenarioSpec(
            "tmp-d", "ring", {"num_switches": 4}).to_dict()

    def test_with_controllers_preserves_name(self):
        spec = ScenarioSpec("tmp-c", "ring", {"num_switches": 4})
        copy = spec.with_controllers(2)
        assert copy.name == spec.name
        assert copy.controllers == 2
        assert spec.controllers == 1

    def test_invalid_controllers_rejected(self):
        with pytest.raises(ScenarioError, match="controllers"):
            ScenarioSpec("tmp-c", "ring", {"num_switches": 4}, controllers=0)

    def test_framework_override_of_controllers_rejected(self):
        """framework={'controllers': N} would silently defeat
        with_controllers() and the conservation check."""
        spec = ScenarioSpec("tmp-c", "ring", {"num_switches": 4},
                            framework={"controllers": 2})
        with pytest.raises(ScenarioError, match="ScenarioSpec.controllers"):
            spec.framework_config()

    def test_ctlscale_exports_round_trip(self, tmp_path):
        spec = ScenarioSpec("tmp-ctlscale-ring4", "ring", {"num_switches": 4})
        results = run_ctlscale(spec, controller_counts=(1, 2))
        json_path = write_ctlscale_json(results, tmp_path / "ctl.json")
        csv_path = write_ctlscale_csv(results, tmp_path / "ctl.csv")
        import csv as csv_module
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert [entry["controllers"] for entry in payload] == [1, 2]
        assert payload[1]["total_flows"] == payload[0]["total_flows"]
        assert "routeflow.route_mods.0" in payload[0]["bus_stats"]
        with csv_path.open() as handle:
            rows = list(csv_module.DictReader(handle))
        assert len(rows) == 3  # 1 shard + 2 shards
        assert {row["shard"] for row in rows} == {"0", "1"}
        # Per-shard BGP message counters ride along (zero without BGP).
        for entry in payload:
            for load in entry["shard_loads"]:
                assert load["bgp_updates_sent"] == 0
                assert load["bgp_updates_received"] == 0
        assert all(row["bgp_updates_sent"] == "0" for row in rows)


# ---------------------------------------------------------------------------
# master/standby roles, takeover and live resharding
# ---------------------------------------------------------------------------
class TestTakeoverAndResharding:
    def test_coordinated_failover_preserves_flows(self):
        """A standby adopting a failed master's partition must not drop a
        single installed flow."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        flows_before = sum(len(switch.flow_table)
                           for switch in network.switches.values())
        plane.fail_shard(0)
        assert plane.takeover(0, reason="test") == 1
        sim.run(until=sim.now + 10.0)
        assert plane.takeovers == 1
        assert plane.role_of(0) == ShardRole.FAILED
        assert plane.role_of(1) == ShardRole.MASTER
        assert plane.owned_dpids(0) == []
        assert plane.owned_dpids(1) == [1, 2, 3, 4, 5, 6, 7, 8]
        assert sum(len(switch.flow_table)
                   for switch in network.switches.values()) == flows_before
        assert plane.ownership_violations() == []
        assert plane.orphaned_parked_route_mods() == []
        assert verify_spf_rib_consistency(plane) == []

    def test_adopted_partition_keeps_reconverging(self):
        """After takeover the adopting shard must route around failures
        inside the adopted partition (the datapaths really moved, control
        channels included)."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        from repro.experiments.failover import _mirror_into_routeflow
        network.add_failure_listener(_mirror_into_routeflow(network,
                                                            framework.bus))
        plane.fail_shard(0)
        plane.takeover(0)
        sim.run(until=sim.now + 10.0)
        survivor = framework.shards[1]
        activity_before = (survivor.rfproxy.flows_installed
                          + survivor.rfproxy.flows_removed)
        # Link 2-3 lies wholly inside the partition shard 1 adopted.
        network.apply_failure_event(
            FailureEvent(0.0, FailureAction.LINK_DOWN, 2, 3))
        sim.run(until=sim.now + 120.0)
        assert (survivor.rfproxy.flows_installed
                + survivor.rfproxy.flows_removed) > activity_before
        assert verify_spf_rib_consistency(plane) == []

    def test_failure_detector_triggers_takeover(self):
        """A silently dead master (no coordinated failover event) must be
        detected by heartbeat silence and its partition taken over."""
        sim, framework, network, configured_at = configure_ring(8, 2)
        assert configured_at is not None
        plane = framework.control_plane
        plane.fail_shard(0)
        assert plane.takeovers == 0
        sim.run(until=sim.now + plane.FAILURE_TIMEOUT
                + 2 * plane.HEARTBEAT_INTERVAL + 1.0)
        assert plane.takeovers == 1
        assert plane.owned_dpids(0) == []
        assert plane.ownership_violations() == []

    def test_standby_is_next_live_shard_in_ring_order(self):
        sim, framework, network, configured_at = configure_ring(8, 3)
        assert configured_at is not None
        plane = framework.control_plane
        assert plane.standby_for(0) == 1
        assert plane.standby_for(2) == 0
        plane.fail_shard(1)
        assert plane.standby_for(0) == 2
        assert plane.role_of(1) == ShardRole.FAILED
        plane.takeover(1)
        plane.restore_shard(1)
        # Its partition was taken over, so the restored shard owns
        # nothing: it comes back as a standby.
        assert plane.owned_dpids(1) == []
        assert plane.role_of(1) == ShardRole.STANDBY

    def test_reshard_moves_one_dpid_without_flow_loss(self):
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        flows_before = sum(len(switch.flow_table)
                           for switch in network.switches.values())
        assert plane.reshard(3, 1) is True
        sim.run(until=sim.now + 10.0)
        assert plane.reshards == 1
        assert plane.owner_of(3) == 1
        assert 3 in framework.shards[1].rfserver.mapping.mapped_datapaths
        assert 3 not in framework.shards[0].rfserver.mapping.mapped_datapaths
        assert sum(len(switch.flow_table)
                   for switch in network.switches.values()) == flows_before
        assert plane.ownership_violations() == []
        assert verify_spf_rib_consistency(plane) == []

    def test_reshard_rejects_failed_target_and_self_moves(self):
        sim, framework, network, configured_at = configure_ring(
            4, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        assert plane.reshard(1, 0) is False  # already the owner
        assert plane.reshards == 0
        plane.fail_shard(1)
        with pytest.raises(PartitionError, match="failed"):
            plane.reshard(1, 1)

    def test_takeover_transfers_parked_route_mods_and_blocks_dead_replay(self):
        """Regression: a fail-stopped shard must never install flows via
        parked-RouteMod replay after takeover transfers its partition.
        The parked entry follows its VM to the adopting shard and replays
        there — and only there — once the gateway address lands."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        shard0, shard1 = framework.shards
        gateway = IPv4Address("10.123.45.2")
        mod = RouteMod.add(vm_id=1, prefix=IPv4Network("203.0.113.0/24"),
                           next_hop=gateway, interface="eth1")
        shard0.rfserver.receive_route_mod(mod.to_json())
        sim.run(until=sim.now + 2.0)
        assert shard0.rfserver.pending_route_mods == 1
        plane.fail_shard(0)
        plane.takeover(0)
        sim.run(until=sim.now + 5.0)
        assert shard0.rfserver.pending_route_mods == 0
        assert shard1.rfserver.pending_route_mods == 1
        assert plane.orphaned_parked_route_mods() == []
        dead_installed = shard0.rfproxy.flows_installed
        # The awaited gateway address lands on a VM the adopter now hosts.
        shard1.rfserver.vms[2].interfaces["eth1"].configure_ip(gateway, 30)
        sim.run(until=sim.now + 5.0)
        assert shard1.rfserver.pending_route_mods == 0
        assert (1, "203.0.113.0/24") in shard1.rfproxy.installed_flows
        assert (1, "203.0.113.0/24") not in shard0.rfproxy.installed_flows
        assert shard0.rfproxy.flows_installed == dead_installed


class TestFailureDetectorOnLossyBus:
    def test_takeover_deadline_tracks_heartbeat_channel_delay(self):
        """The detector's deadline is FAILURE_TIMEOUT plus the heartbeat
        channel's latency and worst-case fault delay — exactly the plain
        constant on the default direct, fault-free channel."""
        sim, framework, network, configured_at = configure_ring(4, 2)
        plane = framework.control_plane
        assert plane.effective_failure_timeout == plane.FAILURE_TIMEOUT
        framework.bus.configure_faults("routeflow.heartbeat",
                                       jitter=3.0, reorder=0.2,
                                       reorder_delay=0.5)
        assert plane.effective_failure_timeout == pytest.approx(
            plane.FAILURE_TIMEOUT + 3.5)

    def test_delayed_heartbeats_never_trigger_spurious_takeover(self):
        """Regression: heartbeat jitter close to FAILURE_TIMEOUT itself
        must not look like shard death.  With a 3 s jitter a beat can land
        ~4 s after its predecessor — past the raw 3.5 s constant — but the
        deadline stretches by the channel's worst-case delay, so a
        delayed-but-delivered beat is never mistaken for silence."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, bus_faults={"routeflow.heartbeat": {"jitter": 3.0}},
            bus_fault_seed=7)
        assert configured_at is not None
        plane = framework.control_plane
        assert plane.effective_failure_timeout == pytest.approx(
            plane.FAILURE_TIMEOUT + 3.0)
        sim.run(until=sim.now + 60.0)
        assert plane.takeovers == 0
        assert plane.ownership_violations() == []
        # The detector still works: actual silence past the stretched
        # deadline is declared dead.
        plane.fail_shard(0)
        sim.run(until=sim.now + plane.effective_failure_timeout
                + 2 * plane.HEARTBEAT_INTERVAL + 1.0)
        assert plane.takeovers == 1
        assert plane.owned_dpids(0) == []

    def test_replayed_takeover_announcement_is_fenced(self):
        """A duplicated or delayed TakeoverAnnouncement (lossy bus) must
        not double-count a takeover or roll ownership backwards."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        partition = plane.owned_dpids(0)
        plane.fail_shard(0)
        plane.takeover(0, reason="test")
        sim.run(until=sim.now + 5.0)
        assert plane.takeovers == 1
        owned = plane.owned_dpids(1)
        stale_before = plane.stale_announcements
        replay = TakeoverAnnouncement(
            event=TakeoverAnnouncement.TAKEOVER, from_shard=0, to_shard=1,
            datapaths=list(partition), reason="replay", epoch=1)
        framework.bus.publish("routeflow.mapping", replay.to_json(),
                              sender="plane")
        assert plane.takeovers == 1                  # not double-applied
        assert plane.stale_announcements == stale_before + 1
        assert plane.owned_dpids(1) == owned
        assert plane.ownership_violations() == []

    def test_stale_epoch_cannot_roll_ownership_backwards(self):
        """After a reshard moved a dpid forward under a newer epoch, a
        delayed announcement from an older epoch must not reclaim it."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        assert plane.reshard(3, 1) is True           # epoch 1: dpid 3 -> shard 1
        sim.run(until=sim.now + 5.0)
        assert plane.owner_of(3) == 1
        rollback = TakeoverAnnouncement(
            event=TakeoverAnnouncement.RESHARD, from_shard=1, to_shard=0,
            datapaths=[3], reason="delayed duplicate", epoch=1)
        framework.bus.publish("routeflow.mapping", rollback.to_json(),
                              sender="plane")
        assert plane.owner_of(3) == 1                # still with shard 1
        assert plane.stale_announcements == 1
        assert plane.reshards == 1
        # A genuinely newer epoch still moves it.
        assert plane.reshard(3, 0) is True
        sim.run(until=sim.now + 5.0)
        assert plane.owner_of(3) == 0


class TestReshardEvents:
    def test_reshard_event_requires_target_shard(self):
        with pytest.raises(FailureScheduleError,
                           match="reshard requires a target shard"):
            FailureEvent(1.0, FailureAction.RESHARD, 3)

    def test_reshard_event_describe(self):
        event = FailureEvent(1.0, FailureAction.RESHARD, 3, 1)
        assert event.describe() == "reshard dpid 3 -> shard 1 @ 1s"

    def test_reshard_validation_checks_dpid_and_shard_range(self):
        bad_dpid = FailureSchedule((
            FailureEvent(1.0, FailureAction.RESHARD, 99, 0),))
        with pytest.raises(FailureScheduleError, match="not in"):
            bad_dpid.validate_against([1, 2], [(1, 2)], shards=2)
        bad_shard = FailureSchedule((
            FailureEvent(1.0, FailureAction.RESHARD, 1, 5),))
        with pytest.raises(FailureScheduleError, match="no controller shard"):
            bad_shard.validate_against([1, 2], [(1, 2)], shards=2)
        # The emulator validates without a shard count: the dpid is still
        # checked, the target shard is not its business.
        bad_shard.validate_against([1, 2], [(1, 2)])

    def test_injected_failover_and_reshard_round_trip(self):
        """The failure-injection path (schedule -> emulator -> control
        plane listener) drives both new actions end to end."""
        sim, framework, network, configured_at = configure_ring(
            8, 2, partitioner="contiguous")
        assert configured_at is not None
        plane = framework.control_plane
        schedule = FailureSchedule((
            FailureEvent(5.0, FailureAction.SHARD_FAILOVER, 0),
            FailureEvent(15.0, FailureAction.SHARD_UP, 0),
            FailureEvent(25.0, FailureAction.RESHARD, 5, 0),
        ))
        network.schedule_failures(schedule)
        sim.run(until=sim.now + 40.0)
        assert plane.takeovers == 1
        assert plane.reshards == 1
        assert plane.owner_of(5) == 0
        assert plane.ownership_violations() == []
