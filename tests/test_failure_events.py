"""Tests for the declarative failure subsystem and its emulator execution."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FailureAction,
    FailureEvent,
    FailureSchedule,
    FailureScheduleError,
    ScenarioSpec,
)
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import ring_topology


class TestFailureEvent:
    def test_link_event_requires_two_distinct_endpoints(self):
        with pytest.raises(FailureScheduleError):
            FailureEvent(1.0, FailureAction.LINK_DOWN, 1)
        with pytest.raises(FailureScheduleError):
            FailureEvent(1.0, FailureAction.LINK_DOWN, 2, 2)

    def test_node_event_rejects_a_second_endpoint(self):
        with pytest.raises(FailureScheduleError):
            FailureEvent(1.0, FailureAction.NODE_DOWN, 1, 2)

    def test_rejects_negative_time_and_unknown_action(self):
        with pytest.raises(FailureScheduleError):
            FailureEvent(-1.0, FailureAction.LINK_DOWN, 1, 2)
        with pytest.raises(FailureScheduleError):
            FailureEvent(1.0, "explode", 1, 2)

    def test_round_trips_through_plain_data(self):
        event = FailureEvent(12.5, FailureAction.LINK_DOWN, 3, 7)
        assert FailureEvent.from_dict(event.to_dict()) == event
        node = FailureEvent(1.0, FailureAction.NODE_UP, 4)
        assert FailureEvent.from_dict(node.to_dict()) == node

    def test_describe(self):
        assert FailureEvent(60.0, FailureAction.LINK_DOWN, 1, 2).describe() \
            == "link_down 1<->2 @ 60s"
        assert FailureEvent(5.0, FailureAction.NODE_DOWN, 9).describe() \
            == "node_down 9 @ 5s"


class TestFailureSchedule:
    def test_events_sort_by_time(self):
        schedule = FailureSchedule((
            FailureEvent(30.0, FailureAction.LINK_UP, 1, 2),
            FailureEvent(10.0, FailureAction.LINK_DOWN, 1, 2),
        ))
        assert [e.time for e in schedule] == [10.0, 30.0]
        assert schedule.duration == 30.0

    def test_single_link_failure_constructor(self):
        schedule = FailureSchedule.single_link_failure(1, 2, at=5.0,
                                                       restore_after=20.0)
        assert [e.action for e in schedule] == [FailureAction.LINK_DOWN,
                                                FailureAction.LINK_UP]
        assert schedule.events[1].time == 25.0

    def test_random_churn_is_deterministic_per_seed(self):
        links = [(1, 2), (2, 3), (3, 4), (4, 1)]
        first = FailureSchedule.random_churn(links, failures=5, seed=42)
        again = FailureSchedule.random_churn(links, failures=5, seed=42)
        other = FailureSchedule.random_churn(links, failures=5, seed=43)
        assert first == again
        assert first != other
        assert len(first) == 10  # one down + one up per failure

    def test_random_churn_recovers_before_the_next_failure(self):
        schedule = FailureSchedule.random_churn([(1, 2)], failures=3, seed=0,
                                                spacing=60.0, recovery=30.0)
        downs = [e for e in schedule if e.action == FailureAction.LINK_DOWN]
        ups = [e for e in schedule if e.action == FailureAction.LINK_UP]
        for down, up in zip(downs, ups):
            assert up.time == down.time + 30.0

    def test_random_churn_validation(self):
        with pytest.raises(FailureScheduleError):
            FailureSchedule.random_churn([], failures=1)
        with pytest.raises(FailureScheduleError):
            FailureSchedule.random_churn([(1, 2)], failures=1, spacing=10.0,
                                         recovery=10.0)

    def test_round_trips_through_plain_data(self):
        schedule = FailureSchedule.random_churn([(1, 2), (2, 3)], failures=3,
                                                seed=9)
        assert FailureSchedule.from_list(schedule.to_list()) == schedule

    def test_rides_on_a_scenario_spec(self):
        schedule = FailureSchedule.single_link_failure(1, 2, at=60.0)
        spec = ScenarioSpec("fail-ring", "ring", {"num_switches": 4},
                            failures=schedule)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.failures == schedule
        assert hash(clone) == hash(spec)
        plain = ScenarioSpec.from_dict(
            ScenarioSpec("s", "ring", {"num_switches": 4}).to_dict())
        assert plain.failures is None


class TestEmulatorExecution:
    def build(self):
        sim = Simulator()
        network = EmulatedNetwork(sim, ring_topology(4))
        return sim, network

    def link_between(self, network, node_a, node_b):
        port_a, _ = network.ports_for_link(node_a, node_b)
        return network.switches[node_a].port(port_a).interface.link

    def test_schedule_executes_as_kernel_events(self):
        sim, network = self.build()
        schedule = FailureSchedule.single_link_failure(1, 2, at=10.0,
                                                       restore_after=20.0)
        assert network.schedule_failures(schedule) == 2
        link = self.link_between(network, 1, 2)
        sim.run(until=5.0)
        assert link.up
        sim.run(until=15.0)
        assert not link.up
        sim.run(until=31.0)
        assert link.up
        assert network.failures_applied == 2

    def test_node_down_drops_every_incident_link(self):
        sim, network = self.build()
        network.schedule_failures(FailureSchedule((
            FailureEvent(1.0, FailureAction.NODE_DOWN, 2),
            FailureEvent(2.0, FailureAction.NODE_UP, 2),
        )))
        sim.run(until=1.5)
        incident = [self.link_between(network, a, b)
                    for a, b in network.links_of(2)]
        assert len(incident) == 2
        assert all(not link.up for link in incident)
        other = self.link_between(network, 3, 4)
        assert other.up
        sim.run(until=2.5)
        assert all(link.up for link in incident)

    def test_node_recovery_does_not_resurrect_a_failed_neighbor_link(self):
        sim, network = self.build()
        network.fail_node(2)
        network.fail_node(3)
        network.restore_node(2)
        # 2<->3 must stay down (3 is still failed); 1<->2 comes back.
        assert not self.link_between(network, 2, 3).up
        assert self.link_between(network, 1, 2).up
        network.restore_node(3)
        assert self.link_between(network, 2, 3).up

    def test_node_recovery_does_not_cancel_an_explicit_link_failure(self):
        sim, network = self.build()
        network.fail_link(1, 2)
        network.fail_node(1)
        network.restore_node(1)
        assert not self.link_between(network, 1, 2).up  # still explicitly failed
        network.restore_link(1, 2)
        assert self.link_between(network, 1, 2).up

    def test_schedule_targets_validate_before_arming(self):
        sim, network = self.build()
        with pytest.raises(FailureScheduleError):
            network.schedule_failures(
                FailureSchedule.single_link_failure(1, 9, at=1.0))
        with pytest.raises(FailureScheduleError):
            network.schedule_failures(FailureSchedule((
                FailureEvent(1.0, FailureAction.NODE_DOWN, 99),)))
        assert sim.pending() == 0 or network.failures_applied == 0

    def test_failure_listeners_observe_executed_events(self):
        sim, network = self.build()
        seen = []
        network.add_failure_listener(lambda event: seen.append(event.action))
        network.schedule_failures(FailureSchedule.single_link_failure(
            1, 2, at=1.0, restore_after=1.0))
        sim.run(until=5.0)
        assert seen == [FailureAction.LINK_DOWN, FailureAction.LINK_UP]

    def test_stats_count_drops_on_a_dead_link(self):
        sim, network = self.build()
        link = self.link_between(network, 1, 2)
        iface = link.iface_a
        iface.send(b"x" * 64)
        sim.run(until=0.1)
        before = network.stats()
        assert before["frames_delivered"] >= 1
        link.set_down()
        iface.send(b"y" * 64)
        sim.run(until=0.2)
        after = network.stats()
        assert after["frames_dropped"] == before["frames_dropped"] + 1
        assert after["link_dropped_frames"] == before["link_dropped_frames"] + 1


class TestCarrierNotifications:
    def test_link_state_changes_notify_both_interfaces_once(self):
        sim, network = Simulator(), None
        network = EmulatedNetwork(sim, ring_topology(3))
        port_a, _ = network.ports_for_link(1, 2)
        link = network.switches[1].port(port_a).interface.link
        seen = []
        link.iface_a.add_carrier_listener(
            lambda iface, up: seen.append(("a", up)))
        link.iface_b.add_carrier_listener(
            lambda iface, up: seen.append(("b", up)))
        link.set_down()
        link.set_down()  # idempotent: no duplicate notification
        link.set_up()
        assert seen == [("a", False), ("b", False), ("a", True), ("b", True)]
