"""Tests for the parallel sweep runner and its JSON/CSV export."""

from __future__ import annotations

import pytest

from repro.experiments import (
    expand_seeds,
    read_sweep_csv,
    read_sweep_json,
    render_sweep_table,
    run_scenario,
    run_sweep,
    write_sweep_csv,
    write_sweep_json,
)
from repro.experiments.sweep import SweepResult
from repro.scenarios import ScenarioSpec

#: Small scenarios so the parallel tests stay fast.
FAST_SPECS = [
    ScenarioSpec("sweep-ring", "ring", {"num_switches": 3},
                 framework={"vm_boot_delay": 1.0}, max_time=600.0),
    ScenarioSpec("sweep-star", "star", {"num_leaves": 3},
                 framework={"vm_boot_delay": 1.0}, max_time=600.0),
    ScenarioSpec("sweep-random", "random", {"num_switches": 4}, seed=5,
                 framework={"vm_boot_delay": 1.0}, max_time=600.0),
]


def comparable(results):
    """Everything deterministic about a result (wall clock excluded)."""
    return [(r.scenario, r.family, r.seed, r.num_switches, r.num_links,
             r.auto_seconds, r.manual_seconds, r.milestones) for r in results]


class TestRunScenario:
    def test_configures_and_records_shape(self):
        result = run_scenario(FAST_SPECS[0])
        assert result.scenario == "sweep-ring"
        assert result.configured
        assert result.num_switches == 3
        assert result.auto_seconds > 0
        assert result.manual_seconds == 3 * 15 * 60
        assert "ospf_converged" in result.milestones
        assert result.wall_seconds > 0

    def test_is_deterministic(self):
        assert comparable([run_scenario(FAST_SPECS[2])]) == comparable(
            [run_scenario(FAST_SPECS[2])])


class TestRunSweep:
    def test_accepts_registry_names(self):
        results = run_sweep(["ring-4"])
        assert [r.scenario for r in results] == ["ring-4"]
        assert results[0].configured

    def test_accepts_a_bare_name_or_spec(self):
        assert [r.scenario for r in run_sweep("ring-4")] == ["ring-4"]
        assert [r.scenario for r in run_sweep(FAST_SPECS[0])] == ["sweep-ring"]

    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            run_sweep(["ring-4"], workers=0)

    def test_parallel_matches_serial_in_order(self):
        serial = run_sweep(FAST_SPECS, workers=1)
        parallel = run_sweep(FAST_SPECS, workers=3)
        assert comparable(parallel) == comparable(serial)
        assert [r.scenario for r in parallel] == [s.name for s in FAST_SPECS]

    def test_expand_seeds(self):
        specs = expand_seeds(FAST_SPECS[2], [1, 2])
        assert [s.seed for s in specs] == [1, 2]
        results = run_sweep(specs, workers=2)
        assert [r.scenario for r in results] == ["sweep-random@s1",
                                                "sweep-random@s2"]

    def test_render_table(self):
        results = run_sweep([FAST_SPECS[0]])
        table = render_sweep_table(results)
        assert "sweep-ring" in table
        assert "speedup" in table


class TestSweepExport:
    def test_json_round_trip(self, tmp_path):
        results = run_sweep(FAST_SPECS[:2])
        path = write_sweep_json(results, tmp_path / "sweep.json")
        loaded = read_sweep_json(path)
        assert comparable(loaded) == comparable(results)

    def test_csv_round_trip(self, tmp_path):
        results = run_sweep(FAST_SPECS[:2])
        path = write_sweep_csv(results, tmp_path / "sweep.csv")
        loaded = read_sweep_csv(path)
        # CSV carries no milestones; compare the scalar columns.
        assert [(r.scenario, r.family, r.seed, r.num_switches, r.num_links,
                 r.auto_seconds, r.manual_seconds) for r in loaded] == \
               [(r.scenario, r.family, r.seed, r.num_switches, r.num_links,
                 r.auto_seconds, r.manual_seconds) for r in results]

    def test_csv_preserves_unconfigured_runs(self, tmp_path):
        result = SweepResult(scenario="t", family="ring", seed=0,
                             num_switches=3, num_links=3, auto_seconds=None,
                             manual_seconds=2700.0)
        path = write_sweep_csv([result], tmp_path / "none.csv")
        loaded = read_sweep_csv(path)
        assert loaded[0].auto_seconds is None
        assert loaded[0].speedup is None
