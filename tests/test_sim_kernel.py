"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim import EventLog, PeriodicTask, SeededRandom, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(3.0, order.append, "latest")
        sim.run()
        assert order == ["early", "late", "latest"]

    def test_simultaneous_events_preserve_insertion_order(self, sim):
        order = []
        for label in ("a", "b", "c", "d"):
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_callbacks_can_schedule_more_events(self, sim):
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == 2.0

    def test_kwargs_passed_to_callback(self, sim):
        results = {}
        sim.schedule(1.0, lambda **kw: results.update(kw), value=7)
        sim.run()
        assert results == {"value": 7}

    def test_name_kwarg_reaches_callback(self, sim):
        """``name=`` is a normal callback kwarg, not kernel bookkeeping."""
        results = {}
        sim.schedule(1.0, lambda **kw: results.update(kw), name="alice")
        sim.run()
        assert results == {"name": "alice"}

    def test_name_kwarg_reaches_callback_via_schedule_at(self, sim):
        results = {}
        sim.schedule_at(2.0, lambda **kw: results.update(kw), name="bob", x=1)
        sim.run()
        assert results == {"name": "bob", "x": 1}

    def test_label_names_the_event(self, sim):
        event = sim.schedule(1.0, lambda: None, label="my:event")
        assert event.name == "my:event"
        traced = []
        sim.add_trace_hook(lambda e: traced.append(e.name))
        sim.run()
        assert traced == ["my:event"]

    def test_unlabeled_event_falls_back_to_qualname(self, sim):
        def some_callback():
            pass

        event = sim.schedule(1.0, some_callback)
        assert "some_callback" in event.name


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(10.0, seen.append, 10)
        stopped_at = sim.run(until=5.0)
        assert seen == [1]
        assert stopped_at == 5.0
        assert sim.pending() == 1

    def test_run_until_executes_events_at_boundary(self, sim):
        seen = []
        sim.schedule(5.0, seen.append, "boundary")
        sim.run(until=5.0)
        assert seen == ["boundary"]

    def test_run_resumes_after_until(self, sim):
        seen = []
        sim.schedule(10.0, seen.append, "later")
        sim.run(until=5.0)
        assert seen == []
        sim.run()
        assert seen == ["later"]

    def test_stop_aborts_run(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, seen.append, 3)
        sim.run()
        assert seen == [1]

    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "cancelled")
        sim.schedule(2.0, seen.append, "kept")
        event.cancel()
        sim.run()
        assert seen == ["kept"]

    def test_step_executes_one_event(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        assert sim.step() is True
        assert seen == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events_bounds_execution(self, sim):
        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.run(max_events=25)
        assert sim.processed_events == 25

    def test_peek_reports_next_event_time(self, sim):
        assert sim.peek() is None
        event = sim.schedule(3.0, lambda: None)
        sim.schedule(7.0, lambda: None)
        assert sim.peek() == 3.0
        event.cancel()
        assert sim.peek() == 7.0

    def test_run_until_with_empty_queue_advances_clock(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_trace_hook_sees_events(self, sim):
        traced = []
        sim.add_trace_hook(lambda event: traced.append(event.time))
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert traced == [1.0, 2.0]


class TestKernelInvariants:
    """Invariants the tuple-heap/lazy-cancellation optimization must keep."""

    def test_same_time_fifo_across_schedule_and_schedule_at(self, sim):
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule_at(1.0, order.append, "b")
        sim.schedule(1.0, order.append, "c")
        sim.schedule_at(1.0, order.append, "d")
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_pending_tracks_cancellations(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending() == 10
        for event in events[::2]:
            event.cancel()
        assert sim.pending() == 5
        # Double-cancel must not double-count.
        events[0].cancel()
        assert sim.pending() == 5
        sim.run()
        assert sim.pending() == 0
        assert sim.processed_events == 5

    def test_cancel_after_fire_keeps_pending_consistent(self, sim):
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        fired.cancel()  # already executed; must not affect the queue count
        assert sim.pending() == 1
        sim.run()
        assert sim.processed_events == 2

    def test_peek_skips_cancelled_and_keeps_pending_right(self, sim):
        first = sim.schedule(1.0, lambda: None)
        second = sim.schedule(2.0, lambda: None)
        sim.schedule(3.0, lambda: None)
        first.cancel()
        second.cancel()
        assert sim.peek() == 3.0
        assert sim.pending() == 1
        sim.run()
        assert sim.processed_events == 1

    def test_cancelled_events_do_not_advance_clock(self, sim):
        event = sim.schedule(5.0, lambda: None)
        event.cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.now == 2.0

    def test_step_skips_cancelled(self, sim):
        cancelled = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        assert sim.step() is True
        assert sim.now == 2.0
        assert sim.step() is False


class TestPeriodicTask:
    def test_fires_at_interval(self, sim):
        ticks = []
        task = PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now))
        task.start()
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_fire_immediately(self, sim):
        ticks = []
        task = PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now))
        task.start(fire_immediately=True)
        sim.run(until=5.0)
        assert ticks == [0.0, 2.0, 4.0]

    def test_stop_prevents_future_ticks(self, sim):
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        sim.schedule(3.5, task.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTask(sim, 0.0, lambda: None)

    def test_start_twice_is_idempotent(self, sim):
        ticks = []
        task = PeriodicTask(sim, 1.0, lambda: ticks.append(sim.now))
        task.start()
        task.start()
        sim.run(until=2.5)
        assert ticks == [1.0, 2.0]

    def test_jitter_deterministic_under_fixed_seed(self):
        def run_once() -> list:
            sim = Simulator()
            ticks = []
            task = PeriodicTask(sim, 2.0, lambda: ticks.append(sim.now),
                                jitter=0.5, rng=SeededRandom(42).stream("timer"))
            task.start()
            sim.run(until=30.0)
            return ticks

        first, second = run_once(), run_once()
        assert first == second
        assert len(first) >= 10
        # Jitter actually perturbs the schedule (it isn't silently dropped).
        assert any(abs(t - round(t)) > 1e-9 for t in first)

    def test_callback_exception_does_not_reschedule_forever(self, sim):
        calls = []

        def cb():
            calls.append(sim.now)

        task = PeriodicTask(sim, 1.0, cb)
        task.start()
        sim.run(until=3.0)
        task.stop()
        sim.run(until=10.0)
        assert calls == [1.0, 2.0, 3.0]


class TestEventLog:
    def test_records_are_timestamped(self, sim):
        log = EventLog(sim)
        sim.schedule(4.0, log.record, "test", "hello", detail=1)
        sim.run()
        assert len(log) == 1
        entry = log.entries[0]
        assert entry["time"] == 4.0
        assert entry["category"] == "test"
        assert entry["data"] == {"detail": 1}

    def test_filter_by_category(self, sim):
        log = EventLog(sim)
        log.record("a", "one")
        log.record("b", "two")
        log.record("a", "three")
        assert [e["message"] for e in log.filter("a")] == ["one", "three"]

    def test_last_entry(self, sim):
        log = EventLog(sim)
        assert log.last() is None
        log.record("x", "first")
        log.record("y", "second")
        assert log.last()["message"] == "second"
        assert log.last("x")["message"] == "first"
        assert log.last("missing") is None
