"""Tests for OSPF packet and LSA wire formats."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net import IPv4Address
from repro.net.packet import DecodeError
from repro.quagga.ospf import (
    DBDescriptionPacket,
    HelloPacket,
    LSAHeader,
    LSAckPacket,
    LSRequestPacket,
    LSUpdatePacket,
    OSPFPacket,
    RouterLSA,
    RouterLink,
)
from repro.quagga.ospf.constants import DDFlags, LSAType, RouterLinkType

RID_A = IPv4Address("10.0.0.1")
RID_B = IPv4Address("10.0.0.2")

router_ids = st.integers(min_value=1, max_value=2**32 - 1).map(IPv4Address)


def sample_lsa(router_id=RID_A, sequence=0x80000001) -> RouterLSA:
    links = [
        RouterLink.point_to_point(RID_B, IPv4Address("172.16.0.1"), 10),
        RouterLink.stub(IPv4Address("172.16.0.0"), IPv4Address("255.255.255.252"), 10),
    ]
    return RouterLSA.originate(router_id=router_id, sequence=sequence, links=links)


class TestHello:
    def test_roundtrip(self):
        hello = HelloPacket(router_id=RID_A, network_mask=IPv4Address("255.255.255.252"),
                            hello_interval=10, dead_interval=40,
                            neighbors=[RID_B, IPv4Address("10.0.0.3")])
        decoded = OSPFPacket.decode(hello.encode())
        assert isinstance(decoded, HelloPacket)
        assert decoded.router_id == RID_A
        assert decoded.hello_interval == 10
        assert decoded.dead_interval == 40
        assert decoded.neighbors == [RID_B, IPv4Address("10.0.0.3")]

    def test_empty_neighbor_list(self):
        decoded = OSPFPacket.decode(HelloPacket(RID_A, IPv4Address("255.255.255.0"),
                                                10, 40).encode())
        assert decoded.neighbors == []

    def test_truncated_rejected(self):
        with pytest.raises(DecodeError):
            OSPFPacket.decode(HelloPacket(RID_A, IPv4Address(0), 10, 40).encode()[:20])

    def test_wrong_version_rejected(self):
        raw = bytearray(HelloPacket(RID_A, IPv4Address(0), 10, 40).encode())
        raw[0] = 3
        with pytest.raises(DecodeError):
            OSPFPacket.decode(bytes(raw))

    @given(router_ids, st.integers(min_value=1, max_value=65535),
           st.integers(min_value=1, max_value=2**32 - 1),
           st.lists(router_ids, max_size=8))
    def test_roundtrip_property(self, rid, hello_interval, dead_interval, neighbors):
        packet = HelloPacket(rid, IPv4Address("255.255.255.252"),
                             hello_interval, dead_interval, neighbors)
        decoded = OSPFPacket.decode(packet.encode())
        assert decoded.router_id == rid
        assert decoded.neighbors == neighbors


class TestLSA:
    def test_router_lsa_roundtrip(self):
        lsa = sample_lsa()
        decoded = RouterLSA.decode(lsa.encode())
        assert decoded.header.advertising_router == RID_A
        assert decoded.header.ls_type == LSAType.ROUTER
        assert len(decoded.links) == 2
        assert decoded.links[0].link_type == RouterLinkType.POINT_TO_POINT
        assert decoded.links[1].link_type == RouterLinkType.STUB
        assert decoded.links == lsa.links

    def test_lsa_header_length_field(self):
        lsa = sample_lsa()
        encoded = lsa.encode()
        header = LSAHeader.decode(encoded)
        assert header.length == len(encoded)

    def test_freshness_comparison_by_sequence(self):
        older = sample_lsa(sequence=0x80000001).header
        newer = sample_lsa(sequence=0x80000002).header
        assert newer.is_newer_than(older)
        assert not older.is_newer_than(newer)

    def test_freshness_comparison_by_age_when_sequence_equal(self):
        young = LSAHeader(LSAType.ROUTER, RID_A, RID_A, 5, age=10)
        old = LSAHeader(LSAType.ROUTER, RID_A, RID_A, 5, age=300)
        assert young.is_newer_than(old)

    def test_key_identity(self):
        assert sample_lsa().key == sample_lsa(sequence=0x80000009).key
        assert sample_lsa(RID_A).key != sample_lsa(RID_B).key

    def test_non_router_lsa_rejected(self):
        header = LSAHeader(LSAType.NETWORK, RID_A, RID_A, 1)
        with pytest.raises(DecodeError):
            RouterLSA.decode(header.encode() + b"\x00" * 8)


class TestDatabaseExchangePackets:
    def test_dd_roundtrip(self):
        dd = DBDescriptionPacket(router_id=RID_A, dd_sequence=77,
                                 flags=DDFlags.INIT | DDFlags.MASTER,
                                 lsa_headers=[sample_lsa().header])
        decoded = OSPFPacket.decode(dd.encode())
        assert isinstance(decoded, DBDescriptionPacket)
        assert decoded.dd_sequence == 77
        assert decoded.flags & DDFlags.INIT
        assert len(decoded.lsa_headers) == 1
        assert decoded.lsa_headers[0].key == sample_lsa().key

    def test_ls_request_roundtrip(self):
        request = LSRequestPacket(router_id=RID_A,
                                  requests=[(LSAType.ROUTER, RID_B, RID_B)])
        decoded = OSPFPacket.decode(request.encode())
        assert isinstance(decoded, LSRequestPacket)
        assert decoded.requests == [(LSAType.ROUTER, RID_B, RID_B)]

    def test_ls_update_roundtrip(self):
        update = LSUpdatePacket(router_id=RID_A, lsas=[sample_lsa(), sample_lsa(RID_B)])
        decoded = OSPFPacket.decode(update.encode())
        assert isinstance(decoded, LSUpdatePacket)
        assert len(decoded.lsas) == 2
        assert decoded.lsas[1].header.advertising_router == RID_B

    def test_ls_ack_roundtrip(self):
        ack = LSAckPacket(router_id=RID_A, lsa_headers=[sample_lsa().header,
                                                        sample_lsa(RID_B).header])
        decoded = OSPFPacket.decode(ack.encode())
        assert isinstance(decoded, LSAckPacket)
        assert len(decoded.lsa_headers) == 2

    def test_checksum_present_in_header(self):
        encoded = HelloPacket(RID_A, IPv4Address(0), 10, 40).encode()
        checksum = int.from_bytes(encoded[12:14], "big")
        assert checksum != 0
