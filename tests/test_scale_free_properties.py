"""Property tests for the scale-free AS-graph generator.

Hypothesis drives the pure-graph invariants (connectivity, role and
relationship consistency, provider-DAG acyclicity, seed determinism)
over a range of sizes and seeds; a small end-to-end run then checks the
semantic consequence — every AS path actually received by a BGP speaker
is valley-free under the generated relationships.
"""

import pytest

from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.graph import TopologyError
from repro.topology.generators import (
    BASE_ASN,
    as_map_from_topology,
    scale_free_as_topology,
)

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


graph_params = st.tuples(
    st.integers(min_value=3, max_value=24),     # num_ases
    st.integers(min_value=0, max_value=2**32),  # seed
    st.integers(min_value=1, max_value=3),      # attach
)


def _signature(topology):
    """Everything observable about a generated topology, hashable."""
    return (
        tuple((n.node_id, n.name, n.asn) for n in topology.nodes),
        tuple(sorted((link.node_a, link.node_b) for link in topology.links)),
        tuple(sorted(topology.as_relationships.items())),
        tuple(sorted(topology.as_roles.items())),
    )


class TestScaleFreeGraphProperties:
    @settings(derandomize=True, max_examples=60, deadline=None)
    @given(params=graph_params)
    def test_graph_connected(self, params):
        num_ases, seed, attach = params
        topology = scale_free_as_topology(num_ases, seed=seed, attach=attach)
        assert topology.is_connected()

    @settings(derandomize=True, max_examples=60, deadline=None)
    @given(params=graph_params)
    def test_roles_consistent(self, params):
        num_ases, seed, attach = params
        topology = scale_free_as_topology(num_ases, seed=seed, attach=attach)
        relationships = topology.as_relationships
        roles = topology.as_roles
        assert set(roles) == {BASE_ASN + i for i in range(num_ases)}
        customers_of = {}
        providers_of = {}
        for (asn_a, asn_b), rel in relationships.items():
            # The map stores both directions with the correct inverse.
            inverse = {"customer": "provider", "provider": "customer",
                       "peer": "peer"}[rel]
            assert relationships[(asn_b, asn_a)] == inverse
            if rel == "customer":
                customers_of.setdefault(asn_a, set()).add(asn_b)
            elif rel == "provider":
                providers_of.setdefault(asn_a, set()).add(asn_b)
        for asn, role in roles.items():
            if role == "transit":
                # The peer clique never buys transit.
                assert asn not in providers_of
            elif role == "mid":
                assert asn in customers_of and asn in providers_of
            else:
                assert role == "stub"
                assert asn not in customers_of

    @settings(derandomize=True, max_examples=60, deadline=None)
    @given(params=graph_params)
    def test_provider_relation_acyclic(self, params):
        num_ases, seed, attach = params
        topology = scale_free_as_topology(num_ases, seed=seed, attach=attach)
        for (asn_a, asn_b), rel in topology.as_relationships.items():
            if rel == "provider":
                # Customers always attach to already-present (lower) ASes,
                # so customer->provider edges strictly decrease the index:
                # the provider relation is a DAG by construction.
                assert asn_b < asn_a

    @settings(derandomize=True, max_examples=30, deadline=None)
    @given(params=graph_params)
    def test_seed_determinism(self, params):
        num_ases, seed, attach = params
        first = scale_free_as_topology(num_ases, seed=seed, attach=attach)
        second = scale_free_as_topology(num_ases, seed=seed, attach=attach)
        assert _signature(first) == _signature(second)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(TopologyError):
            scale_free_as_topology(2)
        with pytest.raises(TopologyError):
            scale_free_as_topology(8, attach=0)
        with pytest.raises(TopologyError):
            scale_free_as_topology(8, core_ases=8)


def _valley_free(hops, relationships):
    """Gao-Rexford validity of a propagation chain of ASNs.

    ``hops`` lists the ASes in propagation order (origin first, final
    receiver last).  A path is valley-free when it climbs customer->
    provider edges, crosses at most one peer edge, then only descends
    provider->customer: once a route has gone down or sideways it may
    never go up or sideways again.
    """
    descending = False
    for sender, receiver in zip(hops, hops[1:]):
        rel = relationships[(sender, receiver)]  # receiver, seen by sender
        if rel == "customer":          # sending down to a customer
            descending = True
        elif descending:               # up or sideways after the turn
            return False
        elif rel == "peer":            # the single allowed sideways step
            descending = True
    return True


class TestValleyFreePaths:
    @pytest.fixture(scope="class", params=(1, 2))
    def scale_free_run(self, request):
        topology = scale_free_as_topology(
            8, seed=request.param, attach=2, core_ases=2,
            transit_as_size=2, stub_as_size=1)
        config = FrameworkConfig(
            detect_edge_ports=False, enable_bgp=True,
            as_map=as_map_from_topology(topology),
            as_relationships=topology.as_relationships)
        sim = Simulator()
        ipam = IPAddressManager()
        framework = AutoConfigFramework(sim, config=config, ipam=ipam)
        network = EmulatedNetwork(sim, topology, ipam=ipam)
        framework.attach(network)
        configured = framework.run_until_configured(max_time=900.0)
        assert configured is not None
        sim.run(until=configured + 60.0)
        return topology, framework

    def test_received_paths_are_valley_free(self, scale_free_run):
        topology, framework = scale_free_run
        relationships = topology.as_relationships
        checked = 0
        for vm in framework.control_plane.vms.values():
            daemon = vm.bgp
            if daemon is None:
                continue
            for holders in daemon._adj_in.values():
                for _session, announcement in holders.values():
                    if not announcement.as_path:
                        continue
                    # as_path is most-recent-first; propagation order is
                    # origin ... advertiser, then this speaker.
                    hops = list(reversed(announcement.as_path))
                    hops.append(daemon.local_as)
                    assert _valley_free(hops, relationships), \
                        f"valley in path {hops} at AS {daemon.local_as}"
                    checked += 1
        assert checked > 0

    def test_stubs_never_transit(self, scale_free_run):
        topology, framework = scale_free_run
        stubs = {asn for asn, role in topology.as_roles.items()
                 if role == "stub"}
        for vm in framework.control_plane.vms.values():
            daemon = vm.bgp
            if daemon is None:
                continue
            for holders in daemon._adj_in.values():
                for _session, announcement in holders.values():
                    # A stub AS may originate (appear last) but must never
                    # appear in the middle of a received path.
                    for asn in announcement.as_path[:-1]:
                        assert asn not in stubs, \
                            f"stub AS {asn} transits in {announcement.as_path}"
