"""Seeded property-based chaos harness for the sharded control plane.

Each seed expands deterministically into a randomized churn schedule —
shard kills (exercising the heartbeat failure detector), coordinated
failovers, restores, live resharding, link and node failures — which is
run against a sharded ring and checked against the system invariants at
quiescence:

* **flows conserved** — the installed-flow count returns to the pre-churn
  steady state once every injected failure is repaired;
* **SPF/RIB invariant** — every VM's RIB matches a fresh SPF run;
* **one live master per dpid** — no datapath is orphaned on a failed
  shard or mapped on two shards at once;
* **no orphaned parked RouteMods** — a fail-stopped shard holds nothing
  it could wrongly replay;
* **no flow black-holes** — when the schedule flips a TE policy on and
  off (``te_policy_flip`` ops), every registered traffic commodity is
  routed and delivering at quiescence, even when a policy-driven
  re-route overlapped a link failure.

Shard outages are serialized (at most one shard down at a time, so a
takeover always has a live standby) while physical link/node failures run
on their own timeline and freely overlap the control-plane churn.  Every
outage op carries its own repair, so any subset of ops still restores the
network — which is what lets a failing seed be minimized by greedy delta
debugging over whole ops and reported as the smallest reproducing
schedule.

The seed budget defaults to a handful so the tier-1 run stays fast; the
CI chaos smoke job raises it with the ``CHAOS_SEEDS`` env var.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import pytest

from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager
from repro.experiments.failover import (
    _mirror_into_routeflow,
    verify_spf_rib_consistency,
)
from repro.scenarios import FailureAction, FailureEvent, FailureSchedule
from repro.sim import SeededRandom, Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import ring_topology

#: Seeds exercised by the tier-1 run; CI's nightly-style smoke raises this.
CHAOS_SEEDS = int(os.environ.get("CHAOS_SEEDS", "4"))

#: Number of bus-perturbation ops (fault-profile windows / shard<->plane
#: partitions) mixed into each schedule; 0 keeps the bus lossless.  CI's
#: lossy chaos smoke sets this, which *also* applies :data:`LOSSY_PROFILE`
#: as a standing fault floor for the whole run.
CHAOS_BUS = int(os.environ.get("CHAOS_BUS", "0"))

NUM_SWITCHES = 8
NUM_SHARDS = 3

#: The acceptance fault profile: 5% drop, 2% duplication, reordering and
#: jitter on every control-plane topic (ack topics inherit it too).
LOSSY_PROFILE = {
    "routeflow.*": {"drop": 0.05, "duplicate": 0.02,
                    "reorder": 0.05, "jitter": 0.02},
    "config.rpc": {"drop": 0.05, "duplicate": 0.02,
                   "reorder": 0.05, "jitter": 0.02},
}

#: Quiet seconds after the last FIB change before the run counts as settled.
SETTLE = 15.0

#: Extra simulated time allowed past the schedule horizon before giving up.
MAX_EXTRA = 600.0


# ---------------------------------------------------------------------------
# chaos operations: self-repairing units a schedule is built from
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosOp:
    """One self-contained churn operation (an outage plus its repair).

    Minimization drops whole ops, never single events, so every candidate
    schedule still repairs everything it breaks and the flows-conserved
    invariant stays meaningful.
    """

    kind: str  # shard_kill | shard_failover | reshard | link | node
    #        | bus_degrade | bus_partition | te_policy_flip
    start: float
    duration: float = 0.0
    subject: int = 0  # shard id, dpid, node id, or link endpoint a
    target: int = 0  # reshard target shard, or link endpoint b
    #: bus_degrade fault probabilities, as sorted (key, value) pairs so the
    #: op stays hashable and comparable.
    params: Tuple[Tuple[str, float], ...] = ()

    def events(self) -> List[FailureEvent]:
        end = self.start + self.duration
        if self.kind == "te_policy_flip":
            # TE flips are not failure events: run_chaos arms them on the
            # sim clock directly (flip on at start, back off at end), so
            # they contribute nothing to the failure schedule.
            return []
        if self.kind == "bus_degrade":
            return [FailureEvent(self.start, FailureAction.BUS_DEGRADE, 0,
                                 params=self.params),
                    FailureEvent(end, FailureAction.BUS_HEAL, -1)]
        if self.kind == "bus_partition":
            return [FailureEvent(self.start, FailureAction.BUS_PARTITION,
                                 self.subject),
                    FailureEvent(end, FailureAction.BUS_HEAL, self.subject)]
        if self.kind == "shard_kill":
            return [FailureEvent(self.start, FailureAction.SHARD_DOWN,
                                 self.subject),
                    FailureEvent(end, FailureAction.SHARD_UP, self.subject)]
        if self.kind == "shard_failover":
            return [FailureEvent(self.start, FailureAction.SHARD_FAILOVER,
                                 self.subject),
                    FailureEvent(end, FailureAction.SHARD_UP, self.subject)]
        if self.kind == "reshard":
            return [FailureEvent(self.start, FailureAction.RESHARD,
                                 self.subject, self.target)]
        if self.kind == "link":
            return [FailureEvent(self.start, FailureAction.LINK_DOWN,
                                 self.subject, self.target),
                    FailureEvent(end, FailureAction.LINK_UP,
                                 self.subject, self.target)]
        if self.kind == "node":
            return [FailureEvent(self.start, FailureAction.NODE_DOWN,
                                 self.subject),
                    FailureEvent(end, FailureAction.NODE_UP, self.subject)]
        raise ValueError(f"unknown chaos op kind {self.kind!r}")

    def describe(self) -> str:
        return "; ".join(event.describe() for event in self.events())


def ops_to_schedule(ops: Sequence[ChaosOp]) -> FailureSchedule:
    events: List[FailureEvent] = []
    for op in ops:
        events.extend(op.events())
    return FailureSchedule(tuple(events))


def generate_ops(seed: int, num_shards: int = NUM_SHARDS,
                 nodes: Sequence[int] = (),
                 links: Sequence[Tuple[int, int]] = (),
                 shard_ops: int = 3, reshard_ops: int = 2,
                 net_ops: int = 3, bus_ops: int = 0,
                 te_ops: int = 0) -> List[ChaosOp]:
    """Expand a seed into a churn schedule.  Deterministic in the seed.

    Shard outages are placed back to back on one timeline (at most one
    shard down at a time, so a live standby always exists); reshards
    follow; link/node outages run on a second timeline that overlaps the
    control-plane churn.  Reshard targets may be dead at execution time —
    the control plane rejects those gracefully, and chaos should poke at
    exactly that path.

    ``bus_ops > 0`` adds a third, equally serialized timeline of bus
    perturbations: windows of seeded drop/duplicate/reorder/jitter on
    every control-plane topic, or a shard<->plane partition long enough
    to trigger a spurious takeover.  Serialization matters because a
    ``bus_degrade`` repair heals the *whole* bus, so overlapping windows
    would repair each other and break op-level minimization.

    ``te_ops > 0`` adds a serialized timeline of TE policy flips: a
    greedy policy with threshold 0 (every measured link is "hot", so it
    steers aggressively every tick) switches on at the op's start and
    back off — withdrawing every steer — at its end.  The windows are
    placed to overlap the link/node outage timeline, exercising a
    policy-driven re-route racing a failure.
    """
    rng = SeededRandom(seed)
    node_list = sorted(nodes)
    link_list = sorted(links)
    ops: List[ChaosOp] = []
    when = 5.0
    for _ in range(shard_ops):
        kind = rng.choice(["shard_kill", "shard_failover"])
        victim = rng.choice(range(num_shards))
        duration = rng.uniform(6.0, 15.0)
        ops.append(ChaosOp(kind, when, duration, victim))
        when += duration + rng.uniform(5.0, 10.0)
    for _ in range(reshard_ops):
        ops.append(ChaosOp("reshard", when, 0.0, rng.choice(node_list),
                           rng.choice(range(num_shards))))
        when += rng.uniform(3.0, 8.0)
    when = 8.0
    for _ in range(net_ops):
        duration = rng.uniform(5.0, 15.0)
        if rng.random() < 0.3:
            ops.append(ChaosOp("node", when, duration,
                               rng.choice(node_list)))
        else:
            node_a, node_b = rng.choice(link_list)
            ops.append(ChaosOp("link", when, duration, node_a, node_b))
        when += duration + rng.uniform(4.0, 10.0)
    when = 6.0
    for _ in range(te_ops):
        duration = rng.uniform(8.0, 18.0)
        ops.append(ChaosOp("te_policy_flip", when, duration))
        when += duration + rng.uniform(4.0, 10.0)
    when = 12.0
    for _ in range(bus_ops):
        duration = rng.uniform(6.0, 15.0)
        if rng.random() < 0.5:
            profile = {
                "drop": round(rng.uniform(0.01, 0.06), 3),
                "duplicate": round(rng.uniform(0.0, 0.03), 3),
                "reorder": round(rng.uniform(0.0, 0.1), 3),
                "jitter": round(rng.uniform(0.0, 0.03), 3),
            }
            ops.append(ChaosOp("bus_degrade", when, duration,
                               params=tuple(sorted(profile.items()))))
        else:
            ops.append(ChaosOp("bus_partition", when, duration,
                               rng.choice(range(num_shards))))
        when += duration + rng.uniform(5.0, 10.0)
    return ops


# ---------------------------------------------------------------------------
# runner: one configured ring driven through one schedule
# ---------------------------------------------------------------------------
def run_chaos(ops: Sequence[ChaosOp], num_switches: int = NUM_SWITCHES,
              num_shards: int = NUM_SHARDS,
              bus_faults=None, bus_fault_seed: int = 0) -> List[str]:
    """Run one churn schedule; return every invariant violation (empty ==
    the seed is green).

    ``bus_faults`` applies a standing fault profile from configuration
    onward (pattern -> ChannelFaults params).  Reliable IPC is switched on
    whenever the run is lossy — via the standing profile or via bus ops in
    the schedule — and stays off otherwise, so fault-free chaos runs keep
    exercising the bare bus.
    """
    lossy = bool(bus_faults) or any(
        op.kind in ("bus_degrade", "bus_partition") for op in ops)
    te_windows = sorted((op.start, op.start + op.duration)
                        for op in ops if op.kind == "te_policy_flip")
    sim = Simulator()
    ipam = IPAddressManager()
    config = FrameworkConfig(detect_edge_ports=False, controllers=num_shards,
                             partitioner="hash",
                             advertise_loopbacks=bool(te_windows),
                             bus_faults=dict(bus_faults) if bus_faults else None,
                             bus_fault_seed=bus_fault_seed,
                             reliable_ipc=True if lossy else None)
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, ring_topology(num_switches), ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=1200.0, settle=5.0)
    if configured_at is None:
        return ["network did not reach the configured state before churn"]

    plane = framework.control_plane
    steady = sum(load["flows_current"] for load in framework.shard_loads())
    change_times: List[float] = []
    for vm in plane.vms.values():
        vm.zebra.add_fib_listener(
            lambda prefix, new, old: change_times.append(sim.now))
    network.add_failure_listener(_mirror_into_routeflow(network,
                                                        framework.bus))

    engine = None
    if te_windows:
        from repro.net.addresses import IPv4Network
        from repro.te import (GreedyLeastUtilizedPolicy, TEController,
                              TESpec, ZebraActuator)
        from repro.traffic import DemandSpec, generate_demands
        from repro.traffic.fluid import FluidEngine

        addresses = {dpid: ipam.router_id(dpid)
                     for dpid in network.switches}
        owners = {int(address): dpid for dpid, address in addresses.items()}
        engine = FluidEngine(sim, network, owner_of=owners.get)
        engine.attach()
        actuator = ZebraActuator(
            plane, network,
            prefix_of=lambda dst: IPv4Network((addresses[dst], 32)))
        controller = TEController(
            sim, network, actuator,
            spec=TESpec(interval=2.0, threshold=0.0, k_paths=4),
            engine=engine, owner_of=owners.get)
        controller.start()
        engine.register(generate_demands(
            DemandSpec(model="uniform", count=24, rate_bps=2e6, seed=1),
            addresses))
        for flip_on, flip_off in te_windows:
            sim.schedule(flip_on, controller.set_policy,
                         GreedyLeastUtilizedPolicy(threshold=0.0,
                                                   max_moves=8),
                         label="chaos:te-on")

            def _flip_off(ctl=controller):
                ctl.set_policy(None)
                ctl.clear()

            sim.schedule(flip_off, _flip_off, label="chaos:te-off")

    schedule = ops_to_schedule(ops)
    horizon = sim.now + schedule.duration
    if te_windows:
        horizon = max(horizon, sim.now + te_windows[-1][1])
    if schedule:
        schedule.validate_against(network.switches,
                                  ((a, b) for a, b in network.link_ports),
                                  shards=num_shards)
        network.schedule_failures(schedule)

    settled = False
    deadline = horizon + MAX_EXTRA
    while sim.now < deadline:
        sim.run(until=min(sim.now + 1.0, deadline))
        if sim.now >= max([horizon] + change_times[-1:]) + SETTLE:
            settled = True
            break

    violations: List[str] = []
    if not settled:
        violations.append(
            f"did not settle within {MAX_EXTRA:g}s of the churn horizon")
    final = sum(load["flows_current"] for load in framework.shard_loads())
    if final != steady:
        violations.append(
            f"flows not conserved: steady {steady}, final {final}")
    violations.extend(f"spf/rib: {v}"
                      for v in verify_spf_rib_consistency(plane))
    violations.extend(f"ownership: {v}"
                      for v in plane.ownership_violations())
    violations.extend(f"parked: {v}"
                      for v in plane.orphaned_parked_route_mods())
    if engine is not None:
        engine.reallocate()
        stats = engine.stats()
        if stats["delivered_commodities"] != stats["commodities"]:
            violations.append(
                f"te black-hole: {int(stats['commodities'] - stats['delivered_commodities'])}"
                f"/{int(stats['commodities'])} commodities unrouted at "
                f"quiescence")
    return violations


def minimize_ops(ops: Sequence[ChaosOp], **run_kwargs) -> List[ChaosOp]:
    """Greedy delta debugging over whole ops: repeatedly drop any single
    op whose removal keeps the schedule failing.  ``run_kwargs`` are
    forwarded to :func:`run_chaos` so a lossy run minimizes under the
    same standing fault profile it failed with."""
    current = list(ops)
    shrinking = True
    while shrinking and len(current) > 1:
        shrinking = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            if run_chaos(candidate, **run_kwargs):
                current = candidate
                shrinking = True
                break
    return current


# ---------------------------------------------------------------------------
# the property: every seed's schedule keeps the invariants
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
def test_chaos_schedule_preserves_invariants(seed):
    topology = ring_topology(NUM_SWITCHES)
    nodes = [node.node_id for node in topology.nodes]
    links = [(link.node_a, link.node_b) for link in topology.links]
    ops = generate_ops(seed, nodes=nodes, links=links, bus_ops=CHAOS_BUS,
                       te_ops=1)
    run_kwargs = ({"bus_faults": LOSSY_PROFILE, "bus_fault_seed": seed}
                  if CHAOS_BUS else {})
    violations = run_chaos(ops, **run_kwargs)
    if violations:
        minimized = minimize_ops(ops, **run_kwargs)
        replay = run_chaos(minimized, **run_kwargs)
        pytest.fail(
            f"chaos seed {seed} violated invariants:\n  "
            + "\n  ".join(violations)
            + f"\nminimized to {len(minimized)}/{len(ops)} ops:\n  "
            + "\n  ".join(op.describe() for op in minimized)
            + ("\nviolations on minimized schedule:\n  "
               + "\n  ".join(replay) if replay else ""))


def test_lossy_bus_chaos_fixed_seed():
    """Tier-1 anchor for the lossy-bus path: one fixed seed with bus
    perturbation ops *and* the standing acceptance fault profile (5% drop,
    2% duplication, reordering, jitter) must keep every invariant.  CI's
    lossy chaos smoke widens this to many seeds via CHAOS_BUS/CHAOS_SEEDS.
    """
    topology = ring_topology(NUM_SWITCHES)
    nodes = [node.node_id for node in topology.nodes]
    links = [(link.node_a, link.node_b) for link in topology.links]
    ops = generate_ops(1, nodes=nodes, links=links, bus_ops=2)
    assert run_chaos(ops, bus_faults=LOSSY_PROFILE, bus_fault_seed=1) == []


def test_te_flip_over_link_failure_fixed_seed():
    """Tier-1 anchor for the TE re-route lifecycle under churn: a greedy
    policy flips on over a window that overlaps the link/node outage
    timeline, steers aggressively (threshold 0), then withdraws — and no
    commodity may stay black-holed once everything is repaired.
    """
    topology = ring_topology(NUM_SWITCHES)
    nodes = [node.node_id for node in topology.nodes]
    links = [(link.node_a, link.node_b) for link in topology.links]
    ops = generate_ops(2, nodes=nodes, links=links, te_ops=2)
    assert any(op.kind == "te_policy_flip" for op in ops)
    assert run_chaos(ops) == []


# ---------------------------------------------------------------------------
# generator sanity: the harness itself must be deterministic and balanced
# ---------------------------------------------------------------------------
class TestGenerator:
    def test_deterministic_in_seed(self):
        topology = ring_topology(NUM_SWITCHES)
        nodes = [node.node_id for node in topology.nodes]
        links = [(link.node_a, link.node_b) for link in topology.links]
        first = generate_ops(7, nodes=nodes, links=links, bus_ops=2)
        second = generate_ops(7, nodes=nodes, links=links, bus_ops=2)
        assert first == second
        assert first != generate_ops(8, nodes=nodes, links=links, bus_ops=2)

    def test_every_outage_carries_its_repair(self):
        topology = ring_topology(NUM_SWITCHES)
        nodes = [node.node_id for node in topology.nodes]
        links = [(link.node_a, link.node_b) for link in topology.links]
        for seed in range(20):
            for op in generate_ops(seed, nodes=nodes, links=links, bus_ops=2,
                                   te_ops=2):
                events = op.events()
                if op.kind == "te_policy_flip":
                    # Flips ride the sim clock, not the failure schedule;
                    # the repair is the flip-off at start + duration.
                    assert events == []
                    assert op.duration > 0.0
                elif op.kind == "reshard":
                    assert len(events) == 1
                else:
                    down, up = events
                    assert up.time > down.time
                    assert up.action in (FailureAction.SHARD_UP,
                                         FailureAction.LINK_UP,
                                         FailureAction.NODE_UP,
                                         FailureAction.BUS_HEAL)

    def test_shard_outages_never_overlap(self):
        topology = ring_topology(NUM_SWITCHES)
        nodes = [node.node_id for node in topology.nodes]
        links = [(link.node_a, link.node_b) for link in topology.links]
        for seed in range(20):
            windows = [(op.start, op.start + op.duration)
                       for op in generate_ops(seed, nodes=nodes, links=links)
                       if op.kind in ("shard_kill", "shard_failover")]
            windows.sort()
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                assert next_start > prev_end

    def test_bus_windows_never_overlap(self):
        # A bus_degrade repair heals the whole bus, so two overlapping bus
        # ops would repair each other and op-level minimization would lie.
        topology = ring_topology(NUM_SWITCHES)
        nodes = [node.node_id for node in topology.nodes]
        links = [(link.node_a, link.node_b) for link in topology.links]
        for seed in range(20):
            ops = generate_ops(seed, nodes=nodes, links=links, bus_ops=3)
            windows = [(op.start, op.start + op.duration) for op in ops
                       if op.kind in ("bus_degrade", "bus_partition")]
            assert len(windows) == 3
            windows.sort()
            for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
                assert next_start > prev_end

    def test_bus_ops_expand_to_valid_events(self):
        degrade = ChaosOp("bus_degrade", 5.0, 10.0,
                          params=(("drop", 0.05), ("duplicate", 0.02)))
        down, up = degrade.events()
        assert down.action == FailureAction.BUS_DEGRADE
        assert down.params_dict == {"drop": 0.05, "duplicate": 0.02}
        assert up.action == FailureAction.BUS_HEAL and up.node_a == -1
        partition = ChaosOp("bus_partition", 5.0, 10.0, 2)
        down, up = partition.events()
        assert down.action == FailureAction.BUS_PARTITION
        assert (down.node_a, up.node_a) == (2, 2)
        assert up.action == FailureAction.BUS_HEAL
