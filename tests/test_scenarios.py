"""Tests for the scenario spec and the named-scenario registry."""

from __future__ import annotations

import pickle

import pytest

from repro.core.autoconfig import FrameworkConfig
from repro.scenarios import (
    TOPOLOGY_FAMILIES,
    ScenarioError,
    ScenarioSpec,
    all_scenarios,
    get,
    register,
    resolve,
    scenario_names,
    unregister,
)


class TestScenarioSpec:
    def test_builds_the_named_family(self):
        spec = ScenarioSpec("r", "ring", {"num_switches": 5})
        topology = spec.build_topology()
        assert topology.num_nodes == 5
        assert topology.num_links == 5

    def test_seed_reaches_stochastic_families(self):
        one = ScenarioSpec("w", "waxman", {"num_switches": 12}, seed=7)
        same = ScenarioSpec("w", "waxman", {"num_switches": 12}, seed=7)
        other = one.with_seed(8)
        links = lambda s: {l.canonical() for l in s.build_topology().links}
        assert links(one) == links(same)
        assert links(one) != links(other)
        assert other.name == "w@s8"
        assert other.seed == 8

    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="unknown topology family"):
            ScenarioSpec("x", "moebius", {})

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec("", "ring", {"num_switches": 4})

    def test_bad_generator_parameters_reported(self):
        spec = ScenarioSpec("bad", "ring", {"num_rings": 4})
        with pytest.raises(ScenarioError, match="bad parameters"):
            spec.build_topology()

    def test_framework_overrides(self):
        spec = ScenarioSpec("r", "ring", {"num_switches": 4},
                            framework={"vm_boot_delay": 1.5})
        config = spec.framework_config()
        assert isinstance(config, FrameworkConfig)
        assert config.vm_boot_delay == 1.5
        # Sweeps default to no edge-port detection, like the Figure 3 runs.
        assert config.detect_edge_ports is False

    def test_unknown_framework_field_rejected(self):
        spec = ScenarioSpec("r", "ring", {"num_switches": 4},
                            framework={"warp_speed": True})
        with pytest.raises(ScenarioError, match="unknown FrameworkConfig"):
            spec.framework_config()

    def test_dict_round_trip(self):
        spec = ScenarioSpec("w", "waxman", {"num_switches": 10},
                            framework={"vm_boot_delay": 2.0}, seed=3,
                            max_time=100.0, description="d")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_specs_are_picklable(self):
        spec = ScenarioSpec("t", "torus", {"rows": 3, "cols": 3},
                            framework={"vm_boot_delay": 1.0})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build_topology().num_nodes == 9

    def test_specs_are_deeply_immutable_and_hashable(self):
        spec = ScenarioSpec("t", "ring", {"num_switches": 4})
        with pytest.raises(TypeError):
            spec.params["num_switches"] = 99
        with pytest.raises(TypeError):
            spec.framework["vm_boot_delay"] = 0.0
        assert hash(spec) == hash(ScenarioSpec("t", "ring", {"num_switches": 4}))
        assert spec in {spec}

    def test_every_builtin_family_has_a_builder(self):
        for family in ("ring", "fat-tree", "torus", "waxman", "dumbbell",
                       "pan-european"):
            assert family in TOPOLOGY_FAMILIES


class TestRegistry:
    def test_builtin_catalogue_builds(self):
        names = scenario_names()
        assert "fat-tree-k4" in names
        assert "pan-european" in names
        for spec in all_scenarios():
            topology = spec.build_topology()
            assert topology.is_connected()

    def test_get_and_resolve(self):
        spec = get("torus-4x4")
        assert spec.family == "torus"
        assert [s.name for s in resolve(["ring-4", "waxman-24"])] == [
            "ring-4", "waxman-24"]

    def test_unknown_name_reported(self):
        with pytest.raises(ScenarioError, match="no scenario named"):
            get("does-not-exist")

    def test_duplicate_registration_rejected_unless_replace(self):
        spec = ScenarioSpec("tmp-test-scenario", "ring", {"num_switches": 3})
        register(spec)
        try:
            with pytest.raises(ScenarioError, match="already registered"):
                register(spec)
            replacement = ScenarioSpec("tmp-test-scenario", "ring",
                                       {"num_switches": 4})
            register(replacement, replace=True)
            assert get("tmp-test-scenario").params["num_switches"] == 4
        finally:
            unregister("tmp-test-scenario")
        assert "tmp-test-scenario" not in scenario_names()
