"""Tests for the core framework pieces: IPAM, messages, manual model, GUI."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    ConfigMessage,
    ConfigMessageError,
    ConfigurationGUI,
    EdgePortConfigMessage,
    IPAddressManager,
    IPAMError,
    LinkConfigMessage,
    ManualConfigurationModel,
    SwitchColor,
    SwitchConfigMessage,
    SwitchRemovedMessage,
)
from repro.net import IPv4Address, IPv4Network


class TestIPAM:
    def test_link_allocation_is_a_slash30(self):
        ipam = IPAddressManager()
        allocation = ipam.allocate_link(1, 1, 2, 1)
        assert allocation.network.prefix_len == 30
        assert allocation.address_a in allocation.network
        assert allocation.address_b in allocation.network
        assert allocation.address_a != allocation.address_b

    def test_link_allocation_idempotent_and_direction_independent(self):
        ipam = IPAddressManager()
        forward = ipam.allocate_link(1, 1, 2, 1)
        backward = ipam.allocate_link(2, 1, 1, 1)
        assert forward == backward
        assert ipam.allocated_links == 1

    def test_distinct_links_get_distinct_subnets(self):
        ipam = IPAddressManager()
        nets = {str(ipam.allocate_link(1, p, 2, p).network) for p in range(1, 20)}
        assert len(nets) == 19

    def test_address_a_belongs_to_canonical_lower_end(self):
        ipam = IPAddressManager()
        allocation = ipam.allocate_link(5, 2, 3, 1)
        canonical = IPAddressManager.canonical_link(5, 2, 3, 1)
        assert canonical[0] == 3
        # address_a is for dpid 3, regardless of call order.
        assert ipam.link_allocation(3, 1, 5, 2).address_a == allocation.address_a

    def test_link_range_exhaustion(self):
        ipam = IPAddressManager(link_range="172.16.0.0/29")  # two /30s
        ipam.allocate_link(1, 1, 2, 1)
        ipam.allocate_link(1, 2, 3, 1)
        with pytest.raises(IPAMError):
            ipam.allocate_link(1, 3, 4, 1)

    def test_edge_allocation(self):
        ipam = IPAddressManager()
        allocation = ipam.allocate_edge_port(7, 3)
        assert allocation.network.prefix_len == 24
        assert allocation.gateway == allocation.network.network + 1
        assert ipam.allocate_edge_port(7, 3) == allocation
        assert ipam.allocate_edge_port(7, 4) != allocation
        assert ipam.allocated_edges == 2

    def test_router_ids_unique_and_stable(self):
        ipam = IPAddressManager()
        ids = {str(ipam.router_id(i)) for i in range(1, 100)}
        assert len(ids) == 99
        assert ipam.router_id(5) == ipam.router_id(5)

    def test_router_id_requires_positive_vm_id(self):
        with pytest.raises(IPAMError):
            IPAddressManager().router_id(0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(IPAMError):
            IPAddressManager(link_range="10.0.0.0/31")
        with pytest.raises(IPAMError):
            IPAddressManager(edge_range="10.0.0.0/30")


class TestConfigMessages:
    def test_switch_message_roundtrip(self):
        message = SwitchConfigMessage(switch_id=0x1A, num_ports=4)
        decoded = ConfigMessage.from_json(message.to_json())
        assert isinstance(decoded, SwitchConfigMessage)
        assert decoded.switch_id == 0x1A and decoded.num_ports == 4

    def test_link_message_roundtrip(self):
        message = LinkConfigMessage(dpid_a=1, port_a=2, address_a="172.16.0.1",
                                    dpid_b=3, port_b=1, address_b="172.16.0.2",
                                    prefix_len=30)
        decoded = ConfigMessage.from_json(message.to_json())
        assert isinstance(decoded, LinkConfigMessage)
        assert decoded.address_b == "172.16.0.2"
        assert decoded.prefix_len == 30

    def test_edge_and_removal_roundtrip(self):
        edge = ConfigMessage.from_json(EdgePortConfigMessage(
            datapath_id=9, port_no=3, gateway="192.168.0.1", prefix_len=24).to_json())
        assert isinstance(edge, EdgePortConfigMessage)
        removed = ConfigMessage.from_json(SwitchRemovedMessage(switch_id=9).to_json())
        assert isinstance(removed, SwitchRemovedMessage)

    def test_json_carries_kind_tag(self):
        payload = json.loads(SwitchConfigMessage(switch_id=1, num_ports=2).to_json())
        assert payload["kind"] == "switch_config"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigMessageError):
            ConfigMessage.from_json('{"kind": "mystery"}')

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigMessageError):
            ConfigMessage.from_json("not json at all")

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigMessageError):
            ConfigMessage.from_json('{"kind": "switch_config", "switch_id": 1}')


class TestManualModel:
    def test_defaults_match_paper(self):
        model = ManualConfigurationModel()
        assert model.minutes_per_switch == 15.0
        # The abstract's "typically 7 hours for 28 switches".
        assert model.hours_for(28) == pytest.approx(7.0)

    def test_seconds_and_minutes_consistent(self):
        model = ManualConfigurationModel()
        assert model.seconds_for(4) == model.minutes_for(4) * 60

    def test_breakdown_sums_to_total(self):
        model = ManualConfigurationModel()
        breakdown = model.breakdown_for(10)
        assert breakdown["total"] == pytest.approx(
            breakdown["vm_creation"] + breakdown["interface_mapping"]
            + breakdown["routing_configuration"])

    def test_custom_costs(self):
        model = ManualConfigurationModel(vm_creation_minutes=1,
                                         interface_mapping_minutes=1,
                                         routing_config_minutes=1)
        assert model.minutes_for(10) == 30

    def test_negative_switch_count_rejected(self):
        with pytest.raises(ValueError):
            ManualConfigurationModel().minutes_for(-1)

    def test_zero_switches(self):
        assert ManualConfigurationModel().minutes_for(0) == 0.0


class TestConfigurationGUI:
    def test_switches_start_red(self, sim):
        gui = ConfigurationGUI(sim)
        gui.add_switch(1, "Ghent")
        gui.add_switch(2)
        assert gui.red_switches == [1, 2]
        assert gui.green_switches == []
        assert not gui.all_green

    def test_mark_configured_turns_green(self, sim):
        gui = ConfigurationGUI(sim)
        gui.add_switch(1)
        gui.add_switch(2)
        sim.schedule(5.0, gui.mark_configured, 1)
        sim.schedule(9.0, gui.mark_configured, 2)
        sim.run()
        assert gui.all_green
        assert gui.switches[1].configured_at == 5.0
        assert gui.last_transition_time == 9.0
        assert gui.configuration_timeline() == [(5.0, 1), (9.0, 2)]

    def test_mark_configured_is_idempotent(self, sim):
        gui = ConfigurationGUI(sim)
        gui.add_switch(1)
        gui.mark_configured(1)
        gui.mark_configured(1)
        greens = [t for t in gui.transitions if t[2] == SwitchColor.GREEN]
        assert len(greens) == 1

    def test_mark_unknown_switch_registers_it(self, sim):
        gui = ConfigurationGUI(sim)
        gui.mark_configured(42)
        assert gui.green_switches == [42]

    def test_render_text_marks_green_with_star(self, sim):
        gui = ConfigurationGUI(sim)
        gui.add_switch(1, "Gent")
        gui.add_switch(2, "Brug")
        gui.mark_configured(1)
        text = gui.render_text()
        assert "Gent*" in text
        assert "Brug " in text
        assert "1/2" in text

    def test_dot_output_contains_colors_and_links(self, sim):
        gui = ConfigurationGUI(sim)
        gui.add_switch(1, "A")
        gui.add_switch(2, "B")
        gui.add_link(1, 2)
        gui.mark_configured(2)
        dot = gui.to_dot()
        assert '"A" [fillcolor=red]' in dot
        assert '"B" [fillcolor=green]' in dot
        assert '"A" -- "B";' in dot

    def test_json_output_parses(self, sim):
        gui = ConfigurationGUI(sim)
        gui.add_switch(1, "A")
        gui.mark_configured(1)
        payload = json.loads(gui.to_json())
        assert payload["switches"][0]["color"] == "green"
