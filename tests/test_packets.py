"""Unit and property-based tests for the packet codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    ARP,
    DecodeError,
    Ethernet,
    EtherType,
    ICMP,
    IPProtocol,
    IPv4,
    IPv4Address,
    LLDP,
    LLDP_MULTICAST,
    MACAddress,
    TCP,
    TCPFlags,
    UDP,
    as_bytes,
)

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")

macs = st.integers(min_value=0, max_value=2**48 - 1).map(MACAddress)
ips = st.integers(min_value=0, max_value=2**32 - 1).map(IPv4Address)
ports = st.integers(min_value=0, max_value=65535)
payloads = st.binary(max_size=200)


class TestEthernet:
    def test_roundtrip(self):
        frame = Ethernet(src=MAC_A, dst=MAC_B, ethertype=0x1234, payload=b"hello")
        decoded = Ethernet.decode(frame.encode())
        assert decoded.src == MAC_A
        assert decoded.dst == MAC_B
        assert decoded.ethertype == 0x1234
        assert decoded.payload == b"hello"

    def test_vlan_tag_roundtrip(self):
        frame = Ethernet(src=MAC_A, dst=MAC_B, ethertype=0x0800, payload=b"",
                         vlan=42, vlan_pcp=5)
        decoded = Ethernet.decode(frame.encode())
        assert decoded.vlan == 42
        assert decoded.vlan_pcp == 5
        assert decoded.ethertype == 0x0800

    def test_ipv4_payload_is_decoded(self):
        packet = IPv4(src=IP_A, dst=IP_B, protocol=IPProtocol.UDP,
                      payload=UDP(1000, 2000, b"data"))
        frame = Ethernet(src=MAC_A, dst=MAC_B, ethertype=EtherType.IPV4, payload=packet)
        decoded = Ethernet.decode(frame.encode())
        assert isinstance(decoded.payload, IPv4)
        assert isinstance(decoded.payload.payload, UDP)

    def test_arp_payload_is_decoded(self):
        arp = ARP.request(MAC_A, IP_A, IP_B)
        frame = Ethernet(src=MAC_A, dst=MACAddress.broadcast(),
                         ethertype=EtherType.ARP, payload=arp)
        decoded = Ethernet.decode(frame.encode())
        assert isinstance(decoded.payload, ARP)

    def test_truncated_frame_rejected(self):
        with pytest.raises(DecodeError):
            Ethernet.decode(b"\x00" * 10)

    def test_find_walks_payload_chain(self):
        udp = UDP(5, 6, b"x")
        packet = IPv4(src=IP_A, dst=IP_B, protocol=IPProtocol.UDP, payload=udp)
        frame = Ethernet(src=MAC_A, dst=MAC_B, ethertype=EtherType.IPV4, payload=packet)
        assert frame.find(UDP) is udp
        assert frame.find(ARP) is None

    @given(macs, macs,
           st.integers(min_value=0x0600, max_value=0xFFFF)
           .filter(lambda e: e != EtherType.VLAN),
           payloads)
    def test_roundtrip_property(self, src, dst, ethertype, payload):
        # EtherType.VLAN is excluded: a frame whose ethertype field holds the
        # 802.1Q TPID but carries no tag is malformed by construction, and
        # decode rightly reads the first payload bytes as the tag.
        frame = Ethernet(src=src, dst=dst, ethertype=ethertype, payload=payload)
        decoded = Ethernet.decode(frame.encode())
        assert decoded.src == src and decoded.dst == dst
        assert decoded.ethertype == ethertype
        assert as_bytes(decoded.payload) == payload or isinstance(decoded.payload, object)


class TestARP:
    def test_request_roundtrip(self):
        arp = ARP.request(MAC_A, IP_A, IP_B)
        decoded = ARP.decode(arp.encode())
        assert decoded.opcode == ARP.REQUEST
        assert decoded.sender_mac == MAC_A
        assert decoded.sender_ip == IP_A
        assert decoded.target_ip == IP_B
        assert decoded.target_mac == MACAddress(0)

    def test_reply_roundtrip(self):
        arp = ARP.reply(MAC_B, IP_B, MAC_A, IP_A)
        decoded = ARP.decode(arp.encode())
        assert decoded.opcode == ARP.REPLY
        assert decoded.sender_mac == MAC_B
        assert decoded.target_mac == MAC_A

    def test_short_packet_rejected(self):
        with pytest.raises(DecodeError):
            ARP.decode(b"\x00" * 20)

    def test_non_ethernet_ipv4_rejected(self):
        data = bytearray(ARP.request(MAC_A, IP_A, IP_B).encode())
        data[0:2] = b"\x00\x06"  # unsupported hardware type
        with pytest.raises(DecodeError):
            ARP.decode(bytes(data))


class TestIPv4:
    def test_roundtrip(self):
        packet = IPv4(src=IP_A, dst=IP_B, protocol=200, payload=b"payload", ttl=17, tos=0x10)
        decoded = IPv4.decode(packet.encode())
        assert decoded.src == IP_A and decoded.dst == IP_B
        assert decoded.protocol == 200
        assert decoded.ttl == 17
        assert decoded.tos == 0x10
        assert decoded.payload == b"payload"

    def test_total_length_bounds_payload(self):
        packet = IPv4(src=IP_A, dst=IP_B, protocol=200, payload=b"abc")
        padded = packet.encode() + b"\x00" * 10  # trailing Ethernet padding
        decoded = IPv4.decode(padded)
        assert decoded.payload == b"abc"

    def test_udp_payload_decoded(self):
        packet = IPv4(src=IP_A, dst=IP_B, protocol=IPProtocol.UDP,
                      payload=UDP(1, 2, b"x"))
        decoded = IPv4.decode(packet.encode())
        assert isinstance(decoded.payload, UDP)

    def test_tcp_payload_decoded(self):
        packet = IPv4(src=IP_A, dst=IP_B, protocol=IPProtocol.TCP,
                      payload=TCP(1, 2, flags=TCPFlags.SYN))
        decoded = IPv4.decode(packet.encode())
        assert isinstance(decoded.payload, TCP)

    def test_icmp_payload_decoded(self):
        packet = IPv4(src=IP_A, dst=IP_B, protocol=IPProtocol.ICMP,
                      payload=ICMP.echo_request(1, 1))
        decoded = IPv4.decode(packet.encode())
        assert isinstance(decoded.payload, ICMP)

    def test_checksum_is_valid(self):
        from repro.net.addresses import checksum16

        header = IPv4(src=IP_A, dst=IP_B, protocol=17).encode()[:20]
        assert checksum16(header) == 0

    def test_truncated_rejected(self):
        with pytest.raises(DecodeError):
            IPv4.decode(b"\x45\x00\x00")

    def test_wrong_version_rejected(self):
        data = bytearray(IPv4(src=IP_A, dst=IP_B, protocol=17).encode())
        data[0] = 0x65  # version 6
        with pytest.raises(DecodeError):
            IPv4.decode(bytes(data))

    @given(ips, ips,
           st.integers(min_value=0, max_value=255).filter(
               lambda p: p not in (IPProtocol.ICMP, IPProtocol.TCP,
                                   IPProtocol.UDP, IPProtocol.OSPF)),
           payloads, st.integers(min_value=1, max_value=255))
    def test_roundtrip_property(self, src, dst, protocol, payload, ttl):
        packet = IPv4(src=src, dst=dst, protocol=protocol, payload=payload, ttl=ttl)
        decoded = IPv4.decode(packet.encode())
        assert decoded.src == src and decoded.dst == dst
        assert decoded.protocol == protocol and decoded.ttl == ttl
        assert as_bytes(decoded.payload) == payload


class TestTransport:
    def test_udp_roundtrip(self):
        udp = UDP(src_port=5004, dst_port=5005, payload=b"stream")
        decoded = UDP.decode(udp.encode())
        assert decoded.src_port == 5004
        assert decoded.dst_port == 5005
        assert decoded.payload == b"stream"

    def test_udp_length_field_bounds_payload(self):
        decoded = UDP.decode(UDP(1, 2, b"abcd").encode() + b"\xff\xff")
        assert decoded.payload == b"abcd"

    def test_udp_truncated_rejected(self):
        with pytest.raises(DecodeError):
            UDP.decode(b"\x00\x01")

    def test_tcp_roundtrip(self):
        tcp = TCP(src_port=80, dst_port=12345, seq=1000, ack=2000,
                  flags=TCPFlags.SYN | TCPFlags.ACK, window=500, payload=b"abc")
        decoded = TCP.decode(tcp.encode())
        assert decoded.src_port == 80 and decoded.dst_port == 12345
        assert decoded.seq == 1000 and decoded.ack == 2000
        assert decoded.flags == TCPFlags.SYN | TCPFlags.ACK
        assert decoded.window == 500
        assert decoded.payload == b"abc"

    def test_tcp_truncated_rejected(self):
        with pytest.raises(DecodeError):
            TCP.decode(b"\x00" * 10)

    def test_icmp_echo_roundtrip(self):
        icmp = ICMP.echo_request(identifier=7, sequence=3, data=b"ping")
        decoded = ICMP.decode(icmp.encode())
        assert decoded.icmp_type == ICMP.ECHO_REQUEST
        assert decoded.identifier == 7
        assert decoded.sequence == 3
        assert decoded.payload == b"ping"

    def test_icmp_reply_type(self):
        decoded = ICMP.decode(ICMP.echo_reply(1, 2).encode())
        assert decoded.icmp_type == ICMP.ECHO_REPLY

    @given(ports, ports, payloads)
    def test_udp_roundtrip_property(self, src, dst, payload):
        decoded = UDP.decode(UDP(src, dst, payload).encode())
        assert (decoded.src_port, decoded.dst_port) == (src, dst)
        assert as_bytes(decoded.payload) == payload

    @given(ports, ports, st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=0x3F), payloads)
    def test_tcp_roundtrip_property(self, src, dst, seq, ack, flags, payload):
        decoded = TCP.decode(TCP(src, dst, seq, ack, flags, payload=payload).encode())
        assert (decoded.src_port, decoded.dst_port) == (src, dst)
        assert (decoded.seq, decoded.ack, decoded.flags) == (seq, ack, flags)
        assert as_bytes(decoded.payload) == payload


class TestLLDP:
    def test_roundtrip(self):
        lldp = LLDP(chassis_id=0x1A, port_id=3, ttl=90, system_name="s26")
        decoded = LLDP.decode(lldp.encode())
        assert decoded.chassis_id == 0x1A
        assert decoded.port_id == 3
        assert decoded.ttl == 90
        assert decoded.system_name == "s26"

    def test_within_ethernet(self):
        lldp = LLDP(chassis_id=5, port_id=2)
        frame = Ethernet(src=MAC_A, dst=LLDP_MULTICAST, ethertype=EtherType.LLDP,
                         payload=lldp)
        decoded = Ethernet.decode(frame.encode())
        assert isinstance(decoded.payload, LLDP)
        assert decoded.payload.chassis_id == 5
        assert decoded.payload.port_id == 2

    def test_missing_tlvs_rejected(self):
        with pytest.raises(DecodeError):
            LLDP.decode(b"\x00\x00")

    def test_garbage_chassis_rejected(self):
        # Craft a chassis TLV without the dpid: prefix.
        from repro.net.lldp import LLDPTLVType

        bad = LLDP(chassis_id=1, port_id=1)
        raw = bad._tlv(LLDPTLVType.CHASSIS_ID, b"\x07garbage") + \
            bad._tlv(LLDPTLVType.PORT_ID, b"\x071") + \
            bad._tlv(LLDPTLVType.TTL, b"\x00\x78") + \
            bad._tlv(LLDPTLVType.END, b"")
        with pytest.raises(DecodeError):
            LLDP.decode(raw)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=65535),
           st.integers(min_value=0, max_value=65535))
    def test_roundtrip_property(self, chassis, port, ttl):
        decoded = LLDP.decode(LLDP(chassis_id=chassis, port_id=port, ttl=ttl).encode())
        assert decoded.chassis_id == chassis
        assert decoded.port_id == port
        assert decoded.ttl == ttl
