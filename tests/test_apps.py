"""Tests for the end-host applications (streaming, ping, traffic)."""

from __future__ import annotations

import pytest

from repro.app import (
    ConstantBitRateSource,
    PingApp,
    PoissonSource,
    UDPSink,
    VideoStreamClient,
    VideoStreamServer,
)
from repro.net import Host, IPv4Address, MACAddress, connect


@pytest.fixture
def host_pair(sim):
    """Two hosts on the same subnet wired back-to-back."""
    server = Host(sim, "server", MACAddress.from_local_id(1), IPv4Address("10.0.0.1"),
                  prefix_len=24)
    client = Host(sim, "client", MACAddress.from_local_id(2), IPv4Address("10.0.0.2"),
                  prefix_len=24)
    connect(sim, server.interface, client.interface)
    return server, client


class TestVideoStreaming:
    def test_stream_reaches_client(self, sim, host_pair):
        server_host, client_host = host_pair
        server = VideoStreamServer(sim, server_host, client_ip=client_host.ip,
                                   frame_rate=10.0, frame_size=400)
        client = VideoStreamClient(sim, client_host, server_ip=server_host.ip)
        server.start()
        client.start()
        sim.run(until=5.0)
        assert server.frames_sent >= 40
        assert client.stats.frames_received > 0
        assert client.video_started
        # Back-to-back hosts: the first frame arrives almost immediately.
        assert client.time_to_first_frame < 1.0
        assert client.stats.mean_latency < 0.1

    def test_receiver_reports_reach_server(self, sim, host_pair):
        server_host, client_host = host_pair
        server = VideoStreamServer(sim, server_host, client_ip=client_host.ip)
        client = VideoStreamClient(sim, client_host, server_ip=server_host.ip,
                                   report_interval=1.0)
        server.start()
        client.start()
        sim.run(until=5.0)
        assert client.reports_sent >= 4
        assert server.reports_received > 0

    def test_loss_accounting_when_path_comes_up_late(self, sim, host_pair):
        server_host, client_host = host_pair
        link = server_host.interface.link
        link.set_down()
        server = VideoStreamServer(sim, server_host, client_ip=client_host.ip,
                                   frame_rate=10.0)
        client = VideoStreamClient(sim, client_host, server_ip=server_host.ip)
        server.start()
        client.start()
        sim.schedule(3.0, link.set_up)
        sim.run(until=6.0)
        assert client.video_started
        assert client.time_to_first_frame >= 3.0
        # Everything sent while the link was down never arrived.
        assert client.stats.frames_received < server.frames_sent

    def test_frames_from_unexpected_source_ignored(self, sim, host_pair):
        server_host, client_host = host_pair
        client = VideoStreamClient(sim, client_host,
                                   server_ip=IPv4Address("10.0.0.99"))
        server = VideoStreamServer(sim, server_host, client_ip=client_host.ip)
        server.start()
        client.start()
        sim.run(until=2.0)
        assert not client.video_started

    def test_stop_halts_stream(self, sim, host_pair):
        server_host, client_host = host_pair
        server = VideoStreamServer(sim, server_host, client_ip=client_host.ip,
                                   frame_rate=10.0)
        server.start()
        sim.run(until=1.0)
        server.stop()
        sent = server.frames_sent
        sim.run(until=3.0)
        assert server.frames_sent == sent


class TestPing:
    def test_ping_measures_rtt(self, sim, host_pair):
        source, target = host_pair
        app = PingApp(sim, source, target.ip, interval=0.5)
        app.start()
        sim.run(until=5.0)
        stats = app.finish()
        assert stats.sent >= 9
        assert stats.received >= stats.sent - 1
        assert stats.loss_ratio < 0.2
        assert 0 < stats.mean_rtt < 0.1
        assert stats.first_reply_time is not None

    def test_ping_to_unreachable_target_records_loss(self, sim, host_pair):
        source, _ = host_pair
        app = PingApp(sim, source, IPv4Address("10.0.0.200"), interval=0.5)
        app.start()
        sim.run(until=3.0)
        stats = app.finish()
        assert stats.sent > 0
        assert stats.received == 0
        assert stats.loss_ratio == 1.0


class TestTrafficGenerators:
    def test_cbr_source_and_sink(self, sim, host_pair):
        source_host, sink_host = host_pair
        sink = UDPSink(sim, sink_host, port=7000)
        source = ConstantBitRateSource(sim, source_host, sink_host.ip, port=7000,
                                       rate_pps=20.0, payload_size=256)
        source.start()
        sim.run(until=2.0)
        source.stop()
        assert source.packets_sent >= 39
        assert sink.stats.packets >= 38
        assert sink.stats.bytes == sink.stats.packets * 256
        assert sink.stats.first_arrival is not None
        assert sink.stats.last_arrival >= sink.stats.first_arrival

    def test_poisson_source_rate_is_approximate(self, sim, host_pair):
        source_host, sink_host = host_pair
        sink = UDPSink(sim, sink_host, port=7001)
        source = PoissonSource(sim, source_host, sink_host.ip, port=7001,
                               mean_rate_pps=50.0, seed=1)
        source.start()
        sim.run(until=10.0)
        source.stop()
        # ~500 expected; allow generous slack for the stochastic process.
        assert 300 < source.packets_sent < 700
        assert sink.stats.packets > 0

    def test_poisson_reproducible_with_seed(self, sim):
        host_a = Host(sim, "a", MACAddress.from_local_id(5), IPv4Address("10.1.0.1"))
        host_b = Host(sim, "b", MACAddress.from_local_id(6), IPv4Address("10.1.0.2"))
        connect(sim, host_a.interface, host_b.interface)
        first = PoissonSource(sim, host_a, host_b.ip, port=1, mean_rate_pps=10, seed=9)
        first.start()
        sim.run(until=5.0)
        count_first = first.packets_sent

        from repro.sim import Simulator

        sim2 = Simulator()
        host_c = Host(sim2, "c", MACAddress.from_local_id(7), IPv4Address("10.1.0.3"))
        host_d = Host(sim2, "d", MACAddress.from_local_id(8), IPv4Address("10.1.0.4"))
        connect(sim2, host_c.interface, host_d.interface)
        second = PoissonSource(sim2, host_c, host_d.ip, port=1, mean_rate_pps=10, seed=9)
        second.start()
        sim2.run(until=5.0)
        assert second.packets_sent == count_first
