"""Unit and property-based tests for address types."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    AddressError,
    IPv4Address,
    IPv4Network,
    MACAddress,
    checksum16,
)


class TestMACAddress:
    def test_parse_and_render(self):
        mac = MACAddress("00:11:22:aa:bb:cc")
        assert str(mac) == "00:11:22:aa:bb:cc"
        assert int(mac) == 0x001122AABBCC

    def test_dash_separator_accepted(self):
        assert MACAddress("00-11-22-aa-bb-cc") == MACAddress("00:11:22:aa:bb:cc")

    def test_from_bytes_roundtrip(self):
        mac = MACAddress(b"\x02\x00\x00\x00\x00\x01")
        assert mac.packed == b"\x02\x00\x00\x00\x00\x01"

    def test_from_int(self):
        assert str(MACAddress(1)) == "00:00:00:00:00:01"

    def test_broadcast(self):
        assert MACAddress.broadcast().is_broadcast
        assert MACAddress("ff:ff:ff:ff:ff:ff").is_broadcast
        assert not MACAddress("00:00:00:00:00:01").is_broadcast

    def test_multicast_bit(self):
        assert MACAddress("01:00:5e:00:00:05").is_multicast
        assert not MACAddress("02:00:00:00:00:05").is_multicast

    def test_equality_across_representations(self):
        assert MACAddress("00:00:00:00:00:0a") == "00:00:00:00:00:0a"
        assert MACAddress("00:00:00:00:00:0a") == 10

    def test_ordering(self):
        assert MACAddress(1) < MACAddress(2)

    def test_from_local_id_is_deterministic_and_local(self):
        mac_a = MACAddress.from_local_id(5, 1)
        mac_b = MACAddress.from_local_id(5, 1)
        assert mac_a == mac_b
        assert not mac_a.is_multicast
        assert (int(mac_a) >> 40) & 0x02  # locally administered bit

    @pytest.mark.parametrize("bad", ["", "00:11:22", "zz:11:22:33:44:55",
                                     "00:11:22:33:44:55:66", "300:11:22:33:44:55"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            MACAddress(bad)

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(AddressError):
            MACAddress(b"\x00\x01")

    def test_usable_as_dict_key(self):
        table = {MACAddress("00:00:00:00:00:01"): "a"}
        assert table[MACAddress(1)] == "a"

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_int_roundtrip_property(self, value):
        assert int(MACAddress(value)) == value
        assert MACAddress(str(MACAddress(value))) == MACAddress(value)


class TestIPv4Address:
    def test_parse_and_render(self):
        address = IPv4Address("192.168.1.10")
        assert str(address) == "192.168.1.10"
        assert int(address) == 0xC0A8010A

    def test_from_bytes(self):
        assert str(IPv4Address(b"\x0a\x00\x00\x01")) == "10.0.0.1"

    def test_addition(self):
        assert IPv4Address("10.0.0.1") + 5 == IPv4Address("10.0.0.6")

    def test_classification(self):
        assert IPv4Address("0.0.0.0").is_unspecified
        assert IPv4Address("127.0.0.1").is_loopback
        assert IPv4Address("224.0.0.5").is_multicast
        assert IPv4Address("255.255.255.255").is_broadcast
        assert not IPv4Address("10.0.0.1").is_multicast

    @pytest.mark.parametrize("bad", ["", "10.0.0", "10.0.0.256", "10.0.0.0.1",
                                     "a.b.c.d", "10.-1.0.0"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_ordering_and_hash(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert len({IPv4Address("10.0.0.1"), IPv4Address("10.0.0.1")}) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_int_roundtrip_property(self, value):
        assert int(IPv4Address(value)) == value
        assert IPv4Address(str(IPv4Address(value))) == IPv4Address(value)


class TestIPv4Network:
    def test_parse_cidr(self):
        network = IPv4Network("10.1.2.0/24")
        assert str(network) == "10.1.2.0/24"
        assert network.prefix_len == 24
        assert str(network.netmask) == "255.255.255.0"

    def test_host_bits_are_masked_off(self):
        network = IPv4Network("10.1.2.99/24")
        assert str(network.network) == "10.1.2.0"

    def test_contains(self):
        network = IPv4Network("172.16.4.0/30")
        assert IPv4Address("172.16.4.1") in network
        assert IPv4Address("172.16.4.2") in network
        assert IPv4Address("172.16.5.1") not in network

    def test_broadcast_and_size(self):
        network = IPv4Network("10.0.0.0/30")
        assert str(network.broadcast) == "10.0.0.3"
        assert network.num_addresses == 4

    def test_hosts_excludes_network_and_broadcast(self):
        hosts = list(IPv4Network("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_hosts_for_point_to_point_31(self):
        hosts = list(IPv4Network("10.0.0.0/31").hosts())
        assert len(hosts) == 2

    def test_subnets(self):
        subnets = list(IPv4Network("10.0.0.0/24").subnets(26))
        assert len(subnets) == 4
        assert str(subnets[1]) == "10.0.0.64/26"

    def test_subnets_invalid_prefix(self):
        with pytest.raises(AddressError):
            list(IPv4Network("10.0.0.0/24").subnets(23))

    def test_requires_prefix(self):
        with pytest.raises(AddressError):
            IPv4Network("10.0.0.0")

    def test_prefix_out_of_range(self):
        with pytest.raises(AddressError):
            IPv4Network("10.0.0.0/33")

    def test_equality_and_hash(self):
        assert IPv4Network("10.0.0.0/24") == IPv4Network("10.0.0.5/24")
        assert len({IPv4Network("10.0.0.0/24"), IPv4Network("10.0.0.0/24")}) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=32))
    def test_membership_of_own_network_address(self, base, prefix_len):
        network = IPv4Network((IPv4Address(base), prefix_len))
        assert network.network in network


class TestChecksum:
    def test_known_value(self):
        # Example from RFC 1071 section 3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert checksum16(data) == ~0xDDF2 & 0xFFFF

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")

    def test_verification_property(self):
        data = b"hello checksum world"
        csum = checksum16(data)
        # Folding the checksum back in yields zero.
        import struct
        assert checksum16(data + struct.pack("!H", csum)) == 0
