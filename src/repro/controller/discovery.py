"""LLDP-based topology discovery (the NOX "Discovery" module of the paper).

The application periodically emits an LLDP frame out of every port of every
connected switch via PACKET_OUT.  When such a frame re-enters the control
plane as a PACKET_IN on a *different* switch, the application has witnessed
a unidirectional link (src dpid/port → dst dpid/port).  Links that stop
being refreshed for ``link_timeout`` seconds are declared dead.

Observers register callbacks for switch and link discovery; the paper's
topology controller uses those callbacks to drive the RPC configuration
messages towards RouteFlow.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.net.addresses import MACAddress
from repro.net.ethernet import Ethernet, EtherType
from repro.net.lldp import LLDP, LLDP_MULTICAST
from repro.net.packet import DecodeError
from repro.controller.base import ControllerApp, DatapathConnection
from repro.openflow.constants import OFPPort
from repro.openflow.messages import PacketIn, PortStatus
from repro.sim import PeriodicTask

LOG = logging.getLogger(__name__)

#: Callback invoked when a new switch joins: ``f(datapath_id, port_numbers)``.
SwitchCallback = Callable[[int, List[int]], None]
#: Callback invoked on link discovery/loss: ``f(DiscoveredLink)``.
LinkCallback = Callable[["DiscoveredLink"], None]


@dataclass(frozen=True)
class DiscoveredLink:
    """A unidirectional link learned from an LLDP frame."""

    src_dpid: int
    src_port: int
    dst_dpid: int
    dst_port: int

    def reversed(self) -> "DiscoveredLink":
        return DiscoveredLink(self.dst_dpid, self.dst_port, self.src_dpid, self.src_port)

    def canonical(self) -> Tuple[int, int, int, int]:
        """Direction-independent identity of the physical link."""
        forward = (self.src_dpid, self.src_port, self.dst_dpid, self.dst_port)
        backward = (self.dst_dpid, self.dst_port, self.src_dpid, self.src_port)
        return min(forward, backward)

    def __str__(self) -> str:
        return (f"{self.src_dpid:#x}:{self.src_port} -> "
                f"{self.dst_dpid:#x}:{self.dst_port}")


class TopologyDiscovery(ControllerApp):
    """Periodic LLDP probing and link inference."""

    def __init__(self, probe_interval: float = 5.0, link_timeout: float = 15.0,
                 send_initial_burst: bool = True) -> None:
        super().__init__(name="topology-discovery")
        self.probe_interval = probe_interval
        self.link_timeout = link_timeout
        self.send_initial_burst = send_initial_burst
        self.switches: Dict[int, DatapathConnection] = {}
        #: directional link -> last time an LLDP refresh was seen
        self.links: Dict[DiscoveredLink, float] = {}
        self._switch_callbacks: List[SwitchCallback] = []
        self._switch_lost_callbacks: List[Callable[[int], None]] = []
        self._link_up_callbacks: List[LinkCallback] = []
        self._link_down_callbacks: List[LinkCallback] = []
        self._probe_task: Optional[PeriodicTask] = None
        self._expiry_task: Optional[PeriodicTask] = None
        # Counters
        self.lldp_sent = 0
        self.lldp_received = 0

    # -------------------------------------------------------------- observers
    def on_switch_discovered(self, callback: SwitchCallback) -> None:
        self._switch_callbacks.append(callback)

    def on_switch_lost(self, callback: Callable[[int], None]) -> None:
        """Register a callback fired when a switch's connection goes away."""
        self._switch_lost_callbacks.append(callback)

    def on_link_discovered(self, callback: LinkCallback) -> None:
        self._link_up_callbacks.append(callback)

    def on_link_lost(self, callback: LinkCallback) -> None:
        self._link_down_callbacks.append(callback)

    # ------------------------------------------------------------- lifecycle
    def started(self, controller) -> None:
        sim = controller.sim
        self._probe_task = PeriodicTask(sim, self.probe_interval, self._probe_all,
                                        name="discovery:probe")
        self._probe_task.start()
        self._expiry_task = PeriodicTask(sim, self.link_timeout / 3.0,
                                         self._expire_links, name="discovery:expire")
        self._expiry_task.start()

    def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.stop()
        if self._expiry_task is not None:
            self._expiry_task.stop()

    # ----------------------------------------------------------- switch events
    def on_datapath_join(self, connection: DatapathConnection) -> None:
        dpid = connection.datapath_id
        self.switches[dpid] = connection
        ports = sorted(connection.ports)
        LOG.info("discovery: switch %#x joined (ports %s)", dpid, ports)
        for callback in self._switch_callbacks:
            callback(dpid, ports)
        if self.send_initial_burst:
            self._probe_switch(connection)

    def on_datapath_leave(self, connection: DatapathConnection) -> None:
        dpid = connection.datapath_id
        if dpid is None:
            return
        self.switches.pop(dpid, None)
        dead = [link for link in self.links if link.src_dpid == dpid or link.dst_dpid == dpid]
        for link in dead:
            del self.links[link]
            for callback in self._link_down_callbacks:
                callback(link)
        for callback in self._switch_lost_callbacks:
            callback(dpid)

    def on_port_status(self, connection: DatapathConnection, message: PortStatus) -> None:
        # A port change may invalidate links through that port; let the normal
        # timeout handle removal, but probe quickly to re-learn fresh state.
        if connection.datapath_id in self.switches:
            self._probe_switch(connection)

    # -------------------------------------------------------------- LLDP TX
    def _probe_all(self) -> None:
        for connection in list(self.switches.values()):
            self._probe_switch(connection)

    def _probe_switch(self, connection: DatapathConnection) -> None:
        dpid = connection.datapath_id
        if dpid is None:
            return
        for port_no, port in sorted(connection.ports.items()):
            if port_no >= OFPPort.MAX:
                continue
            frame = self._build_lldp(dpid, port_no, port.hw_addr)
            connection.send_packet_out(frame, out_port=port_no)
            self.lldp_sent += 1

    @staticmethod
    def _build_lldp(dpid: int, port_no: int, hw_addr: MACAddress) -> bytes:
        lldp = LLDP(chassis_id=dpid, port_id=port_no)
        frame = Ethernet(src=hw_addr, dst=LLDP_MULTICAST,
                         ethertype=EtherType.LLDP, payload=lldp)
        return frame.encode()

    # -------------------------------------------------------------- LLDP RX
    def on_packet_in(self, connection: DatapathConnection, message: PacketIn) -> None:
        try:
            frame = Ethernet.decode(message.data)
        except DecodeError:
            return
        if frame.ethertype != EtherType.LLDP or not isinstance(frame.payload, LLDP):
            return
        lldp = frame.payload
        self.lldp_received += 1
        dst_dpid = connection.datapath_id
        if dst_dpid is None or lldp.chassis_id == dst_dpid:
            return
        link = DiscoveredLink(src_dpid=lldp.chassis_id, src_port=lldp.port_id,
                              dst_dpid=dst_dpid, dst_port=message.in_port)
        is_new = link not in self.links
        self.links[link] = self.controller.sim.now
        if is_new:
            LOG.info("discovery: link %s", link)
            for callback in self._link_up_callbacks:
                callback(link)

    # ---------------------------------------------------------------- expiry
    def _expire_links(self) -> None:
        now = self.controller.sim.now
        dead = [link for link, seen in self.links.items()
                if now - seen > self.link_timeout]
        for link in dead:
            del self.links[link]
            LOG.info("discovery: link lost %s", link)
            for callback in self._link_down_callbacks:
                callback(link)

    # ------------------------------------------------------------- inventory
    @property
    def bidirectional_links(self) -> Set[Tuple[int, int, int, int]]:
        """Canonical (dpid_a, port_a, dpid_b, port_b) tuples seen in either direction."""
        return {link.canonical() for link in self.links}

    def topology_snapshot(self) -> Dict[str, object]:
        """A serialisable snapshot of switches and links (used by the GUI)."""
        return {
            "switches": sorted(self.switches),
            "links": sorted(self.bidirectional_links),
        }
