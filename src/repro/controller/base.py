"""OpenFlow controller framework.

A :class:`Controller` owns one control-channel connection per datapath
(behind FlowVisor each of those connections is actually a slice of the real
switch connection, but the controller cannot tell the difference).  For
every connection it drives the OpenFlow handshake and then dispatches
events — datapath join/leave, packet-in, port-status — to the registered
:class:`ControllerApp` instances, in registration order.

This mirrors the structure of NOX/POX-era controllers that the paper's
framework builds on: the topology-discovery module and the RouteFlow proxy
are both apps on top of this base.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional

from repro.net.packet import DecodeError
from repro.openflow.channel import ControlChannel
from repro.openflow.constants import OFP_NO_BUFFER, OFPPort
from repro.openflow.actions import Action, OutputAction
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PhyPort,
    PortStatus,
)
from repro.sim import Simulator

LOG = logging.getLogger(__name__)


class DatapathConnection:
    """The controller-side state of one switch connection."""

    def __init__(self, controller: "Controller", channel: ControlChannel) -> None:
        self.controller = controller
        self.channel = channel
        self.datapath_id: Optional[int] = None
        self.ports: Dict[int, PhyPort] = {}
        self.handshake_complete = False
        self.connect_time: Optional[float] = None
        self._next_xid = 1

    def take_xid(self) -> int:
        xid = self._next_xid
        self._next_xid += 1
        return xid

    # ------------------------------------------------------------- send APIs
    def send(self, message: OpenFlowMessage) -> None:
        """Encode and transmit a message towards the switch."""
        self.channel.send(self.controller, message.encode())

    def send_packet_out(self, data: bytes, out_port: int,
                        in_port: int = OFPPort.NONE) -> None:
        """Inject a packet into the datapath out of a specific port."""
        message = PacketOut(buffer_id=OFP_NO_BUFFER, in_port=in_port,
                            actions=[OutputAction(out_port)], data=data,
                            xid=self.take_xid())
        self.send(message)

    def send_flow_mod(self, match: Match, actions: List[Action],
                      command: int = 0, priority: int = 0x8000,
                      idle_timeout: int = 0, hard_timeout: int = 0,
                      cookie: int = 0, buffer_id: int = OFP_NO_BUFFER) -> None:
        """Install / modify / delete a flow entry on the datapath."""
        message = FlowMod(match=match, command=command, actions=actions,
                          priority=priority, idle_timeout=idle_timeout,
                          hard_timeout=hard_timeout, cookie=cookie,
                          buffer_id=buffer_id, xid=self.take_xid())
        self.send(message)

    def send_barrier(self) -> None:
        self.send(BarrierRequest(xid=self.take_xid()))

    def __repr__(self) -> str:
        dpid = f"{self.datapath_id:#x}" if self.datapath_id is not None else "?"
        return f"<DatapathConnection dpid={dpid} ports={len(self.ports)}>"


class ControllerApp:
    """Base class for controller applications.

    Subclasses override whichever handlers they care about.  Handlers are
    invoked synchronously in simulated time by the owning controller.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.controller: Optional["Controller"] = None

    def started(self, controller: "Controller") -> None:
        """Called once when the app is registered with a controller."""

    def on_datapath_join(self, connection: DatapathConnection) -> None:
        """A switch completed the OpenFlow handshake."""

    def on_datapath_leave(self, connection: DatapathConnection) -> None:
        """A switch connection closed."""

    def on_packet_in(self, connection: DatapathConnection, message: PacketIn) -> None:
        """A PACKET_IN arrived from a switch."""

    def on_port_status(self, connection: DatapathConnection, message: PortStatus) -> None:
        """A PORT_STATUS arrived from a switch."""

    def on_flow_removed(self, connection: DatapathConnection, message: FlowRemoved) -> None:
        """A FLOW_REMOVED arrived from a switch."""

    def on_error(self, connection: DatapathConnection, message: ErrorMessage) -> None:
        """An ERROR arrived from a switch."""


class Controller:
    """An OpenFlow controller hosting one or more applications."""

    #: Controller-side processing latency applied to each handled message.
    PROCESSING_DELAY = 0.0005
    #: Interval of the liveness echo towards each connected switch.
    ECHO_INTERVAL = 15.0

    def __init__(self, sim: Simulator, name: str = "controller") -> None:
        self.sim = sim
        self.name = name
        self._handle_label = f"{self.name}:handle"
        self.apps: List[ControllerApp] = []
        self.connections: Dict[ControlChannel, DatapathConnection] = {}
        self.datapaths: Dict[int, DatapathConnection] = {}
        # Counters
        self.packet_in_count = 0
        self.messages_received = 0

    # ------------------------------------------------------------------ apps
    def register_app(self, app: ControllerApp) -> ControllerApp:
        """Register an application; events reach apps in registration order."""
        app.controller = self
        self.apps.append(app)
        app.started(self)
        return app

    def app(self, app_type: type) -> Optional[ControllerApp]:
        """Find a registered app by type."""
        for candidate in self.apps:
            if isinstance(candidate, app_type):
                return candidate
        return None

    # ----------------------------------------------------------- connections
    def accept_channel(self, channel: ControlChannel) -> DatapathConnection:
        """Attach a new switch-facing channel (called by the emulator/FlowVisor)."""
        connection = DatapathConnection(self, channel)
        self.connections[channel] = connection
        # Controller initiates its half of the handshake.
        connection.send(Hello(xid=connection.take_xid()))
        connection.send(FeaturesRequest(xid=connection.take_xid()))
        return connection

    def connection_for(self, datapath_id: int) -> Optional[DatapathConnection]:
        return self.datapaths.get(datapath_id)

    @property
    def connected_datapaths(self) -> List[int]:
        return sorted(self.datapaths)

    # -------------------------------------------------------- channel events
    def channel_receive(self, channel: ControlChannel, data: bytes) -> None:
        connection = self.connections.get(channel)
        if connection is None:
            LOG.warning("%s: message on unknown channel", self.name)
            return
        self.messages_received += 1
        self.sim.schedule(self.PROCESSING_DELAY, self._handle, connection, data,
                          label=self._handle_label)

    def channel_closed(self, channel: ControlChannel) -> None:
        connection = self.connections.pop(channel, None)
        if connection is None:
            return
        if connection.datapath_id is not None:
            self.datapaths.pop(connection.datapath_id, None)
        for app in self.apps:
            app.on_datapath_leave(connection)

    # -------------------------------------------------------------- dispatch
    def _handle(self, connection: DatapathConnection, data: bytes) -> None:
        try:
            message = OpenFlowMessage.decode(data)
        except DecodeError as exc:
            LOG.warning("%s: cannot decode message from switch: %s", self.name, exc)
            return
        if isinstance(message, Hello):
            return
        if isinstance(message, EchoRequest):
            connection.send(EchoReply(data=message.data, xid=message.xid))
            return
        if isinstance(message, FeaturesReply):
            self._complete_handshake(connection, message)
            return
        if isinstance(message, PacketIn):
            self.packet_in_count += 1
            for app in self.apps:
                app.on_packet_in(connection, message)
            return
        if isinstance(message, PortStatus):
            self._update_port(connection, message)
            for app in self.apps:
                app.on_port_status(connection, message)
            return
        if isinstance(message, FlowRemoved):
            for app in self.apps:
                app.on_flow_removed(connection, message)
            return
        if isinstance(message, ErrorMessage):
            for app in self.apps:
                app.on_error(connection, message)
            return
        LOG.debug("%s: unhandled message %r", self.name, message)

    def _complete_handshake(self, connection: DatapathConnection,
                            message: FeaturesReply) -> None:
        connection.datapath_id = message.datapath_id
        connection.ports = {port.port_no: port for port in message.ports
                            if port.port_no < OFPPort.MAX}
        connection.handshake_complete = True
        connection.connect_time = self.sim.now
        self.datapaths[message.datapath_id] = connection
        LOG.info("%s: datapath %#x joined with %d ports",
                 self.name, message.datapath_id, len(connection.ports))
        for app in self.apps:
            app.on_datapath_join(connection)

    def _update_port(self, connection: DatapathConnection, message: PortStatus) -> None:
        from repro.openflow.constants import OFPPortReason

        port = message.port
        if message.reason == OFPPortReason.DELETE:
            connection.ports.pop(port.port_no, None)
        else:
            connection.ports[port.port_no] = port

    def __repr__(self) -> str:
        return f"<Controller {self.name} datapaths={len(self.datapaths)} apps={len(self.apps)}>"
