"""Controller framework and the LLDP topology-discovery application."""

from repro.controller.base import Controller, ControllerApp, DatapathConnection
from repro.controller.discovery import DiscoveredLink, TopologyDiscovery

__all__ = [
    "Controller",
    "ControllerApp",
    "DatapathConnection",
    "DiscoveredLink",
    "TopologyDiscovery",
]
