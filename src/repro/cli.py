"""Command-line interface for the reproduction.

Exposes the experiments as subcommands so the paper's figures can be
regenerated without writing any Python:

* ``repro quickstart [--switches N]`` — auto-configure a ring and show the
  milestones, GUI and one routing table.
* ``repro fig3 [--sizes 4 8 ...]`` — the Figure 3 configuration-time sweep.
* ``repro demo`` — the §3 pan-European video demonstration.
* ``repro manual [--switches N]`` — the manual-configuration cost model.
* ``repro ablation {split,vm-latency,ospf-timers}`` — the design ablations.
* ``repro sweep --scenario NAME [--workers N] [--out FILE]`` — run named
  scenarios from the registry in parallel and export the results.
* ``repro failover --scenario NAME [--link-down A:B@T ...] [--churn N]`` —
  inject a failure schedule after configuration and report reconvergence
  time and frames lost per failure.
* ``repro ctlscale --scenario NAME [--controllers 1 2 4]`` — configure the
  scenario under several controller-shard counts and report per-shard
  control-plane load, convergence time and the load-conservation check.
* ``repro interdomain --scenario NAME [--no-flap] [--flap-link A:B]`` —
  configure a multi-AS BGP scenario, verify redistribution and AS-path
  sanity, and flap an eBGP border link to exercise the withdrawal and
  re-advertisement lifecycle.
* ``repro traffic --scenario NAME [--demands N] [--model uniform|gravity]``
  — run a seeded demand set through the fluid fast path and report
  delivered throughput, loss and per-link utilization.
* ``repro te --scenario NAME [--policy none|static-ecmp|greedy|bandit]`` —
  run the same demand set once per traffic-engineering policy and compare
  delivered throughput, loss, path stretch and re-route counts against
  the shortest-path baseline.
* ``repro bench [--json FILE] [--check BASELINE] [--filter GLOB]`` — the
  hot-path benchmark suite, with machine-readable output and a
  perf-regression gate.

Also reachable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import AutoConfigFramework, FrameworkConfig, IPAddressManager, ManualConfigurationModel
from repro.experiments import (
    check_load_conservation,
    check_regressions,
    format_table,
    render_ctlscale_churn,
    render_ctlscale_table,
    run_ctlscale,
    run_ctlscale_churn,
    write_ctlscale_churn_json,
    write_ctlscale_csv,
    write_ctlscale_json,
    read_bench_json,
    render_bench_table,
    run_benchmarks,
    write_bench_json,
    render_ablation_table,
    render_config_time_table,
    render_demo_report,
    render_failover_table,
    render_interdomain_table,
    render_sweep_table,
    render_te_table,
    render_traffic_table,
    run_config_time_sweep,
    run_controller_split_ablation,
    run_demo,
    run_failover_suite,
    run_interdomain,
    run_ospf_timer_ablation,
    run_sweep,
    run_te,
    run_traffic_suite,
    run_vm_latency_ablation,
    write_failover_csv,
    write_failover_json,
    write_interdomain_csv,
    write_interdomain_json,
    write_sweep_csv,
    write_sweep_json,
    write_te_json,
    write_traffic_json,
)
from repro.experiments.ctlscale import DEFAULT_CONTROLLER_COUNTS
from repro.experiments.te import DEFAULT_POLICIES
from repro.traffic import DEMAND_MODELS, DemandSpec
from repro.scenarios import (
    FailureAction,
    FailureEvent,
    FailureSchedule,
    FailureScheduleError,
    ScenarioError,
    all_scenarios,
    get as get_scenario,
    scenario_names,
)
from repro.topology.graph import TopologyError
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import ring_topology


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Automatic Configuration of Routing "
                    "Control Platforms in OpenFlow Networks' (SIGCOMM 2013)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser(
        "quickstart", help="auto-configure a ring topology and show the result")
    quickstart.add_argument("--switches", type=int, default=4,
                            help="number of switches in the ring (default: 4)")
    quickstart.add_argument("--vm-boot-delay", type=float, default=5.0,
                            help="per-VM clone/boot latency in seconds")

    fig3 = subparsers.add_parser(
        "fig3", help="Figure 3: automatic vs manual configuration time sweep")
    fig3.add_argument("--sizes", type=int, nargs="+",
                      default=[4, 8, 12, 16, 20, 24, 28],
                      help="ring sizes to sweep")

    subparsers.add_parser(
        "demo", help="the paper's demo: video over the 28-node pan-European network")

    manual = subparsers.add_parser(
        "manual", help="the manual-configuration cost model")
    manual.add_argument("--switches", type=int, default=28)

    ablation = subparsers.add_parser(
        "ablation", help="design ablations (A1-A3)")
    ablation.add_argument("which", choices=["split", "vm-latency", "ospf-timers"])

    sweep = subparsers.add_parser(
        "sweep", help="run named scenarios from the registry, optionally in "
                      "parallel across processes")
    sweep.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="scenario to run (repeatable); use --list to see "
                            "the catalogue, --all to run every scenario")
    sweep.add_argument("--all", action="store_true", dest="run_all",
                       help="run every registered scenario")
    sweep.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list the registered scenarios and exit")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default: 1 = serial)")
    sweep.add_argument("--controllers", type=int, default=None, metavar="N",
                       help="override every scenario's controller-shard "
                            "count for this sweep")
    sweep.add_argument("--out", metavar="FILE",
                       help="write results as JSON to FILE")
    sweep.add_argument("--csv", metavar="FILE",
                       help="write results as CSV to FILE")

    failover = subparsers.add_parser(
        "failover", help="configure a scenario, inject link/node failures "
                         "and report reconvergence time and frames lost per "
                         "failure")
    failover.add_argument("--scenario", action="append", default=None,
                          metavar="NAME", required=True,
                          help="registry scenario to run (repeatable)")
    failover.add_argument("--link-down", action="append", default=[],
                          metavar="A:B@T",
                          help="take the link between switches A and B down "
                               "T seconds after configuration (repeatable)")
    failover.add_argument("--link-up", action="append", default=[],
                          metavar="A:B@T",
                          help="bring the A:B link back up at T (repeatable)")
    failover.add_argument("--node-down", action="append", default=[],
                          metavar="N@T",
                          help="fail-stop switch N at T: all its links drop "
                               "(repeatable)")
    failover.add_argument("--node-up", action="append", default=[],
                          metavar="N@T",
                          help="recover switch N at T (repeatable)")
    failover.add_argument("--churn", type=int, default=0, metavar="N",
                          help="additionally bounce N random links (seeded)")
    failover.add_argument("--churn-seed", type=int, default=0,
                          help="seed of the random churn sequence")
    failover.add_argument("--churn-spacing", type=float, default=60.0,
                          help="seconds between random failures (default: 60)")
    failover.add_argument("--churn-recovery", type=float, default=30.0,
                          help="seconds a churned link stays down (default: 30)")
    failover.add_argument("--settle", type=float, default=15.0,
                          help="quiet seconds that count as reconverged "
                               "(default: 15)")
    failover.add_argument("--out", metavar="FILE",
                          help="write results as JSON to FILE")
    failover.add_argument("--csv", metavar="FILE",
                          help="write results as CSV to FILE")

    ctlscale = subparsers.add_parser(
        "ctlscale", help="configure a scenario under several controller-shard "
                         "counts and report per-shard load and convergence "
                         "time")
    ctlscale.add_argument("--scenario", metavar="NAME", required=True,
                          help="registry scenario to scale")
    ctlscale.add_argument("--controllers", type=int, nargs="+",
                          default=None, metavar="N",
                          help="shard counts to sweep (default: 1 2 4; "
                               "include 1 to enable the conservation check). "
                               "With --churn, the largest count given is "
                               "used (default: the scenario's own count)")
    ctlscale.add_argument("--partitioner", choices=["hash", "contiguous"],
                          default=None,
                          help="dpid->shard partitioner (default: the "
                               "scenario's, i.e. hash)")
    ctlscale.add_argument("--churn", action="store_true",
                          help="drive the sharded run through controller "
                               "churn (shard failovers with standby "
                               "takeover, live resharding, link churn) and "
                               "report reconvergence time and flow loss")
    ctlscale.add_argument("--churn-seed", type=int, default=0,
                          help="seed of the churn schedule (default: 0)")
    ctlscale.add_argument("--churn-failovers", type=int, default=1,
                          help="shard failover/restore cycles (default: 1)")
    ctlscale.add_argument("--churn-reshards", type=int, default=1,
                          help="live dpid reshards (default: 1)")
    ctlscale.add_argument("--churn-links", type=int, default=2,
                          help="random link bounces interleaved with the "
                               "controller churn (default: 2)")
    ctlscale.add_argument("--churn-spacing", type=float, default=30.0,
                          help="seconds between churn events (default: 30)")
    ctlscale.add_argument("--settle", type=float, default=15.0,
                          help="quiet seconds that count as reconverged "
                               "after churn (default: 15)")
    ctlscale.add_argument("--churn-bus-drop", type=float, default=0.0,
                          metavar="P",
                          help="with --churn: drop probability injected on "
                               "every routeflow.*/config.rpc bus topic "
                               "(enables reliable IPC; default: 0)")
    ctlscale.add_argument("--churn-bus-duplicate", type=float, default=0.0,
                          metavar="P",
                          help="with --churn: duplication probability on the "
                               "lossy bus topics (default: 0)")
    ctlscale.add_argument("--churn-bus-reorder", type=float, default=0.0,
                          metavar="P",
                          help="with --churn: reorder probability on the "
                               "lossy bus topics (default: 0)")
    ctlscale.add_argument("--churn-bus-jitter", type=float, default=0.0,
                          metavar="SECONDS",
                          help="with --churn: max uniform delivery jitter on "
                               "the lossy bus topics (default: 0)")
    ctlscale.add_argument("--churn-bus-seed", type=int, default=None,
                          metavar="N",
                          help="seed of the bus fault streams (default: "
                               "--churn-seed)")
    ctlscale.add_argument("--out", metavar="FILE",
                          help="write results as JSON to FILE")
    ctlscale.add_argument("--csv", metavar="FILE",
                          help="write results as CSV to FILE (sweep mode "
                               "only)")

    interdomain = subparsers.add_parser(
        "interdomain", help="configure a multi-AS BGP scenario, verify "
                            "redistribution, and flap an eBGP border link")
    interdomain.add_argument("--scenario", action="append", default=None,
                             metavar="NAME", required=True,
                             help="interdomain registry scenario to run "
                                  "(repeatable); see 'repro sweep --list'")
    interdomain.add_argument("--no-flap", action="store_true",
                             help="skip the border-link flap phase (pure "
                                  "convergence measurement)")
    interdomain.add_argument("--flap-link", metavar="A:B", default=None,
                             help="border link to flap (default: the first "
                                  "inter-AS link of the topology)")
    interdomain.add_argument("--settle", type=float, default=20.0,
                             help="quiet seconds that count as converged "
                                  "(default: 20)")
    interdomain.add_argument("--profile", action="store_true",
                             help="report a per-phase wall-time breakdown "
                                  "(session establishment, decision process, "
                                  "redistribution, flow install)")
    interdomain.add_argument("--out", metavar="FILE",
                             help="write results as JSON to FILE")
    interdomain.add_argument("--csv", metavar="FILE",
                             help="write results as CSV to FILE")

    traffic = subparsers.add_parser(
        "traffic", help="configure a scenario and run a seeded demand set "
                        "through the fluid fast path; reports delivered "
                        "throughput, loss and per-link utilization")
    traffic.add_argument("--scenario", action="append", default=None,
                         metavar="NAME", required=True,
                         help="registry scenario to run (repeatable)")
    traffic.add_argument("--demands", type=int, default=None, metavar="N",
                         help="number of demands (default: the scenario's "
                              "demand spec, or 100)")
    traffic.add_argument("--model", choices=list(DEMAND_MODELS), default=None,
                         help="traffic matrix model (default: uniform)")
    traffic.add_argument("--rate", type=float, default=None, metavar="BPS",
                         help="offered rate per demand in bits/second "
                              "(default: 1e6)")
    traffic.add_argument("--duration", type=float, default=None,
                         metavar="SECONDS",
                         help="demand lifetime; 0 = whole experiment "
                              "(default: 0)")
    traffic.add_argument("--demand-seed", type=int, default=None, metavar="N",
                         help="seed of the demand generator (default: 0)")
    traffic.add_argument("--window", type=float, default=30.0,
                         help="traffic phase length for open-ended demands "
                              "(default: 30)")
    traffic.add_argument("--settle", type=float, default=5.0,
                         help="extra seconds past the last demand/failure "
                              "event (default: 5)")
    traffic.add_argument("--out", metavar="FILE",
                         help="write results as JSON to FILE")

    te = subparsers.add_parser(
        "te", help="run a scenario once per traffic-engineering policy and "
                   "compare delivered throughput against the shortest-path "
                   "baseline")
    te.add_argument("--scenario", metavar="NAME", required=True,
                    help="registry scenario to run (its te/demands specs "
                         "supply the defaults)")
    te.add_argument("--policy", action="append", default=None,
                    choices=list(DEFAULT_POLICIES), metavar="NAME",
                    help="policy to run (repeatable; first is the baseline; "
                         "choices: " + ", ".join(DEFAULT_POLICIES)
                         + "; default: all)")
    te.add_argument("--demands", type=int, default=None, metavar="N",
                    help="number of demands (default: the scenario's "
                         "demand spec)")
    te.add_argument("--model", choices=list(DEMAND_MODELS), default=None,
                    help="traffic matrix model (default: the scenario's)")
    te.add_argument("--rate", type=float, default=None, metavar="BPS",
                    help="offered rate per demand in bits/second")
    te.add_argument("--demand-seed", type=int, default=None, metavar="N",
                    help="seed of the demand generator")
    te.add_argument("--window", type=float, default=30.0,
                    help="traffic phase length for open-ended demands "
                         "(default: 30)")
    te.add_argument("--settle", type=float, default=5.0,
                    help="extra seconds past the last demand/failure event "
                         "(default: 5)")
    te.add_argument("--out", metavar="FILE",
                    help="write the comparison as JSON to FILE")

    bench = subparsers.add_parser(
        "bench", help="run the hot-path benchmark suite; optionally write a "
                      "machine-readable JSON record and check it against a "
                      "committed baseline")
    bench.add_argument("--json", metavar="FILE", nargs="?",
                       const="BENCH_RESULTS.json", default=None,
                       help="write results as JSON (default file: "
                            "BENCH_RESULTS.json)")
    bench.add_argument("--check", metavar="BASELINE",
                       help="compare against a baseline BENCH_*.json and "
                            "exit non-zero on regression")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="allowed fractional slowdown of normalized "
                            "times in --check mode (default: 0.20)")
    bench.add_argument("--quick", action="store_true",
                       help="microbenchmarks only (skip the 64-router "
                            "convergence scenario)")
    bench.add_argument("--filter", metavar="GLOB", default=None,
                       help="run only the benchmark cases whose name matches "
                            "the glob (e.g. 'demand_*')")

    return parser


def _command_quickstart(args: argparse.Namespace) -> int:
    sim = Simulator()
    ipam = IPAddressManager()
    config = FrameworkConfig(vm_boot_delay=args.vm_boot_delay,
                             detect_edge_ports=False)
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, ring_topology(args.switches), ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=7200.0, settle=5.0)
    if configured_at is None:
        print("configuration did not complete within the deadline", file=sys.stderr)
        return 1
    print(format_table(["milestone", "time (s)"],
                       [[name, f"{when:.1f}"]
                        for name, when in sorted(framework.milestones.items(),
                                                 key=lambda item: item[1])]))
    print()
    print(framework.gui.render_text())
    print()
    print(framework.rfserver.vm(1).zebra.show_ip_route())
    print()
    manual = framework.manual_model.seconds_for(args.switches)
    print(f"automatic: {configured_at:.1f} s   manual baseline: {manual / 60:.0f} min")
    return 0


def _command_fig3(args: argparse.Namespace) -> int:
    results = run_config_time_sweep(ring_sizes=args.sizes)
    print(render_config_time_table(results))
    return 0


def _command_demo(_args: argparse.Namespace) -> int:
    result = run_demo(max_time=1800.0)
    print(render_demo_report(result))
    return 0 if result.video_started else 1


def _command_manual(args: argparse.Namespace) -> int:
    model = ManualConfigurationModel()
    breakdown = model.breakdown_for(args.switches)
    print(format_table(
        ["activity", "minutes"],
        [["create VMs", f"{breakdown['vm_creation']:.0f}"],
         ["map interfaces", f"{breakdown['interface_mapping']:.0f}"],
         ["write routing configs", f"{breakdown['routing_configuration']:.0f}"],
         ["total", f"{breakdown['total']:.0f}"]]))
    print(f"\n{args.switches} switches -> {model.hours_for(args.switches):.1f} hours of manual work")
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    if args.which == "split":
        results = run_controller_split_ablation()
        title = "A1: separate topology controller + FlowVisor vs single controller"
    elif args.which == "vm-latency":
        results = run_vm_latency_ablation()
        title = "A2: per-VM creation latency"
    else:
        results = run_ospf_timer_ablation()
        title = "A3: OSPF hello interval"
    print(render_ablation_table(results, title))
    return 0


def _validate_export_paths(*targets: Optional[str]) -> Optional[str]:
    """Catch a bad export path before an experiment runs, not after.

    Returns an error message, or None when every target is writable.
    """
    for target in targets:
        if not target:
            continue
        path = Path(target)
        if path.is_dir():
            return f"error: {target!r} is a directory"
        parent = path.resolve().parent
        if not parent.is_dir():
            return f"error: directory of {target!r} does not exist"
        if not os.access(parent, os.W_OK) or (
                path.exists() and not os.access(path, os.W_OK)):
            return f"error: {target!r} is not writable"
    return None


def _command_sweep(args: argparse.Namespace) -> int:
    if args.list_scenarios:
        print(format_table(
            ["scenario", "family", "description"],
            [[spec.name, spec.family, spec.description]
             for spec in all_scenarios()]))
        return 0
    if args.run_all:
        names = scenario_names()
    elif args.scenario:
        names = args.scenario
    else:
        print("no scenarios selected: pass --scenario NAME (repeatable), "
              "--all, or --list", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    export_error = _validate_export_paths(args.out, args.csv)
    if export_error is not None:
        print(export_error, file=sys.stderr)
        return 2
    if args.controllers is not None and args.controllers < 1:
        print("--controllers must be >= 1", file=sys.stderr)
        return 2
    try:
        results = run_sweep(names, workers=args.workers,
                            controllers=args.controllers)
    except (ScenarioError, TopologyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_sweep_table(results))
    if args.out:
        print(f"wrote {write_sweep_json(results, args.out)}")
    if args.csv:
        print(f"wrote {write_sweep_csv(results, args.csv)}")
    return 0 if all(r.configured for r in results) else 1


def _parse_failure_events(args: argparse.Namespace) -> List[FailureEvent]:
    """Translate the --link-down/--link-up/--node-down/--node-up options."""
    events: List[FailureEvent] = []
    link_options = [(args.link_down, FailureAction.LINK_DOWN),
                    (args.link_up, FailureAction.LINK_UP)]
    for values, action in link_options:
        for value in values:
            try:
                pair, at = value.split("@")
                node_a, node_b = pair.split(":")
                events.append(FailureEvent(float(at), action,
                                           int(node_a), int(node_b)))
            except (ValueError, FailureScheduleError) as error:
                raise ValueError(
                    f"bad --{action.replace('_', '-')} value {value!r} "
                    f"(expected A:B@T): {error}") from error
    node_options = [(args.node_down, FailureAction.NODE_DOWN),
                    (args.node_up, FailureAction.NODE_UP)]
    for values, action in node_options:
        for value in values:
            try:
                node, at = value.split("@")
                events.append(FailureEvent(float(at), action, int(node)))
            except (ValueError, FailureScheduleError) as error:
                raise ValueError(
                    f"bad --{action.replace('_', '-')} value {value!r} "
                    f"(expected N@T): {error}") from error
    return events


def _command_failover(args: argparse.Namespace) -> int:
    export_error = _validate_export_paths(args.out, args.csv)
    if export_error is not None:
        print(export_error, file=sys.stderr)
        return 2
    try:
        specs = [get_scenario(name) for name in args.scenario]
        explicit = _parse_failure_events(args)
    except (ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = []
    try:
        for spec in specs:
            # CLI events and churn are *added on top of* whatever schedule
            # is registered on the scenario itself; run_failover generates
            # the churn against the topology it actually runs.
            events = list(spec.failures.events if spec.failures else ())
            events.extend(explicit)
            if not events and not args.churn:
                print(f"error: scenario {spec.name!r} carries no failure "
                      f"schedule; pass --link-down/--node-down/--churn",
                      file=sys.stderr)
                return 2
            results.extend(run_failover_suite(
                [spec],
                schedule=FailureSchedule(tuple(events)) if events else None,
                settle=args.settle, churn=args.churn,
                churn_seed=args.churn_seed, churn_spacing=args.churn_spacing,
                churn_recovery=args.churn_recovery))
    except (ScenarioError, TopologyError, FailureScheduleError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_failover_table(results))
    if args.out:
        print(f"wrote {write_failover_json(results, args.out)}")
    if args.csv:
        print(f"wrote {write_failover_csv(results, args.csv)}")
    return 0 if all(r.reconverged for r in results) else 1


def _command_ctlscale(args: argparse.Namespace) -> int:
    export_error = _validate_export_paths(args.out, args.csv)
    if export_error is not None:
        print(export_error, file=sys.stderr)
        return 2
    if args.churn:
        return _command_ctlscale_churn(args)
    counts = args.controllers or list(DEFAULT_CONTROLLER_COUNTS)
    try:
        spec = get_scenario(args.scenario)
        results = run_ctlscale(spec, controller_counts=counts,
                               partitioner=args.partitioner)
    except (ScenarioError, TopologyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_ctlscale_table(results))
    if args.out:
        print(f"wrote {write_ctlscale_json(results, args.out)}")
    if args.csv:
        print(f"wrote {write_ctlscale_csv(results, args.csv)}")
    healthy = all(r.configured and not r.invariant_violations for r in results)
    conserved = not check_load_conservation(results)
    return 0 if healthy and conserved else 1


def _command_ctlscale_churn(args: argparse.Namespace) -> int:
    if args.csv:
        print("error: --csv is not supported with --churn (use --out)",
              file=sys.stderr)
        return 2
    controllers = max(args.controllers) if args.controllers else None
    try:
        spec = get_scenario(args.scenario)
        result = run_ctlscale_churn(
            spec,
            controllers=controllers,
            partitioner=args.partitioner,
            failovers=args.churn_failovers,
            reshards=args.churn_reshards,
            link_churn=args.churn_links,
            churn_seed=args.churn_seed,
            spacing=args.churn_spacing,
            settle=args.settle,
            bus_drop=args.churn_bus_drop,
            bus_duplicate=args.churn_bus_duplicate,
            bus_reorder=args.churn_bus_reorder,
            bus_jitter=args.churn_bus_jitter,
            bus_fault_seed=args.churn_bus_seed,
        )
    except (ScenarioError, TopologyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_ctlscale_churn(result))
    if args.out:
        print(f"wrote {write_ctlscale_churn_json(result, args.out)}")
    return 0 if result.healthy else 1


def _command_interdomain(args: argparse.Namespace) -> int:
    export_error = _validate_export_paths(args.out, args.csv)
    if export_error is not None:
        print(export_error, file=sys.stderr)
        return 2
    flap_link = None
    if args.flap_link is not None:
        try:
            node_a, node_b = args.flap_link.split(":")
            flap_link = (int(node_a), int(node_b))
        except ValueError:
            print(f"error: bad --flap-link value {args.flap_link!r} "
                  f"(expected A:B)", file=sys.stderr)
            return 2
    results = []
    try:
        for name in args.scenario:
            results.append(run_interdomain(
                name, flap=not args.no_flap, flap_link=flap_link,
                settle=args.settle, profile=args.profile))
    except (ScenarioError, TopologyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_interdomain_table(results))
    if args.out:
        print(f"wrote {write_interdomain_json(results, args.out)}")
    if args.csv:
        print(f"wrote {write_interdomain_csv(results, args.csv)}")
    return 0 if all(r.healthy for r in results) else 1


def _command_traffic(args: argparse.Namespace) -> int:
    export_error = _validate_export_paths(args.out)
    if export_error is not None:
        print(export_error, file=sys.stderr)
        return 2
    try:
        specs = [get_scenario(name) for name in args.scenario]
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    overrides = {"count": args.demands, "model": args.model,
                 "rate_bps": args.rate, "duration": args.duration,
                 "seed": args.demand_seed}
    overrides = {key: value for key, value in overrides.items()
                 if value is not None}
    results = []
    try:
        for spec in specs:
            base = spec.demands if spec.demands is not None else DemandSpec()
            demands = DemandSpec(**{**base.to_dict(), **overrides}) \
                if overrides else None
            results.extend(run_traffic_suite([spec], demands=demands,
                                             settle=args.settle,
                                             window=args.window))
    except (ScenarioError, TopologyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_traffic_table(results))
    if args.out:
        print(f"wrote {write_traffic_json(results, args.out)}")
    return 0 if all(r.configured for r in results) else 1


def _command_te(args: argparse.Namespace) -> int:
    export_error = _validate_export_paths(args.out)
    if export_error is not None:
        print(export_error, file=sys.stderr)
        return 2
    try:
        spec = get_scenario(args.scenario)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    overrides = {"count": args.demands, "model": args.model,
                 "rate_bps": args.rate, "seed": args.demand_seed}
    overrides = {key: value for key, value in overrides.items()
                 if value is not None}
    base = spec.demands if spec.demands is not None else DemandSpec()
    demands = DemandSpec(**{**base.to_dict(), **overrides}) \
        if overrides else None
    try:
        suite = run_te(spec, policies=args.policy, demands=demands,
                       settle=args.settle, window=args.window)
    except (ScenarioError, TopologyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_te_table(suite))
    if args.out:
        print(f"wrote {write_te_json(suite, args.out)}")
    return 0 if suite.healthy else 1


def _command_bench(args: argparse.Namespace) -> int:
    document = run_benchmarks(
        quick=args.quick,
        progress=lambda name: print(f"running {name} ...", file=sys.stderr),
        name_filter=args.filter)
    if not document["benchmarks"]:
        print(f"error: no benchmark case matches {args.filter!r}",
              file=sys.stderr)
        return 2
    print(render_bench_table(document))
    if args.json:
        print(f"wrote {write_bench_json(document, args.json)}")
    if args.check:
        baseline = read_bench_json(args.check)
        # --quick deliberately skips the slow scenarios, and --filter
        # narrows further; compare only what actually ran instead of
        # flagging the rest as missing.
        only = document["benchmarks"].keys() \
            if (args.quick or args.filter) else None
        failures = check_regressions(document, baseline,
                                     tolerance=args.tolerance, only=only)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression against {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


_COMMANDS = {
    "quickstart": _command_quickstart,
    "fig3": _command_fig3,
    "demo": _command_demo,
    "manual": _command_manual,
    "ablation": _command_ablation,
    "sweep": _command_sweep,
    "failover": _command_failover,
    "ctlscale": _command_ctlscale,
    "interdomain": _command_interdomain,
    "traffic": _command_traffic,
    "te": _command_te,
    "bench": _command_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
