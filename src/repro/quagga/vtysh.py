"""A vtysh-style facade over the routing suite of one virtual machine.

Real RouteFlow VMs expose Quagga's vtysh; operators (or the RPC server)
interact with the routing stack through it.  Our facade provides the same
role programmatically: ``show``-style inspection commands aggregated across
zebra/ospfd/bgpd, used by the GUI, the examples and the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.quagga.zebra import ZebraDaemon


class Vtysh:
    """Aggregated inspection across the daemons of one VM."""

    def __init__(self, zebra: ZebraDaemon, ospf=None, bgp=None) -> None:
        self.zebra = zebra
        self.ospf = ospf
        self.bgp = bgp

    # --------------------------------------------------------------- commands
    def show_running_config(self) -> str:
        """Summarise the active configuration of all daemons."""
        lines = [f"hostname {self.zebra.hostname}", "!"]
        if self.ospf is not None:
            lines.append("router ospf")
            lines.append(f" ospf router-id {self.ospf.router_id}")
            for name, interface in sorted(self.ospf.interfaces.items()):
                lines.append(f" ! interface {name} cost {interface.cost}")
            lines.append("!")
        if self.bgp is not None:
            lines.append(f"router bgp {self.bgp.local_as}")
            for session in self.bgp.sessions.values():
                lines.append(f" neighbor {session.peer_address} remote-as {session.remote_as}")
            lines.append("!")
        return "\n".join(lines)

    def show_ip_route(self) -> str:
        return self.zebra.show_ip_route()

    def show_ip_ospf_neighbor(self) -> str:
        if self.ospf is None:
            return "% OSPF is not running"
        return self.ospf.show_ip_ospf_neighbor()

    def show_ip_bgp_summary(self) -> str:
        if self.bgp is None:
            return "% BGP is not running"
        lines = [f"BGP router identifier {self.bgp.router_id}, local AS number {self.bgp.local_as}"]
        for session in self.bgp.sessions.values():
            lines.append(f"{session.peer_address:<16} AS{session.remote_as:<6} {session.state}")
        return "\n".join(lines)

    def execute(self, command: str) -> str:
        """Dispatch a textual command to the matching ``show`` method."""
        normalized = " ".join(command.strip().lower().split())
        dispatch = {
            "show running-config": self.show_running_config,
            "show ip route": self.show_ip_route,
            "show ip ospf neighbor": self.show_ip_ospf_neighbor,
            "show ip bgp summary": self.show_ip_bgp_summary,
        }
        handler = dispatch.get(normalized)
        if handler is None:
            return f"% Unknown command: {command}"
        return handler()
