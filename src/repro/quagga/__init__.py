"""Quagga-style routing suite: zebra RIB, OSPFv2, simplified BGP, config files."""

from repro.quagga.configfile import (
    BGPConfig,
    BGPNeighbor,
    ConfigError,
    InterfaceConfig,
    OSPFConfig,
    OSPFNetworkStatement,
    ZebraConfig,
    generate_bgpd_conf,
    generate_ospfd_conf,
    generate_zebra_conf,
    parse_bgpd_conf,
    parse_ospfd_conf,
    parse_zebra_conf,
)
from repro.quagga.rib import RIB, Route, RouteSource
from repro.quagga.vtysh import Vtysh
from repro.quagga.zebra import ZebraDaemon

__all__ = [
    "BGPConfig",
    "BGPNeighbor",
    "ConfigError",
    "InterfaceConfig",
    "OSPFConfig",
    "OSPFNetworkStatement",
    "RIB",
    "Route",
    "RouteSource",
    "Vtysh",
    "ZebraConfig",
    "ZebraDaemon",
    "generate_bgpd_conf",
    "generate_ospfd_conf",
    "generate_zebra_conf",
    "parse_bgpd_conf",
    "parse_ospfd_conf",
    "parse_zebra_conf",
]
