"""The zebra daemon: RIB manager and FIB installer.

In Quagga, protocol daemons (ospfd, bgpd) talk to zebra over the ZAPI
socket; zebra arbitrates between them with administrative distances and
installs the winners into the kernel forwarding table.  Here the "kernel"
is the virtual machine's FIB, and the RouteFlow client subscribes to FIB
changes to translate them into OpenFlow flow entries on the corresponding
physical switch.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional

from repro.net.addresses import IPv4Address, IPv4Network
from repro.quagga.rib import RIB, Route, RouteSource

LOG = logging.getLogger(__name__)

#: FIB change callback: ``f(prefix, new_route_or_None, old_route_or_None)``.
FIBListener = Callable[[IPv4Network, Optional[Route], Optional[Route]], None]


class ZebraDaemon:
    """RIB manager for one virtual machine."""

    def __init__(self, hostname: str = "zebra") -> None:
        self.hostname = hostname
        self.rib = RIB()
        self.fib: Dict[IPv4Network, Route] = {}
        self._fib_listeners: List[FIBListener] = []
        self.rib.add_listener(self._on_best_route_change)
        self.running = False
        self.install_count = 0
        self.withdraw_count = 0

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    # -------------------------------------------------------------- listeners
    def add_fib_listener(self, listener: FIBListener) -> None:
        """Subscribe to FIB changes (used by the RouteFlow client)."""
        self._fib_listeners.append(listener)

    # ----------------------------------------------------------- protocol API
    def announce_connected(self, prefix: IPv4Network, interface: str) -> None:
        """Install a connected route for a locally configured interface."""
        self.rib.add_route(Route(prefix=prefix, next_hop=None, interface=interface,
                                 source=RouteSource.CONNECTED, metric=0))

    def withdraw_connected(self, prefix: IPv4Network) -> None:
        self.rib.remove_route(prefix, RouteSource.CONNECTED)

    def announce_route(self, route: Route) -> None:
        """A protocol daemon announces (or refreshes) a route."""
        self.rib.add_route(route)

    def withdraw_route(self, prefix: IPv4Network, source: str,
                       next_hop: Optional[IPv4Address] = None) -> None:
        self.rib.remove_route(prefix, source, next_hop)

    def replace_routes(self, source: str, routes: List[Route]) -> List[IPv4Network]:
        """Reconcile a protocol's full route snapshot (see RIB.replace_routes).

        Stale candidates are withdrawn, changed ones replaced; every
        resulting FIB change reaches the FIB listeners — and from there the
        RouteFlow client — exactly once per prefix.
        """
        return self.rib.replace_routes(source, routes)

    def add_static_route(self, prefix: IPv4Network, next_hop: IPv4Address,
                         interface: str = "") -> None:
        self.rib.add_route(Route(prefix=prefix, next_hop=next_hop,
                                 interface=interface, source=RouteSource.STATIC))

    # -------------------------------------------------------------------- FIB
    def _on_best_route_change(self, prefix: IPv4Network, new: Optional[Route],
                              old: Optional[Route]) -> None:
        if new is None:
            self.fib.pop(prefix, None)
            self.withdraw_count += 1
        else:
            self.fib[prefix] = new
            self.install_count += 1
        for listener in self._fib_listeners:
            listener(prefix, new, old)

    def lookup(self, destination: IPv4Address) -> Optional[Route]:
        """Longest-prefix-match against the installed FIB."""
        best: Optional[Route] = None
        for prefix, route in self.fib.items():
            if destination in prefix:
                if best is None or prefix.prefix_len > best.prefix.prefix_len:
                    best = route
        return best

    @property
    def fib_routes(self) -> List[Route]:
        return sorted(self.fib.values(),
                      key=lambda r: (int(r.prefix.network), r.prefix.prefix_len))

    def show_ip_route(self) -> str:
        """A ``show ip route``-style dump, handy in examples and the GUI."""
        lines = [f"{self.hostname}# show ip route"]
        for route in self.fib_routes:
            code = {"connected": "C", "static": "S", "ospf": "O", "bgp": "B"}.get(route.source, "?")
            lines.append(f"{code}   {route}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ZebraDaemon {self.hostname} fib={len(self.fib)}>"
