"""A simplified BGP speaker.

The paper's RPC server also writes ``bgp.conf`` files, although the
evaluated experiments only exercise OSPF.  To keep the configuration path
complete we provide a compact BGP implementation: speakers are configured
from a parsed ``bgpd.conf``, sessions go through Idle → OpenSent →
Established with a configurable establishment delay, and once established
the speakers exchange UPDATE-equivalent announcements (prefix + AS path +
next hop), apply AS-path loop detection and shortest-AS-path selection, and
install the winners into zebra with the BGP administrative distance.

Peering transport is abstracted by a :class:`BGPSessionBroker` rather than
a full TCP implementation — the broker delivers messages between speakers
whose configurations name each other, after the session delay.  This is the
one deliberately simplified substrate (documented in DESIGN.md); everything
the reproduced experiments measure flows through OSPF, not BGP.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Network
from repro.quagga.configfile import BGPConfig
from repro.quagga.rib import Route, RouteSource
from repro.quagga.zebra import ZebraDaemon
from repro.sim import Simulator

LOG = logging.getLogger(__name__)


class BGPSessionState:
    IDLE = "Idle"
    OPEN_SENT = "OpenSent"
    ESTABLISHED = "Established"


@dataclass
class BGPAnnouncement:
    """A route announcement exchanged between peers."""

    prefix: IPv4Network
    next_hop: IPv4Address
    as_path: Tuple[int, ...]

    @property
    def origin_as(self) -> Optional[int]:
        return self.as_path[-1] if self.as_path else None


@dataclass
class BGPPeerSession:
    """State of one configured peering."""

    local_address: IPv4Address
    peer_address: IPv4Address
    remote_as: int
    state: str = BGPSessionState.IDLE
    established_at: Optional[float] = None
    received: Dict[IPv4Network, BGPAnnouncement] = field(default_factory=dict)


class BGPSessionBroker:
    """Connects speakers that name each other as neighbors."""

    def __init__(self, sim: Simulator, session_delay: float = 1.0) -> None:
        self.sim = sim
        self.session_delay = session_delay
        self._speakers: Dict[IPv4Address, "BGPDaemon"] = {}

    def register(self, address: IPv4Address, speaker: "BGPDaemon") -> None:
        self._speakers[IPv4Address(address)] = speaker
        self._try_establish_all()

    def speaker_at(self, address: IPv4Address) -> Optional["BGPDaemon"]:
        return self._speakers.get(IPv4Address(address))

    def _try_establish_all(self) -> None:
        for speaker in list(self._speakers.values()):
            for session in speaker.sessions.values():
                if session.state != BGPSessionState.IDLE:
                    continue
                peer = self._speakers.get(session.peer_address)
                if peer is None:
                    continue
                reverse = peer.sessions.get(session.local_address)
                if reverse is None:
                    continue
                session.state = BGPSessionState.OPEN_SENT
                reverse.state = BGPSessionState.OPEN_SENT
                self.sim.schedule(self.session_delay, self._establish,
                                  speaker, session, peer, reverse,
                                  label="bgp:establish")

    def _establish(self, speaker: "BGPDaemon", session: BGPPeerSession,
                   peer: "BGPDaemon", reverse: BGPPeerSession) -> None:
        for side, sess in ((speaker, session), (peer, reverse)):
            sess.state = BGPSessionState.ESTABLISHED
            sess.established_at = self.sim.now
        speaker.on_session_established(session)
        peer.on_session_established(reverse)

    def deliver(self, sender: "BGPDaemon", session: BGPPeerSession,
                announcement: BGPAnnouncement, withdraw: bool = False) -> None:
        peer = self._speakers.get(session.peer_address)
        if peer is None:
            return
        self.sim.schedule(0.05, peer.receive_announcement, session.peer_address,
                          session.local_address, announcement, withdraw,
                          label="bgp:update")


class BGPDaemon:
    """A BGP speaker configured from a parsed bgpd.conf."""

    def __init__(self, sim: Simulator, zebra: ZebraDaemon, config: BGPConfig,
                 broker: BGPSessionBroker, local_addresses: List[IPv4Address],
                 hostname: str = "") -> None:
        self.sim = sim
        self.zebra = zebra
        self.config = config
        self.broker = broker
        self.hostname = hostname or config.hostname
        self.local_as = config.local_as
        self.router_id = config.router_id or (local_addresses[0] if local_addresses else IPv4Address(0))
        self.local_addresses = [IPv4Address(a) for a in local_addresses]
        #: keyed by the *local* address used to reach the peer — one session per neighbor
        self.sessions: Dict[IPv4Address, BGPPeerSession] = {}
        self._local_announcements: Dict[IPv4Network, BGPAnnouncement] = {}
        self.running = False

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        self.running = True
        for neighbor in self.config.neighbors:
            local = self._local_address_for(neighbor.address)
            if local is None:
                LOG.warning("%s: no local address facing neighbor %s",
                            self.hostname, neighbor.address)
                continue
            self.sessions[neighbor.address] = BGPPeerSession(
                local_address=local, peer_address=neighbor.address,
                remote_as=neighbor.remote_as)
        for network in self.config.networks:
            self.announce_network(network)
        for address in self.local_addresses:
            self.broker.register(address, self)

    def stop(self) -> None:
        self.running = False
        self.zebra.rib.remove_all_from(RouteSource.BGP)

    def _local_address_for(self, peer: IPv4Address) -> Optional[IPv4Address]:
        # Prefer an address on the same /24 as the peer, else the first one.
        for address in self.local_addresses:
            if int(address) >> 8 == int(peer) >> 8:
                return address
        return self.local_addresses[0] if self.local_addresses else None

    # ------------------------------------------------------------ origination
    def announce_network(self, prefix: IPv4Network) -> None:
        """Originate a prefix from this AS."""
        announcement = BGPAnnouncement(prefix=prefix, next_hop=self.router_id,
                                       as_path=(self.local_as,))
        self._local_announcements[prefix] = announcement
        self._propagate(announcement)

    def _propagate(self, announcement: BGPAnnouncement,
                   exclude_peer: Optional[IPv4Address] = None) -> None:
        for peer_address, session in self.sessions.items():
            if session.state != BGPSessionState.ESTABLISHED:
                continue
            if exclude_peer is not None and peer_address == exclude_peer:
                continue
            outgoing = BGPAnnouncement(prefix=announcement.prefix,
                                       next_hop=session.local_address,
                                       as_path=(self.local_as,) + tuple(
                                           a for a in announcement.as_path
                                           if a != self.local_as))
            self.broker.deliver(self, session, outgoing)

    # ----------------------------------------------------------------- events
    def on_session_established(self, session: BGPPeerSession) -> None:
        LOG.info("%s: BGP session with %s established", self.hostname,
                 session.peer_address)
        for announcement in self._local_announcements.values():
            outgoing = BGPAnnouncement(prefix=announcement.prefix,
                                       next_hop=session.local_address,
                                       as_path=announcement.as_path)
            self.broker.deliver(self, session, outgoing)

    def receive_announcement(self, local_address: IPv4Address,
                             peer_address: IPv4Address,
                             announcement: BGPAnnouncement,
                             withdraw: bool = False) -> None:
        session = self.sessions.get(peer_address)
        if session is None or session.state != BGPSessionState.ESTABLISHED:
            return
        if self.local_as in announcement.as_path:
            return  # AS-path loop
        if withdraw:
            session.received.pop(announcement.prefix, None)
            self.zebra.withdraw_route(announcement.prefix, RouteSource.BGP,
                                      next_hop=announcement.next_hop)
            return
        existing = session.received.get(announcement.prefix)
        session.received[announcement.prefix] = announcement
        best = self._best_announcement(announcement.prefix)
        if best is not None:
            self.zebra.announce_route(Route(
                prefix=best.prefix, next_hop=best.next_hop, interface="",
                source=RouteSource.BGP, metric=len(best.as_path)))
        if existing is None or existing.as_path != announcement.as_path:
            self._propagate(announcement, exclude_peer=peer_address)

    def _best_announcement(self, prefix: IPv4Network) -> Optional[BGPAnnouncement]:
        candidates = [s.received[prefix] for s in self.sessions.values()
                      if prefix in s.received]
        if not candidates:
            return None
        return min(candidates, key=lambda a: (len(a.as_path), int(a.next_hop)))

    # ------------------------------------------------------------------ status
    @property
    def established_sessions(self) -> List[BGPPeerSession]:
        return [s for s in self.sessions.values()
                if s.state == BGPSessionState.ESTABLISHED]

    def __repr__(self) -> str:
        return (f"<BGPDaemon {self.hostname} AS{self.local_as} "
                f"sessions={len(self.sessions)}>")
