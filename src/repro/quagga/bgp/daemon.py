"""A BGP-4 speaker with eBGP/iBGP session roles, policy and redistribution.

The paper's RPC server writes ``bgpd.conf`` files alongside the OSPF
configuration; this module is the daemon that boots from them.  It models
the pieces an interdomain experiment actually measures:

* **Session roles.**  A neighbor in the same AS forms an *iBGP* session,
  a neighbor in another AS an *eBGP* session.  The textbook rules apply:
  routes learned from an iBGP peer are never re-advertised to other iBGP
  peers (the full-mesh assumption — unless one side of the hop is a
  configured route-reflector client, RFC 4456 style), eBGP-learned and
  locally originated routes go to everyone, the AS path is prepended on
  eBGP egress only, and iBGP-learned routes install with administrative
  distance 200 versus eBGP's 20.
* **Per-peer policy.**  ``local-preference`` applied on ingress, ``med``
  attached on egress, and ``prefix-list ... out`` export filters — all
  honoured from the parsed configuration.
* **Lifecycle.**  Sessions walk Idle → OpenSent → Established through a
  :class:`BGPSessionBroker`; established sessions exchange keepalives and
  tear down on **hold-timer expiry** when the peer falls silent, or
  immediately on interface carrier loss (fast external fallover: eBGP
  sessions are bound to the interface owning their local address).  A
  session going down withdraws every route learned over it — from zebra,
  and with explicit withdrawals to the remaining peers — and the broker
  re-establishes it (and re-advertises) once both sides are back.
* **Redistribution.**  ``redistribute ospf`` / ``redistribute connected``
  originate the IGP's prefixes into BGP (skipping routes OSPF itself
  derived from redistributed external prefixes — the
  :data:`~repro.quagga.ospf.constants.EXTERNAL_ROUTE_TAG` guard against
  AS-path-truncating re-export).  The reverse direction, BGP → OSPF, is
  wired by the virtual machine (see ``repro.routeflow.vm``): BGP routes
  that win the FIB are injected into the area as AS-external prefixes.
* **Recursive next-hop resolution.**  A route whose next hop is not on a
  connected subnet (an iBGP next-hop-self pointing at a peer's loopback)
  resolves through the IGP: the installed zebra route carries the next
  hop and interface of the RIB route *towards* the BGP next hop, and is
  re-resolved whenever the underlying IGP routes change.

Peering transport is abstracted by the broker rather than a full TCP
implementation — the one deliberately simplified substrate, documented in
docs/DESIGN.md ("BGP session broker"): message delivery is a small fixed
delay, iBGP sessions run between any two speakers that name each other
(loopback peering without modelling the TCP path), and loss of IGP
reachability surfaces through next-hop resolution rather than session
teardown.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.addresses import IPv4Address, IPv4Network
from repro.quagga.configfile import BGPConfig
from repro.quagga.ospf.constants import EXTERNAL_ROUTE_TAG
from repro.quagga.rib import Route, RouteSource
from repro.quagga.zebra import ZebraDaemon
from repro.sim import PeriodicTask, Simulator

LOG = logging.getLogger(__name__)

#: Default LOCAL_PREF assigned to routes that arrive without one (RFC 4271).
DEFAULT_LOCAL_PREF = 100

#: Valley-free export threshold.  The RPC server stamps eBGP ingress
#: LOCAL_PREF by business relationship (customer 200 > peer 100 >
#: provider 50), so a route is customer-learned — and exportable to peers
#: and providers under Gao-Rexford — exactly when its LOCAL_PREF clears
#: this bar.  LOCAL_PREF is transitive over iBGP, which makes the check
#: correct on multi-border ASes too.
VALLEY_FREE_EXPORT_MIN = 150

#: One-way delivery delay of a BGP UPDATE/KEEPALIVE through the broker.
UPDATE_DELAY = 0.05

#: Interned AS-path tuples.  At internet scale most announcements share a
#: small set of paths (everything a border re-advertises gets the same
#: prepended path); interning collapses them to one object per distinct
#: path, cutting memory and making the frequent path comparisons hit the
#: tuple identity fast path.
_AS_PATH_INTERN: Dict[Tuple[int, ...], Tuple[int, ...]] = {}


def _intern_as_path(path: Tuple[int, ...]) -> Tuple[int, ...]:
    return _AS_PATH_INTERN.setdefault(path, path)


#: Sentinel distinguishing "not passed" from None in export helpers.
_UNSET = object()

#: The export basis of a prefix nobody originates or announces.
_EMPTY_BASIS: Tuple[None, None, None] = (None, None, None)


class BGPSessionState:
    IDLE = "Idle"
    OPEN_SENT = "OpenSent"
    ESTABLISHED = "Established"


@dataclass(frozen=True)
class BGPAnnouncement:
    """A route announcement exchanged between peers.

    ``as_path`` never contains the *originating* speaker's own AS while the
    route is locally originated — the AS is prepended on eBGP egress, so a
    receiver's loop check (own AS in path) is exact.
    """

    prefix: IPv4Network
    next_hop: IPv4Address
    as_path: Tuple[int, ...]
    local_pref: int = DEFAULT_LOCAL_PREF
    med: int = 0

    @property
    def origin_as(self) -> Optional[int]:
        return self.as_path[-1] if self.as_path else None


@dataclass
class BGPPeerSession:
    """State of one configured peering."""

    local_address: IPv4Address
    peer_address: IPv4Address
    remote_as: int
    local_as: int
    #: Interface owning the local address; eBGP sessions tear down when it
    #: loses carrier (fast external fallover).  Empty for loopback (iBGP)
    #: sessions.
    interface: str = ""
    state: str = BGPSessionState.IDLE
    established_at: Optional[float] = None
    last_keepalive: float = 0.0
    #: Adj-RIB-In: routes received from the peer.
    received: Dict[IPv4Network, BGPAnnouncement] = field(default_factory=dict)
    #: Adj-RIB-Out: what we last advertised to the peer.
    advertised: Dict[IPv4Network, BGPAnnouncement] = field(default_factory=dict)
    #: This session is queued in the broker's pending set for a
    #: (re-)establishment probe.
    retry_pending: bool = False
    #: Adj-RIBs as they stood when the session last went down
    #: (graceful-restart-style retention, see
    #: :meth:`BGPDaemon.on_session_established`).  None = nothing retained.
    stale_received: Optional[Dict[IPv4Network, BGPAnnouncement]] = None
    stale_advertised: Optional[Dict[IPv4Network, BGPAnnouncement]] = None

    @property
    def is_ibgp(self) -> bool:
        return self.remote_as == self.local_as

    @property
    def established(self) -> bool:
        return self.state == BGPSessionState.ESTABLISHED


class BGPSessionBroker:
    """Connects speakers that name each other as neighbors.

    The broker abstracts the TCP transport: it pairs matching neighbor
    statements, runs the (delayed) session establishment handshake, and
    delivers UPDATEs and KEEPALIVEs between established endpoints.

    Idle sessions sit in a *pending set* keyed by the peer address they
    are waiting for; a probe runs when that address registers, or on the
    daemons' ConnectRetry ticks.  Only pending sessions are probed — the
    steady state (everything established) costs nothing per tick, where a
    full rescan of every registered speaker used to cost
    O(speakers x sessions).
    """

    def __init__(self, sim: Simulator, session_delay: float = 1.0) -> None:
        self.sim = sim
        self.session_delay = session_delay
        self._speakers: Dict[IPv4Address, "BGPDaemon"] = {}
        #: peer address -> idle sessions waiting to establish towards it.
        self._pending: Dict[IPv4Address,
                            List[Tuple["BGPDaemon", BGPPeerSession]]] = {}
        #: Establishment probes attempted (the pending-set regression test
        #: pins this to stay linear in the number of idle sessions).
        self.probe_attempts = 0

    def register(self, address: IPv4Address, speaker: "BGPDaemon") -> None:
        address = IPv4Address(address)
        self._speakers[address] = speaker
        # Sessions elsewhere that were waiting for this address can try
        # now, and so can the registering speaker's own idle sessions
        # (their peers may already be registered).
        self._probe(self._pending.pop(address, []))
        for session in list(speaker.sessions.values()):
            if session.state == BGPSessionState.IDLE:
                self._try_establish(speaker, session)
                if session.state == BGPSessionState.IDLE:
                    self.enlist(speaker, session)

    def unregister_speaker(self, speaker: "BGPDaemon") -> None:
        for address in [a for a, s in self._speakers.items() if s is speaker]:
            del self._speakers[address]

    def speaker_at(self, address: IPv4Address) -> Optional["BGPDaemon"]:
        return self._speakers.get(IPv4Address(address))

    def enlist(self, speaker: "BGPDaemon", session: BGPPeerSession) -> None:
        """Queue an idle session for (re-)establishment probing."""
        if session.retry_pending:
            return
        session.retry_pending = True
        self._pending.setdefault(session.peer_address, []).append(
            (speaker, session))

    def retry(self) -> None:
        """Re-attempt establishment of every pending idle session."""
        for address in list(self._pending):
            self._probe(self._pending.pop(address, []))

    def _probe(self, entries: List[Tuple["BGPDaemon", BGPPeerSession]]) -> None:
        for speaker, session in entries:
            session.retry_pending = False
            if not speaker.running or session.state != BGPSessionState.IDLE \
                    or speaker.sessions.get(session.peer_address) is not session:
                continue  # daemon stopped or session replaced: drop lazily
            self._try_establish(speaker, session)
            if session.state == BGPSessionState.IDLE:
                self.enlist(speaker, session)  # still idle: keep pending

    def _try_establish(self, speaker: "BGPDaemon",
                       session: BGPPeerSession) -> None:
        self.probe_attempts += 1
        if session.state != BGPSessionState.IDLE or not speaker.running \
                or not speaker.session_ready(session):
            return
        peer = self._speakers.get(session.peer_address)
        if peer is None or not peer.running:
            return
        reverse = peer.sessions.get(session.local_address)
        if reverse is None or reverse.state != BGPSessionState.IDLE \
                or not peer.session_ready(reverse):
            return
        session.state = BGPSessionState.OPEN_SENT
        reverse.state = BGPSessionState.OPEN_SENT
        self.sim.schedule(self.session_delay, self._establish,
                          speaker, session, peer, reverse,
                          label="bgp:establish")

    def _establish(self, speaker: "BGPDaemon", session: BGPPeerSession,
                   peer: "BGPDaemon", reverse: BGPPeerSession) -> None:
        # Re-check at fire time: a carrier loss or daemon stop during the
        # handshake aborts it (the sessions go back to Idle for a retry).
        if not (speaker.running and peer.running
                and session.state == BGPSessionState.OPEN_SENT
                and reverse.state == BGPSessionState.OPEN_SENT
                and speaker.session_ready(session)
                and peer.session_ready(reverse)):
            if session.state == BGPSessionState.OPEN_SENT:
                session.state = BGPSessionState.IDLE
                self.enlist(speaker, session)
            if reverse.state == BGPSessionState.OPEN_SENT:
                reverse.state = BGPSessionState.IDLE
                self.enlist(peer, reverse)
            return
        for sess in (session, reverse):
            sess.state = BGPSessionState.ESTABLISHED
            sess.established_at = self.sim.now
            sess.last_keepalive = self.sim.now
        speaker.on_session_established(session, reverse)
        peer.on_session_established(reverse, session)

    def deliver(self, sender: "BGPDaemon", session: BGPPeerSession,
                announcement: BGPAnnouncement, withdraw: bool = False) -> None:
        peer = self._speakers.get(session.peer_address)
        if peer is None:
            return
        self.sim.schedule(UPDATE_DELAY, peer.receive_announcement,
                          session.peer_address, session.local_address,
                          announcement, withdraw, label="bgp:update")

    def deliver_batch(self, sender: "BGPDaemon", session: BGPPeerSession,
                      updates: List[Tuple[BGPAnnouncement, bool]],
                      eor: bool = False, retained: bool = False) -> None:
        """Deliver a coalesced set of (announcement, withdraw) updates as
        one event.  ``eor=True`` marks the batch as the end of an initial
        Adj-RIB-Out sync; ``retained`` says the sender skipped prefixes
        the receiver retained across the session drop."""
        peer = self._speakers.get(session.peer_address)
        if peer is None:
            return
        self.sim.schedule(UPDATE_DELAY, peer.receive_update_batch,
                          session.peer_address, session.local_address,
                          updates, eor, retained, label="bgp:update")

    def deliver_keepalive(self, sender: "BGPDaemon",
                          session: BGPPeerSession) -> None:
        peer = self._speakers.get(session.peer_address)
        if peer is None:
            return
        self.sim.schedule(UPDATE_DELAY, peer.receive_keepalive,
                          session.peer_address, session.local_address,
                          label="bgp:keepalive")


#: Callable returning the speaker's current address book:
#: address -> (interface name, prefix length).
AddressBook = Callable[[], Dict[IPv4Address, Tuple[str, int]]]


class BGPDaemon:
    """A BGP speaker configured from a parsed bgpd.conf."""

    def __init__(self, sim: Simulator, zebra: ZebraDaemon, config: BGPConfig,
                 broker: BGPSessionBroker,
                 local_addresses: Optional[List[IPv4Address]] = None,
                 hostname: str = "",
                 address_book: Optional[AddressBook] = None) -> None:
        self.sim = sim
        self.zebra = zebra
        self.config = config
        self.broker = broker
        self.hostname = hostname or config.hostname
        self.local_as = config.local_as
        self.local_addresses = [IPv4Address(a) for a in (local_addresses or [])]
        self.router_id = config.router_id or (
            self.local_addresses[0] if self.local_addresses else IPv4Address(0))
        if address_book is None:
            address_book = lambda: {IPv4Address(a): ("", 0)
                                    for a in self.local_addresses}
        self.address_book = address_book
        #: keyed by the *peer* address — one session per neighbor statement.
        self.sessions: Dict[IPv4Address, BGPPeerSession] = {}
        #: Locally originated prefixes (``network`` statements and
        #: :meth:`announce_network` calls).
        self._local_networks: Dict[IPv4Network, BGPAnnouncement] = {}
        #: Prefixes originated through ``redistribute ospf|connected``.
        self._redistributed: Dict[IPv4Network, BGPAnnouncement] = {}
        #: What we currently have installed in zebra, per prefix.
        self._installed: Dict[IPv4Network, Route] = {}
        #: Received best routes whose next hop the IGP cannot resolve yet.
        self._unresolved: Set[IPv4Network] = set()
        #: prefix -> the BGP next hop its best path rides on (installed or
        #: unresolved), so an IGP change only re-resolves the prefixes it
        #: can actually affect (those whose next hop the changed prefix
        #: covers), not every tracked route.
        self._tracked_next_hops: Dict[IPv4Network, IPv4Address] = {}
        #: Interfaces currently without carrier (fast-fallover bookkeeping).
        self._down_interfaces: Set[str] = set()
        #: prefix -> {peer address: (session, announcement)} mirror of the
        #: per-session Adj-RIBs-In, so the decision process walks only the
        #: sessions that actually hold the prefix instead of all of them.
        self._adj_in: Dict[IPv4Network,
                           Dict[IPv4Address,
                                Tuple[BGPPeerSession, BGPAnnouncement]]] = {}
        #: prefix -> (best peer, best announcement, local origination) at
        #: the last re-evaluation; an unchanged basis means neither zebra
        #: nor any Adj-RIB-Out can change, so the whole fan-out is skipped.
        self._export_basis: Dict[
            IPv4Network,
            Tuple[Optional[IPv4Address], Optional[BGPAnnouncement],
                  Optional[BGPAnnouncement]]] = {}
        #: Outbound batching: while a batch is open (depth > 0), updates
        #: buffer per peer and flush as one coalesced event per peer.
        self._batch_depth = 0
        self._pending_out: Dict[IPv4Address,
                                List[Tuple[BGPAnnouncement, bool]]] = {}
        self._pending_eor: Dict[IPv4Address, bool] = {}
        self._in_reevaluate = False
        self._fib_listener_armed = False
        self._timer = PeriodicTask(
            sim, max(config.keepalive_interval, 0.5), self._on_timer,
            name=f"bgp:{self.hostname}:keepalive")
        self.running = False
        # Statistics used by the experiments.
        self.updates_sent = 0
        self.updates_received = 0
        self.withdrawals_sent = 0
        self.sessions_established = 0
        self.sessions_lost = 0

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        self.running = True
        self._ensure_sessions()
        for network in self.config.networks:
            self._local_networks.setdefault(
                network, BGPAnnouncement(prefix=network, next_hop=self.router_id,
                                         as_path=()))
        if not self._fib_listener_armed:
            self.zebra.add_fib_listener(self._on_fib_change)
            self._fib_listener_armed = True
        # Routes installed before bgpd came up (OSPF usually converges while
        # the daemon package is still starting) seed the redistribution.
        for route in list(self.zebra.fib.values()):
            self._maybe_redistribute(route.prefix, route)
        for address in self._known_addresses():
            self.broker.register(address, self)
        self._timer.start()
        for prefix in self._all_prefixes():
            self._reevaluate(prefix)

    def stop(self) -> None:
        """Shut down: close every session (peers withdraw immediately, like
        a TCP reset) and withdraw our routes from zebra."""
        if not self.running:
            return
        self.running = False
        self._timer.stop()
        for session in list(self.sessions.values()):
            if session.established:
                peer = self.broker.speaker_at(session.peer_address)
                self._session_down(session, "daemon stopped")
                if peer is not None:
                    reverse = peer.sessions.get(session.local_address)
                    if reverse is not None:
                        peer._session_down(reverse, "peer closed the session")
        self.broker.unregister_speaker(self)
        self.zebra.rib.remove_all_from(RouteSource.BGP)
        self._installed.clear()
        self._unresolved.clear()
        self._tracked_next_hops.clear()
        # A stopped daemon loses its RIB state, so nothing can be retained
        # across a restart from our side (peers keep their own snapshots).
        for session in self.sessions.values():
            session.stale_received = None
            session.stale_advertised = None
        self._adj_in.clear()
        self._export_basis.clear()
        self._pending_out.clear()
        self._pending_eor.clear()

    def apply_config(self, config: BGPConfig) -> None:
        """Apply a regenerated bgpd.conf (the RPC server rewrites the file
        as new links and switches are discovered)."""
        self.config = config
        self.local_as = config.local_as
        if not self.running:
            return
        self._ensure_sessions()
        # Per-neighbor policy (local-pref, MED, prefix lists, relationship)
        # may have changed with the rewrite; drop the skip-memo so the next
        # re-evaluation of each prefix recomputes its exports from scratch.
        self._export_basis.clear()
        for network in config.networks:
            if network not in self._local_networks:
                self.announce_network(network)
        # Newly enabled redistribution picks up the existing FIB.
        for route in list(self.zebra.fib.values()):
            self._maybe_redistribute(route.prefix, route)
        self.broker.retry()

    def local_address_added(self, address: IPv4Address) -> None:
        """An interface address appeared (zebra applied a configuration)."""
        if self.running:
            self._ensure_sessions()
            self.broker.register(IPv4Address(address), self)

    # ------------------------------------------------------------- sessions
    def _known_addresses(self) -> List[IPv4Address]:
        book = dict(self.address_book())
        for address in self.local_addresses:
            book.setdefault(IPv4Address(address), ("", 0))
        if int(self.router_id):
            book.setdefault(IPv4Address(self.router_id), ("lo", 32))
        return list(book)

    def _ensure_sessions(self) -> None:
        for neighbor in self.config.neighbors:
            if neighbor.address in self.sessions:
                continue
            local = self._local_address_for(neighbor.address)
            if local is None:
                LOG.warning("%s: no local address facing neighbor %s",
                            self.hostname, neighbor.address)
                continue
            book = self.address_book()
            interface = book.get(IPv4Address(local), ("", 0))[0]
            if interface == "lo":
                interface = ""
            session = BGPPeerSession(
                local_address=IPv4Address(local),
                peer_address=IPv4Address(neighbor.address),
                remote_as=neighbor.remote_as, local_as=self.local_as,
                interface=interface)
            self.sessions[neighbor.address] = session
            # Queue the new session for establishment probing; the probe
            # fires when the peer address registers or on a retry tick.
            self.broker.enlist(self, session)

    def _local_address_for(self, peer: IPv4Address) -> Optional[IPv4Address]:
        """Pick the local address a session with ``peer`` binds to.

        Preference order: an interface whose connected prefix contains the
        peer (the eBGP border link), the same-/24 heuristic the session
        broker's tests rely on, our router id for loopback (iBGP) peering,
        else the first known address.
        """
        peer = IPv4Address(peer)
        book = self.address_book()
        for address, (name, prefix_len) in book.items():
            if prefix_len and name != "lo" \
                    and peer in IPv4Network((address, prefix_len)):
                return address
        for address in self._known_addresses():
            if int(address) >> 8 == int(peer) >> 8:
                return address
        if int(self.router_id) and (self.router_id in book
                                    or not self.local_addresses):
            return IPv4Address(self.router_id)
        addresses = self._known_addresses()
        return addresses[0] if addresses else None

    def session_ready(self, session: BGPPeerSession) -> bool:
        """Can this session (re-)establish right now?"""
        return self.running and (not session.interface
                                 or session.interface not in self._down_interfaces)

    def interface_down(self, name: str) -> None:
        """Carrier lost on an interface: fast external fallover.

        Every session bound to the interface drops immediately — both ends
        of a failed link observe the carrier loss, so the teardown is
        symmetric without waiting out the hold timer.
        """
        self._down_interfaces.add(name)
        for session in self.sessions.values():
            if session.interface == name \
                    and session.state != BGPSessionState.IDLE:
                self._session_down(session, "interface down")

    def interface_up(self, name: str) -> None:
        """Carrier returned: allow the broker to re-establish."""
        self._down_interfaces.discard(name)
        if self.running:
            self.broker.retry()

    def _session_down(self, session: BGPPeerSession, reason: str) -> None:
        if session.state == BGPSessionState.IDLE:
            return
        was_established = session.established
        session.state = BGPSessionState.IDLE
        session.established_at = None
        affected = set(session.received) | set(session.advertised)
        if was_established:
            # Graceful-restart-style snapshots: the peer keeps a copy of
            # what it had received from us, we keep a copy of what we had
            # advertised, and a re-established session re-sends only the
            # delta.  A drop mid-handshake keeps any earlier snapshot.
            session.stale_received = dict(session.received)
            session.stale_advertised = dict(session.advertised)
        for prefix in session.received:
            self._adj_in_discard(session, prefix)
        session.received.clear()
        session.advertised.clear()
        self._pending_out.pop(session.peer_address, None)
        self._pending_eor.pop(session.peer_address, None)
        if was_established:
            self.sessions_lost += 1
            LOG.info("%s: BGP session with %s down (%s)", self.hostname,
                     session.peer_address, reason)
        self._begin_batch()
        try:
            for prefix in sorted(affected,
                                 key=lambda p: (int(p.network), p.prefix_len)):
                self._reevaluate(prefix)
        finally:
            self._end_batch()
        if self.running:
            self.broker.enlist(self, session)

    # ----------------------------------------------------------------- timers
    def _on_timer(self) -> None:
        """Keepalives out, hold-timer check, ConnectRetry for idle sessions."""
        if not self.running:
            return
        now = self.sim.now
        idle = False
        for session in self.sessions.values():
            if session.established:
                self.broker.deliver_keepalive(self, session)
                silent_since = max(session.last_keepalive,
                                   session.established_at or 0.0)
                if now - silent_since > self.config.hold_time:
                    self._session_down(session, "hold timer expired")
                    idle = True
            elif session.state == BGPSessionState.IDLE:
                self.broker.enlist(self, session)
                idle = True
        if idle:
            self.broker.retry()

    def receive_keepalive(self, local_address: IPv4Address,
                          peer_address: IPv4Address) -> None:
        session = self.sessions.get(IPv4Address(peer_address))
        if session is not None and session.established:
            session.last_keepalive = self.sim.now

    # ------------------------------------------------------------ origination
    def announce_network(self, prefix: IPv4Network) -> None:
        """Originate a prefix from this AS (a ``network`` statement)."""
        self._local_networks[prefix] = BGPAnnouncement(
            prefix=prefix, next_hop=self.router_id, as_path=())
        self._reevaluate(prefix)

    def _maybe_redistribute(self, prefix: IPv4Network,
                            route: Optional[Route]) -> None:
        """Sync one FIB route into the redistribution table."""
        wanted = (
            route is not None
            and ((self.config.redistribute_ospf
                  and route.source == RouteSource.OSPF and route.tag == 0)
                 or (self.config.redistribute_connected
                     and route.source == RouteSource.CONNECTED)))
        if wanted:
            if prefix not in self._redistributed:
                self._redistributed[prefix] = BGPAnnouncement(
                    prefix=prefix, next_hop=self.router_id, as_path=())
                self._reevaluate(prefix)
        elif route is None or route.source != RouteSource.BGP:
            # A BGP route displacing the IGP route in the FIB does not
            # withdraw the origination (the IGP candidate still exists).
            if self._redistributed.pop(prefix, None) is not None:
                self._reevaluate(prefix)

    # -------------------------------------------------------------- reception
    def on_session_established(self, session: BGPPeerSession,
                               reverse: Optional[BGPPeerSession] = None) -> None:
        """Initial Adj-RIB-Out sync towards a freshly established peer.

        When the broker hands us the ``reverse`` session we can see what
        the peer retained from the previous incarnation of this session
        (its stale Adj-RIB-In); prefixes whose advertisement is unchanged
        are skipped and re-validated by the end-of-RIB marker instead of
        being re-sent — a session flap re-advertises one coalesced delta.
        """
        LOG.info("%s: BGP %s session with %s established", self.hostname,
                 "iBGP" if session.is_ibgp else "eBGP", session.peer_address)
        self.sessions_established += 1
        peer_stale = reverse.stale_received if reverse is not None else None
        stale_out = session.stale_advertised
        session.stale_advertised = None
        retained = peer_stale is not None
        order = lambda p: (int(p.network), p.prefix_len)
        self._begin_batch()
        try:
            for prefix in sorted(self._all_prefixes(), key=order):
                candidate = self._export_candidate(session, prefix)
                if candidate is None:
                    continue
                session.advertised[prefix] = candidate
                if retained and stale_out is not None \
                        and stale_out.get(prefix) == candidate \
                        and prefix in peer_stale:
                    # The peer still holds exactly this route from the
                    # previous session: the EOR marker revalidates it.
                    continue
                self.updates_sent += 1
                self._queue_update(session, candidate)
            if retained:
                for prefix in sorted(set(peer_stale) - set(session.advertised),
                                     key=order):
                    self.withdrawals_sent += 1
                    self._queue_update(session, peer_stale[prefix],
                                       withdraw=True)
            self._pending_eor[session.peer_address] = retained
        finally:
            self._end_batch()

    def receive_announcement(self, local_address: IPv4Address,
                             peer_address: IPv4Address,
                             announcement: BGPAnnouncement,
                             withdraw: bool = False) -> None:
        session = self.sessions.get(IPv4Address(peer_address))
        if session is None or not session.established:
            return
        if self.local_as in announcement.as_path:
            return  # AS-path loop
        self.updates_received += 1
        prefix = announcement.prefix
        if withdraw:
            if session.received.pop(prefix, None) is None:
                return
            self._adj_in_discard(session, prefix)
        else:
            if not session.is_ibgp:
                # eBGP ingress: LOCAL_PREF is not transitive across AS
                # borders; assign ours (per-peer policy or the default).
                neighbor = self.config.neighbor(session.peer_address)
                local_pref = neighbor.local_pref if neighbor is not None \
                    and neighbor.local_pref is not None else DEFAULT_LOCAL_PREF
                announcement = replace(announcement, local_pref=local_pref)
            session.received[prefix] = announcement
            self._adj_in_set(session, announcement)
        self._reevaluate(prefix)

    def receive_update_batch(self, local_address: IPv4Address,
                             peer_address: IPv4Address,
                             updates: List[Tuple[BGPAnnouncement, bool]],
                             eor: bool = False,
                             retained: bool = False) -> None:
        """Process a coalesced update set as one event.

        All triggered re-advertisements batch per peer, so a burst of N
        updates costs each downstream peer one delivery, not N.
        """
        session = self.sessions.get(IPv4Address(peer_address))
        if session is None or not session.established:
            return
        self._begin_batch()
        try:
            for announcement, withdraw in updates:
                self.receive_announcement(local_address, peer_address,
                                          announcement, withdraw)
            if eor:
                touched = {announcement.prefix for announcement, _ in updates}
                self._handle_eor(session, retained, touched)
        finally:
            self._end_batch()

    def _handle_eor(self, session: BGPPeerSession, retained: bool,
                    touched: Set[IPv4Network]) -> None:
        """End-of-RIB: promote retained stale routes, discard the rest.

        ``retained=True`` means the sender deliberately skipped prefixes we
        still hold in the stale snapshot; any snapshot entry the batch did
        not touch is therefore still valid and re-enters the Adj-RIB-In.
        """
        stale = session.stale_received
        session.stale_received = None
        if not stale or not retained:
            return
        for prefix in sorted(set(stale) - touched,
                             key=lambda p: (int(p.network), p.prefix_len)):
            if prefix in session.received:
                continue
            announcement = stale[prefix]
            session.received[prefix] = announcement
            self._adj_in_set(session, announcement)
            self._reevaluate(prefix)

    # ----------------------------------------------------------- path selection
    def _adj_in_set(self, session: BGPPeerSession,
                    announcement: BGPAnnouncement) -> None:
        self._adj_in.setdefault(announcement.prefix, {})[
            session.peer_address] = (session, announcement)

    def _adj_in_discard(self, session: BGPPeerSession,
                        prefix: IPv4Network) -> None:
        holders = self._adj_in.get(prefix)
        if holders is not None:
            holders.pop(session.peer_address, None)
            if not holders:
                del self._adj_in[prefix]

    def _all_prefixes(self) -> Set[IPv4Network]:
        prefixes: Set[IPv4Network] = set(self._local_networks)
        prefixes.update(self._redistributed)
        prefixes.update(self._adj_in)
        prefixes.update(self._installed)
        return prefixes

    def _best_received(self, prefix: IPv4Network
                       ) -> Optional[Tuple[BGPPeerSession, BGPAnnouncement]]:
        """RFC 4271 decision process over the Adj-RIBs-In.

        Walks the per-prefix holder index, not every session: on a border
        router with hundreds of sessions a prefix typically arrives over a
        handful of them.
        """
        holders = self._adj_in.get(prefix)
        if not holders:
            return None
        candidates = [item for item in holders.values() if item[0].established]
        if not candidates:
            return None
        return min(candidates, key=lambda item: (
            -item[1].local_pref,              # highest LOCAL_PREF
            len(item[1].as_path),             # shortest AS path
            item[1].med,                      # lowest MED
            1 if item[0].is_ibgp else 0,      # prefer eBGP over iBGP
            int(item[0].peer_address),        # lowest peer address
        ))

    def _local_origination(self, prefix: IPv4Network) -> Optional[BGPAnnouncement]:
        return self._local_networks.get(prefix) or self._redistributed.get(prefix)

    def _reevaluate(self, prefix: IPv4Network) -> None:
        """Recompute best path, zebra installation and Adj-RIBs-Out for a
        prefix.  The single entry point for every BGP state change.

        Incremental: everything downstream — the zebra installation and
        every per-peer export — is a pure function of (best path, local
        origination), so when that basis matches the memo from the last
        evaluation the fan-out is skipped entirely.  IGP re-resolution does
        not flow through here (see :meth:`_on_fib_change`).
        """
        best = self._best_received(prefix)
        local = self._local_origination(prefix)
        basis = (best[0].peer_address if best is not None else None,
                 best[1] if best is not None else None,
                 local)
        if basis == self._export_basis.get(prefix, _EMPTY_BASIS):
            return
        if basis == _EMPTY_BASIS:
            self._export_basis.pop(prefix, None)
        else:
            self._export_basis[prefix] = basis
        self._update_zebra(prefix, best)
        self._begin_batch()
        try:
            for session in self.sessions.values():
                if session.established:
                    self._sync_export(session, prefix, best, local)
        finally:
            self._end_batch()

    # ------------------------------------------------------------ installation
    def _update_zebra(self, prefix: IPv4Network,
                      best: Optional[Tuple[BGPPeerSession, BGPAnnouncement]]) -> None:
        route = None
        if best is not None and self._local_origination(prefix) is None:
            session, announcement = best
            self._tracked_next_hops[prefix] = IPv4Address(announcement.next_hop)
            if not session.is_ibgp \
                    and announcement.next_hop == session.peer_address:
                # The common eBGP case: the next hop *is* the peer across
                # the shared link — directly connected by construction.
                resolution = (IPv4Address(announcement.next_hop),
                              session.interface)
            else:
                # iBGP (next-hop-self = the peer's loopback) and third-party
                # next hops resolve recursively through the IGP.
                resolution = self._resolve_next_hop(announcement.next_hop)
            if resolution is None:
                self._unresolved.add(prefix)
            else:
                self._unresolved.discard(prefix)
                next_hop, interface = resolution
                route = Route(
                    prefix=prefix, next_hop=next_hop, interface=interface,
                    source=RouteSource.BGP, metric=len(announcement.as_path),
                    distance=RouteSource.IBGP_DISTANCE if session.is_ibgp else None)
        if best is None or self._local_origination(prefix) is not None:
            self._unresolved.discard(prefix)
            self._tracked_next_hops.pop(prefix, None)
        installed = self._installed.get(prefix)
        if route == installed:
            return
        self._in_reevaluate = True
        try:
            if route is None:
                if installed is not None:
                    del self._installed[prefix]
                    self.zebra.withdraw_route(prefix, RouteSource.BGP)
            else:
                self._installed[prefix] = route
                if installed is not None and installed.next_hop != route.next_hop:
                    # add_route replaces by (source, next hop, interface);
                    # a changed next hop must drop the old candidate first.
                    self.zebra.withdraw_route(prefix, RouteSource.BGP)
                self.zebra.announce_route(route)
        finally:
            self._in_reevaluate = False

    def _resolve_next_hop(self, next_hop: IPv4Address
                          ) -> Optional[Tuple[IPv4Address, str]]:
        """Recursively resolve a BGP next hop through the local RIB.

        Directly connected next hops (an eBGP peer across the border link)
        resolve to themselves; anything else (an iBGP peer's loopback)
        resolves to the next hop and interface of the IGP route towards it.
        Routes that would resolve through another BGP route stay unresolved
        (no BGP-over-BGP recursion).
        """
        next_hop = IPv4Address(next_hop)
        for address, (name, prefix_len) in self.address_book().items():
            if prefix_len and name != "lo" \
                    and next_hop in IPv4Network((address, prefix_len)):
                return next_hop, name
        via = self.zebra.rib.lookup(next_hop)
        if via is None or via.source == RouteSource.BGP:
            return None
        if via.is_connected:
            return next_hop, via.interface
        if via.next_hop is None:
            return None
        return via.next_hop, via.interface

    def _on_fib_change(self, prefix: IPv4Network, new: Optional[Route],
                       old: Optional[Route]) -> None:
        """Zebra FIB listener: drives redistribution and re-resolution."""
        if not self.running:
            return
        self._maybe_redistribute(prefix, new)
        if self._in_reevaluate:
            return
        touched_source = (new.source if new is not None
                          else old.source if old is not None else None)
        if touched_source == RouteSource.BGP:
            return
        # An IGP change can re-route (or break) the recursive resolution of
        # a route — but only of routes whose BGP next hop the changed
        # prefix covers (resolution is a longest-prefix match on the next
        # hop, so nothing else can be affected).
        affected = [tracked for tracked, next_hop
                    in self._tracked_next_hops.items() if next_hop in prefix]
        for tracked in sorted(affected,
                              key=lambda p: (int(p.network), p.prefix_len)):
            self._update_zebra(tracked, self._best_received(tracked))

    # ---------------------------------------------------------------- egress
    def _reflects_between(self, source: BGPPeerSession,
                          session: BGPPeerSession) -> bool:
        """Route reflection (RFC 4456, simplified): an iBGP-learned route
        passes to another iBGP peer iff either side of the hop is one of
        our route-reflector clients.  With one reflector per AS (the RPC
        server's hub) this is loop-free without cluster lists."""
        for address in (source.peer_address, session.peer_address):
            neighbor = self.config.neighbor(address)
            if neighbor is not None and neighbor.route_reflector_client:
                return True
        return False

    def _export_candidate(self, session: BGPPeerSession, prefix: IPv4Network,
                          best: Any = _UNSET,
                          local: Any = _UNSET) -> Optional[BGPAnnouncement]:
        """What (if anything) we should be advertising to this peer.

        ``best`` and ``local`` can be passed in by a caller that already
        ran the decision process, so a re-evaluation fanning out to N
        peers computes them once instead of N times.
        """
        if local is _UNSET:
            local = self._local_origination(prefix)
        if local is not None:
            source: Optional[BGPPeerSession] = None
            candidate = local
        else:
            if best is _UNSET:
                best = self._best_received(prefix)
            if best is None:
                return None
            source, candidate = best
            if source is session:
                return None  # never back to the peer it came from
            if source.is_ibgp and session.is_ibgp \
                    and not self._reflects_between(source, session):
                return None  # iBGP routes do not transit iBGP (full mesh)
        neighbor = self.config.neighbor(session.peer_address)
        if local is None and not session.is_ibgp and neighbor is not None \
                and neighbor.relationship in ("peer", "provider") \
                and candidate.as_path \
                and candidate.local_pref < VALLEY_FREE_EXPORT_MIN:
            # Gao-Rexford: only customer-learned or own-AS routes are
            # exported to peers and providers — no valley paths.  An empty
            # AS path means the route originated inside our AS (prepending
            # happens on eBGP egress only), e.g. a redistributed border
            # prefix relayed over iBGP from another border router.
            return None
        export_list = neighbor.export_prefix_list if neighbor is not None else None
        if not self.config.prefix_list_permits(export_list, prefix):
            return None
        if session.is_ibgp:
            # next-hop-self towards iBGP peers: our loopback, resolvable
            # through the IGP; LOCAL_PREF and the AS path travel unchanged.
            return replace(candidate, next_hop=self.router_id)
        med = neighbor.med if neighbor is not None and neighbor.med is not None \
            else 0
        return BGPAnnouncement(
            prefix=prefix, next_hop=session.local_address,
            as_path=_intern_as_path((self.local_as,) + candidate.as_path),
            local_pref=DEFAULT_LOCAL_PREF, med=med)

    def _sync_export(self, session: BGPPeerSession, prefix: IPv4Network,
                     best: Any = _UNSET, local: Any = _UNSET) -> None:
        outgoing = self._export_candidate(session, prefix, best, local)
        previous = session.advertised.get(prefix)
        if outgoing == previous:
            return
        if outgoing is None:
            del session.advertised[prefix]
            self.withdrawals_sent += 1
            self._queue_update(session, previous, withdraw=True)
        else:
            session.advertised[prefix] = outgoing
            self.updates_sent += 1
            self._queue_update(session, outgoing)

    # ---------------------------------------------------------- out batching
    def _queue_update(self, session: BGPPeerSession,
                      announcement: BGPAnnouncement,
                      withdraw: bool = False) -> None:
        if self._batch_depth:
            self._pending_out.setdefault(session.peer_address, []).append(
                (announcement, withdraw))
        else:
            self.broker.deliver(self, session, announcement, withdraw)

    def _begin_batch(self) -> None:
        self._batch_depth += 1

    def _end_batch(self) -> None:
        self._batch_depth -= 1
        if self._batch_depth:
            return
        while self._pending_out or self._pending_eor:
            pending, self._pending_out = self._pending_out, {}
            eor, self._pending_eor = self._pending_eor, {}
            targets = list(pending)
            targets.extend(a for a in eor if a not in pending)
            for peer_address in targets:
                session = self.sessions.get(peer_address)
                if session is None or not session.established:
                    continue
                self.broker.deliver_batch(
                    self, session, pending.get(peer_address, []),
                    eor=peer_address in eor,
                    retained=eor.get(peer_address, False))

    # ------------------------------------------------------------------ status
    @property
    def established_sessions(self) -> List[BGPPeerSession]:
        return [s for s in self.sessions.values() if s.established]

    @property
    def ebgp_sessions(self) -> List[BGPPeerSession]:
        return [s for s in self.sessions.values() if not s.is_ibgp]

    def best_routes(self) -> Dict[IPv4Network, BGPAnnouncement]:
        """The winning announcement per prefix (received routes only)."""
        result: Dict[IPv4Network, BGPAnnouncement] = {}
        for prefix in self._all_prefixes():
            best = self._best_received(prefix)
            if best is not None and self._local_origination(prefix) is None:
                result[prefix] = best[1]
        return result

    def show_ip_bgp_summary(self) -> str:
        """A ``show ip bgp summary``-style dump."""
        lines = [f"{self.hostname}# show ip bgp summary  (AS {self.local_as})"]
        for session in self.sessions.values():
            role = "iBGP" if session.is_ibgp else "eBGP"
            lines.append(f"{str(session.peer_address):<16} {role} "
                         f"AS{session.remote_as:<6} {session.state:<12} "
                         f"pfx rcvd {len(session.received)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<BGPDaemon {self.hostname} AS{self.local_as} "
                f"sessions={len(self.sessions)} "
                f"established={len(self.established_sessions)}>")
