"""BGP-4 speaker: eBGP/iBGP roles, per-peer policy, redistribution, flaps."""

from repro.quagga.bgp.daemon import (
    BGPAnnouncement,
    BGPDaemon,
    BGPPeerSession,
    BGPSessionBroker,
    BGPSessionState,
)

__all__ = [
    "BGPAnnouncement",
    "BGPDaemon",
    "BGPPeerSession",
    "BGPSessionBroker",
    "BGPSessionState",
]
