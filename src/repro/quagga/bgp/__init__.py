"""Simplified BGP speaker (config-complete; OSPF carries the evaluated traffic)."""

from repro.quagga.bgp.daemon import (
    BGPAnnouncement,
    BGPDaemon,
    BGPPeerSession,
    BGPSessionBroker,
    BGPSessionState,
)

__all__ = [
    "BGPAnnouncement",
    "BGPDaemon",
    "BGPPeerSession",
    "BGPSessionBroker",
    "BGPSessionState",
]
