"""OSPFv2 constants (RFC 2328 subset)."""

from __future__ import annotations

from repro.net.addresses import IPv4Address

#: OSPF protocol version implemented here.
OSPF_VERSION = 2

#: AllSPFRouters multicast group — every OSPF packet on a point-to-point
#: interface is addressed here.
ALL_SPF_ROUTERS = IPv4Address("224.0.0.5")

#: Multicast MAC corresponding to 224.0.0.5.
ALL_SPF_ROUTERS_MAC = "01:00:5e:00:00:05"

#: IP protocol number of OSPF.
OSPF_IP_PROTO = 89


class OSPFPacketType:
    HELLO = 1
    DB_DESCRIPTION = 2
    LS_REQUEST = 3
    LS_UPDATE = 4
    LS_ACK = 5


class LSAType:
    ROUTER = 1
    NETWORK = 2
    SUMMARY = 3
    ASBR_SUMMARY = 4
    AS_EXTERNAL = 5


class RouterLinkType:
    POINT_TO_POINT = 1
    TRANSIT = 2
    STUB = 3
    VIRTUAL = 4
    #: A stub link describing a redistributed AS-external prefix.  Stand-in
    #: for type-5 AS-external LSAs (which this Router-LSA-only area never
    #: floods): the prefix rides in the originator's Router LSA like a stub
    #: network but keeps its "external" nature on the wire, so every router
    #: can apply the RFC 2328 preference (intra-area routes always beat
    #: external ones) and tag the resulting RIB entries.  Value 7 is unused
    #: by RFC 2328 link types.  See docs/DESIGN.md ("OSPF external routes").
    EXTERNAL = 7


class NeighborState:
    """Neighbor FSM states, ordered by progress."""

    DOWN = 0
    INIT = 1
    TWO_WAY = 2
    EXSTART = 3
    EXCHANGE = 4
    LOADING = 5
    FULL = 6

    NAMES = {
        DOWN: "Down",
        INIT: "Init",
        TWO_WAY: "2-Way",
        EXSTART: "ExStart",
        EXCHANGE: "Exchange",
        LOADING: "Loading",
        FULL: "Full",
    }


class DDFlags:
    """Database-description packet flags."""

    MASTER = 0x01
    MORE = 0x02
    INIT = 0x04


#: Default protocol timers (seconds), matching Quagga's defaults.
DEFAULT_HELLO_INTERVAL = 10
DEFAULT_DEAD_INTERVAL = 40
DEFAULT_RETRANSMIT_INTERVAL = 5
DEFAULT_SPF_DELAY = 1.0
DEFAULT_SPF_HOLDTIME = 5.0

#: Default interface cost (Quagga: reference bandwidth 100 Mb/s over the
#: link bandwidth; our emulated gigabit links round up to 1, we keep 10 to
#: match the pan-European reference studies).
DEFAULT_INTERFACE_COST = 10

#: Default metric of a redistributed (AS-external) prefix, matching the
#: classic type-2 external default.
DEFAULT_EXTERNAL_METRIC = 20
#: Debounce applied to Router-LSA re-origination triggered by external
#: route changes (a border router learning a BGP table would otherwise
#: flood one LSA per redistributed prefix) — a small MinLSInterval.
EXTERNAL_LSA_DELAY = 1.0
#: Tag carried by RIB routes that OSPF computed from EXTERNAL stub links;
#: the BGP daemon's ``redistribute ospf`` skips tagged routes so external
#: prefixes never re-enter BGP with a truncated AS path.
EXTERNAL_ROUTE_TAG = 1

#: Initial LSA sequence number (RFC 2328 §12.1.6).
INITIAL_SEQUENCE = 0x80000001
#: An LSA whose age reaches MaxAge is flushed from the area (RFC 2328 §14).
MAX_AGE = 3600
#: How often a router re-originates its own LSAs so they never reach
#: MaxAge while it is alive (RFC 2328 appendix B, LSRefreshTime).
LS_REFRESH_TIME = 1800
