"""OSPF neighbor state."""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.net.addresses import IPv4Address
from repro.quagga.ospf.constants import NeighborState


class Neighbor:
    """State kept per OSPF neighbor on an interface."""

    def __init__(self, router_id: IPv4Address, address: IPv4Address) -> None:
        self.router_id = IPv4Address(router_id)
        #: Source IP of the neighbor's packets — the next hop for SPF routes.
        self.address = IPv4Address(address)
        self.state = NeighborState.DOWN
        self.dd_sequence = 0
        self.is_master = False
        #: LSAs we still need from this neighbor: set of LSDB keys.
        self.ls_request_list: Set[Tuple[int, int, int]] = set()
        #: Simulation event for the inactivity (dead) timer.
        self.dead_timer_event = None
        self.last_heard: float = 0.0
        self.full_since: Optional[float] = None

    @property
    def state_name(self) -> str:
        return NeighborState.NAMES.get(self.state, str(self.state))

    @property
    def is_adjacent(self) -> bool:
        return self.state == NeighborState.FULL

    def __repr__(self) -> str:
        return f"<Neighbor {self.router_id} ({self.address}) {self.state_name}>"
