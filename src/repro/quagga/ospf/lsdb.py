"""The link-state database (LSDB) of an OSPF daemon."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.quagga.ospf.constants import MAX_AGE
from repro.quagga.ospf.packets import LSAHeader, RouterLSA


class LSDB:
    """Router LSAs indexed by (type, link-state id, advertising router).

    The database carries a monotonically increasing :attr:`version` that
    bumps on every mutation.  Consumers (the SPF module) key derived data —
    the router graph, the stub-prefix list — on it, so an unchanged database
    never triggers a recomputation.  A secondary index by advertising router
    keeps :meth:`router_lsa` and :meth:`remove_from` O(1) in the database
    size instead of scanning every LSA.

    LSA aging follows the RFC 2328 MaxAge rules in two forms:

    * an incoming LSA carrying ``age >= MAX_AGE`` is a *flush* — it removes
      the stored copy it supersedes instead of being installed (premature
      aging, used by a daemon withdrawing its own LSA on shutdown);
    * :meth:`expire_aged` retires LSAs whose age — origination age plus
      time spent in this database — has crossed ``MAX_AGE``.
    """

    def __init__(self) -> None:
        self._lsas: Dict[Tuple[int, int, int], RouterLSA] = {}
        #: advertising-router int -> {key -> RouterLSA}, insertion-ordered.
        self._by_adv: Dict[int, Dict[Tuple[int, int, int], RouterLSA]] = {}
        #: key -> simulated time the LSA entered this database (None when
        #: the caller gave no clock: the LSA then never accrues residence
        #: age and only its origination age counts towards MaxAge).
        self._installed_at: Dict[Tuple[int, int, int], Optional[float]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter; equal versions mean identical content."""
        return self._version

    def __len__(self) -> int:
        return len(self._lsas)

    def __contains__(self, key: Tuple[int, int, int]) -> bool:
        return key in self._lsas

    def get(self, key: Tuple[int, int, int]) -> Optional[RouterLSA]:
        return self._lsas.get(key)

    def router_lsa(self, router_id: IPv4Address) -> Optional[RouterLSA]:
        """Find the router LSA originated by a given router id."""
        bucket = self._by_adv.get(int(IPv4Address(router_id)))
        if not bucket:
            return None
        return next(iter(bucket.values()))

    @property
    def lsas(self) -> List[RouterLSA]:
        return list(self._lsas.values())

    @property
    def headers(self) -> List[LSAHeader]:
        return [lsa.header for lsa in self._lsas.values()]

    def install(self, lsa: RouterLSA, now: Optional[float] = None) -> bool:
        """Install an LSA if it is newer than what we hold.

        An LSA at ``MAX_AGE`` acts as a flush: a fresher MaxAge copy removes
        the stored instance (so the change propagates — the caller refloods
        it) and is not itself retained; with no stored copy to supersede it
        is simply discarded.

        ``now`` is the installation timestamp used by :meth:`expire_aged`;
        callers that track no clock may omit it, in which case the LSA
        accrues no residence age (it can still expire on origination age).

        Returns True when the database changed (new, fresher, or flushed).
        """
        existing = self._lsas.get(lsa.key)
        if lsa.header.age >= MAX_AGE:
            if existing is None or not lsa.header.is_newer_than(existing.header):
                return False
            return self.remove(lsa.key)
        if existing is not None and not lsa.header.is_newer_than(existing.header):
            return False
        self._lsas[lsa.key] = lsa
        self._by_adv.setdefault(int(lsa.header.advertising_router), {})[lsa.key] = lsa
        self._installed_at[lsa.key] = now
        self._version += 1
        return True

    def remove(self, key: Tuple[int, int, int]) -> bool:
        lsa = self._lsas.pop(key, None)
        if lsa is None:
            return False
        bucket = self._by_adv.get(int(lsa.header.advertising_router))
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._by_adv[int(lsa.header.advertising_router)]
        self._installed_at.pop(key, None)
        self._version += 1
        return True

    def remove_from(self, advertising_router: IPv4Address) -> int:
        """Drop every LSA originated by a router (used when it goes away)."""
        router = int(IPv4Address(advertising_router))
        bucket = self._by_adv.pop(router, None)
        if not bucket:
            return 0
        for key in bucket:
            del self._lsas[key]
            self._installed_at.pop(key, None)
        self._version += 1
        return len(bucket)

    def age_of(self, key: Tuple[int, int, int], now: float) -> Optional[float]:
        """Effective age of a stored LSA: origination age + residence time."""
        lsa = self._lsas.get(key)
        if lsa is None:
            return None
        installed_at = self._installed_at.get(key)
        if installed_at is None:  # installed without a clock
            return float(lsa.header.age)
        return lsa.header.age + (now - installed_at)

    def expire_aged(self, now: float) -> List[Tuple[int, int, int]]:
        """Retire every LSA whose effective age reached ``MAX_AGE``.

        Returns the removed keys (callers re-originate their own LSA and
        re-run SPF when anything expired).
        """
        expired = [key for key in self._lsas
                   if self.age_of(key, now) >= MAX_AGE]
        for key in expired:
            self.remove(key)
        return expired

    def missing_or_older_than(self, headers: List[LSAHeader]) -> List[LSAHeader]:
        """Which of the advertised LSAs do we need to request?"""
        needed = []
        for header in headers:
            existing = self._lsas.get(header.key)
            if existing is None or header.is_newer_than(existing.header):
                needed.append(header)
        return needed

    def __repr__(self) -> str:
        return f"<LSDB lsas={len(self._lsas)} v={self._version}>"
