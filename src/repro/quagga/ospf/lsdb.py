"""The link-state database (LSDB) of an OSPF daemon."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.quagga.ospf.packets import LSAHeader, RouterLSA


class LSDB:
    """Router LSAs indexed by (type, link-state id, advertising router)."""

    def __init__(self) -> None:
        self._lsas: Dict[Tuple[int, int, int], RouterLSA] = {}

    def __len__(self) -> int:
        return len(self._lsas)

    def __contains__(self, key: Tuple[int, int, int]) -> bool:
        return key in self._lsas

    def get(self, key: Tuple[int, int, int]) -> Optional[RouterLSA]:
        return self._lsas.get(key)

    def router_lsa(self, router_id: IPv4Address) -> Optional[RouterLSA]:
        """Find the router LSA originated by a given router id."""
        for lsa in self._lsas.values():
            if lsa.header.advertising_router == IPv4Address(router_id):
                return lsa
        return None

    @property
    def lsas(self) -> List[RouterLSA]:
        return list(self._lsas.values())

    @property
    def headers(self) -> List[LSAHeader]:
        return [lsa.header for lsa in self._lsas.values()]

    def install(self, lsa: RouterLSA) -> bool:
        """Install an LSA if it is newer than what we hold.

        Returns True when the database changed (new or fresher LSA).
        """
        existing = self._lsas.get(lsa.key)
        if existing is not None and not lsa.header.is_newer_than(existing.header):
            return False
        self._lsas[lsa.key] = lsa
        return True

    def remove(self, key: Tuple[int, int, int]) -> bool:
        return self._lsas.pop(key, None) is not None

    def remove_from(self, advertising_router: IPv4Address) -> int:
        """Drop every LSA originated by a router (used when it goes away)."""
        router = IPv4Address(advertising_router)
        keys = [key for key, lsa in self._lsas.items()
                if lsa.header.advertising_router == router]
        for key in keys:
            del self._lsas[key]
        return len(keys)

    def missing_or_older_than(self, headers: List[LSAHeader]) -> List[LSAHeader]:
        """Which of the advertised LSAs do we need to request?"""
        needed = []
        for header in headers:
            existing = self._lsas.get(header.key)
            if existing is None or header.is_newer_than(existing.header):
                needed.append(header)
        return needed

    def __repr__(self) -> str:
        return f"<LSDB lsas={len(self._lsas)}>"
