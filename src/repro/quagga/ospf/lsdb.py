"""The link-state database (LSDB) of an OSPF daemon."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.quagga.ospf.packets import LSAHeader, RouterLSA


class LSDB:
    """Router LSAs indexed by (type, link-state id, advertising router).

    The database carries a monotonically increasing :attr:`version` that
    bumps on every mutation.  Consumers (the SPF module) key derived data —
    the router graph, the stub-prefix list — on it, so an unchanged database
    never triggers a recomputation.  A secondary index by advertising router
    keeps :meth:`router_lsa` and :meth:`remove_from` O(1) in the database
    size instead of scanning every LSA.
    """

    def __init__(self) -> None:
        self._lsas: Dict[Tuple[int, int, int], RouterLSA] = {}
        #: advertising-router int -> {key -> RouterLSA}, insertion-ordered.
        self._by_adv: Dict[int, Dict[Tuple[int, int, int], RouterLSA]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter; equal versions mean identical content."""
        return self._version

    def __len__(self) -> int:
        return len(self._lsas)

    def __contains__(self, key: Tuple[int, int, int]) -> bool:
        return key in self._lsas

    def get(self, key: Tuple[int, int, int]) -> Optional[RouterLSA]:
        return self._lsas.get(key)

    def router_lsa(self, router_id: IPv4Address) -> Optional[RouterLSA]:
        """Find the router LSA originated by a given router id."""
        bucket = self._by_adv.get(int(IPv4Address(router_id)))
        if not bucket:
            return None
        return next(iter(bucket.values()))

    @property
    def lsas(self) -> List[RouterLSA]:
        return list(self._lsas.values())

    @property
    def headers(self) -> List[LSAHeader]:
        return [lsa.header for lsa in self._lsas.values()]

    def install(self, lsa: RouterLSA) -> bool:
        """Install an LSA if it is newer than what we hold.

        Returns True when the database changed (new or fresher LSA).
        """
        existing = self._lsas.get(lsa.key)
        if existing is not None and not lsa.header.is_newer_than(existing.header):
            return False
        self._lsas[lsa.key] = lsa
        self._by_adv.setdefault(int(lsa.header.advertising_router), {})[lsa.key] = lsa
        self._version += 1
        return True

    def remove(self, key: Tuple[int, int, int]) -> bool:
        lsa = self._lsas.pop(key, None)
        if lsa is None:
            return False
        bucket = self._by_adv.get(int(lsa.header.advertising_router))
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._by_adv[int(lsa.header.advertising_router)]
        self._version += 1
        return True

    def remove_from(self, advertising_router: IPv4Address) -> int:
        """Drop every LSA originated by a router (used when it goes away)."""
        router = int(IPv4Address(advertising_router))
        bucket = self._by_adv.pop(router, None)
        if not bucket:
            return 0
        for key in bucket:
            del self._lsas[key]
        self._version += 1
        return len(bucket)

    def missing_or_older_than(self, headers: List[LSAHeader]) -> List[LSAHeader]:
        """Which of the advertised LSAs do we need to request?"""
        needed = []
        for header in headers:
            existing = self._lsas.get(header.key)
            if existing is None or header.is_newer_than(existing.header):
                needed.append(header)
        return needed

    def __repr__(self) -> str:
        return f"<LSDB lsas={len(self._lsas)} v={self._version}>"
