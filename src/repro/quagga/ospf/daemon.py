"""The ospfd daemon: ties interfaces, LSDB, flooding and SPF together.

One :class:`OSPFDaemon` runs inside every RouteFlow virtual machine.  It is
configured exclusively from a parsed ``ospfd.conf`` (produced by the RPC
server), announces a Router LSA describing its point-to-point adjacencies
and connected prefixes, floods database changes, and installs the SPF
result into the VM's zebra RIB — from where the RouteFlow client exports
routes to the physical switch.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional

from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.packet import DecodeError
from repro.quagga.configfile import InterfaceConfig, OSPFConfig
from repro.quagga.ospf.constants import (
    ALL_SPF_ROUTERS,
    DEFAULT_EXTERNAL_METRIC,
    DEFAULT_INTERFACE_COST,
    DEFAULT_SPF_DELAY,
    DEFAULT_SPF_HOLDTIME,
    EXTERNAL_LSA_DELAY,
    EXTERNAL_ROUTE_TAG,
    INITIAL_SEQUENCE,
    LS_REFRESH_TIME,
    MAX_AGE,
    NeighborState,
)
from repro.quagga.ospf.interface import OSPFInterface
from repro.quagga.ospf.lsdb import LSDB
from repro.quagga.ospf.neighbor import Neighbor
from repro.quagga.ospf.packets import OSPFPacket, RouterLSA, RouterLink
from repro.quagga.ospf.spf import compute_routes
from repro.quagga.rib import Route, RouteSource
from repro.quagga.zebra import ZebraDaemon
from repro.sim import PeriodicTask, Simulator

LOG = logging.getLogger(__name__)

#: Transmit callback provided by the hosting VM:
#: ``send(interface_name, destination_ip, payload_bytes)``.
SendCallback = Callable[[str, IPv4Address, bytes], None]


class OSPFDaemon:
    """An OSPFv2 routing daemon for one virtual machine."""

    def __init__(self, sim: Simulator, zebra: ZebraDaemon, config: OSPFConfig,
                 interfaces: List[InterfaceConfig], send_callback: SendCallback,
                 hostname: str = "", spf_delay: float = DEFAULT_SPF_DELAY,
                 spf_holdtime: float = DEFAULT_SPF_HOLDTIME,
                 interface_cost: int = DEFAULT_INTERFACE_COST) -> None:
        if config.router_id is None:
            raise ValueError("OSPF configuration must carry a router id")
        self.sim = sim
        self.zebra = zebra
        self.config = config
        self.router_id = IPv4Address(config.router_id)
        self.hostname = hostname or config.hostname
        self.send_callback = send_callback
        self.spf_delay = spf_delay
        self.spf_holdtime = spf_holdtime
        self.interface_cost = interface_cost
        self._spf_label = f"ospf:{self.hostname}:spf"
        #: RFC 2328 LSRefreshTime: re-originate our Router LSA periodically
        #: so it never reaches MaxAge in the area while we are alive —
        #: without this, :meth:`LSDB.expire_aged` would flush *healthy*
        #: routers' LSAs in any simulation longer than MAX_AGE.
        self._refresh_task = PeriodicTask(
            self.sim, LS_REFRESH_TIME, self._refresh_router_lsa,
            name=f"ospf:{self.hostname}:lsa-refresh")
        self.lsdb = LSDB()
        self.interfaces: Dict[str, OSPFInterface] = {}
        self._interface_configs = list(interfaces)
        self._sequence = INITIAL_SEQUENCE
        #: Passive (loopback) interfaces: advertised as stub prefixes in the
        #: Router LSA but running no hello machinery — interface name ->
        #: (network address, netmask, cost).  Empty outside interdomain
        #: deployments.
        self._passive_prefixes: Dict[str, tuple] = {}
        #: Redistributed AS-external prefixes (``redistribute bgp`` /
        #: ``redistribute connected``): prefix -> metric.  Carried as
        #: EXTERNAL stub links in the Router LSA (the type-5 stand-in).
        self._external_routes: Dict[IPv4Network, int] = {}
        #: Interface name -> prefix for externals that came from
        #: ``redistribute connected`` (an eBGP border link): withdrawn on
        #: carrier loss, re-announced on restore.
        self._connected_externals: Dict[str, IPv4Network] = {}
        self._reoriginate_scheduled = False
        self._spf_scheduled = False
        self._last_spf_time: Optional[float] = None
        #: prefix -> Route as last installed, the daemon's copy of its own
        #: snapshot in the RIB.  An SPF run that reproduces the same result
        #: skips the zebra round trip entirely; otherwise the *whole*
        #: snapshot is handed to zebra for reconciliation, so stale routes
        #: (changed next hop, vanished prefix) are withdrawn, not leaked.
        self._installed_routes: Dict[IPv4Network, Route] = {}
        self.running = False
        # Statistics used by the experiments.
        self.spf_runs = 0
        self.lsas_originated = 0
        self.full_adjacency_times: List[float] = []
        self._state_listeners: List[Callable[[OSPFInterface, Neighbor, int, int], None]] = []

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        """Bring up OSPF on every configured interface covered by a network
        statement and originate the initial Router LSA."""
        self.running = True
        for iface in self._interface_configs:
            self.add_interface(iface)
        self._originate_router_lsa()
        self._refresh_task.start()

    def stop(self, flush: bool = True) -> None:
        """Shut the daemon down.

        ``flush`` floods a MaxAge copy of our Router LSA first (RFC 2328
        premature aging), so the rest of the area withdraws our routes
        immediately instead of waiting out its dead intervals.
        """
        if flush and self.running and self.interfaces:
            flush_lsa = RouterLSA.originate(
                router_id=self.router_id, sequence=self._next_sequence(),
                links=[], age=MAX_AGE)
            self.lsdb.install(flush_lsa, now=self.sim.now)
            self._flood(flush_lsa, exclude=None)
        self.running = False
        self._refresh_task.stop()
        for interface in self.interfaces.values():
            interface.stop()
        self.interfaces.clear()
        self._passive_prefixes.clear()
        self._external_routes.clear()
        self._connected_externals.clear()
        self.zebra.replace_routes(RouteSource.OSPF, [])
        self._installed_routes = {}

    def add_interface(self, iface: InterfaceConfig) -> Optional[OSPFInterface]:
        """Enable OSPF on an interface if a ``network`` statement covers it.

        Called at startup for configured interfaces and again by the VM when
        the RPC server adds interfaces later (new links discovered after the
        daemon booted).
        """
        if not self.running or iface.ip is None or iface.network is None:
            return None
        if iface.name in self.interfaces:
            return self.interfaces[iface.name]
        if iface.name == "lo" or iface.name in self._passive_prefixes:
            # Loopbacks are passive: no hellos, no adjacencies — just a stub
            # prefix in the Router LSA (when a network statement covers it).
            if self.config.covers(iface.network):
                entry = (iface.network.network, iface.network.netmask,
                         self.interface_cost)
                if self._passive_prefixes.get(iface.name) != entry:
                    self._passive_prefixes[iface.name] = entry
                    self._originate_router_lsa()
            return None
        if not self.config.covers(iface.network):
            # Interfaces outside every network statement (an eBGP border
            # link) can still be injected as AS-external prefixes when the
            # configuration says ``redistribute connected``.
            if self.config.redistribute_connected:
                self._connected_externals[iface.name] = iface.network
                self.announce_external(iface.network)
            return None
        interface = OSPFInterface(
            daemon=self, name=iface.name, ip=iface.ip, prefix_len=iface.prefix_len,
            cost=self.interface_cost, hello_interval=self.config.hello_interval,
            dead_interval=self.config.dead_interval)
        self.interfaces[iface.name] = interface
        interface.start()
        self._originate_router_lsa()
        return interface

    def interface_down(self, name: str) -> None:
        """An enabled interface lost carrier (link or node failure).

        Adjacencies over the interface are torn down through the neighbor
        FSM, the Router LSA is re-originated without the interface's links
        (lost FULL adjacencies already trigger that; an interface with no
        adjacency still needs its stub prefix withdrawn) and SPF re-runs.
        A redistributed-connected external (an eBGP border prefix) on the
        interface is withdrawn too — without this the area would keep
        routing towards a border subnet the border router itself lost.
        """
        external = self._connected_externals.get(name)
        if external is not None:
            self.withdraw_external(external)
        interface = self.interfaces.get(name)
        if interface is None or not interface.up:
            return
        had_full = bool(interface.full_neighbors)
        interface.bring_down()
        if not had_full:
            self._originate_router_lsa()

    def interface_up(self, name: str) -> None:
        """Carrier returned on a downed interface: resume OSPF over it."""
        external = self._connected_externals.get(name)
        if external is not None and self.config.redistribute_connected:
            self.announce_external(external)
        interface = self.interfaces.get(name)
        if interface is None or interface.up:
            return
        interface.bring_up()
        self._originate_router_lsa()

    # --------------------------------------------------------------- transport
    def send_packet(self, interface_name: str, packet: OSPFPacket) -> None:
        """Hand an OSPF packet to the VM for transmission on an interface."""
        self.send_callback(interface_name, ALL_SPF_ROUTERS, packet.encode())

    def send_bytes(self, interface_name: str, wire: bytes) -> None:
        """Like :meth:`send_packet` for an already-encoded packet."""
        self.send_callback(interface_name, ALL_SPF_ROUTERS, wire)

    def receive_packet(self, interface_name: str, src_ip: IPv4Address, data: bytes) -> None:
        """Called by the VM when an OSPF packet arrives on an interface."""
        interface = self.interfaces.get(interface_name)
        if interface is None:
            return
        try:
            packet = data if isinstance(data, OSPFPacket) else OSPFPacket.decode(data)
        except DecodeError as exc:
            LOG.warning("%s: bad OSPF packet on %s: %s", self.hostname,
                        interface_name, exc)
            return
        interface.handle_packet(src_ip, packet)

    # ---------------------------------------------------------------- LSA side
    def _next_sequence(self) -> int:
        sequence = self._sequence
        self._sequence += 1
        return sequence

    def _originate_router_lsa(self) -> None:
        """(Re-)originate our Router LSA and flood it."""
        if not self.running:
            return
        links: List[RouterLink] = []
        for interface in self.interfaces.values():
            if not interface.up:
                continue
            for neighbor in interface.full_neighbors:
                links.append(RouterLink.point_to_point(
                    neighbor_router_id=neighbor.router_id,
                    local_interface_ip=interface.ip,
                    metric=interface.cost))
            links.append(RouterLink.stub(
                network=interface.network.network,
                netmask=interface.netmask,
                metric=interface.cost))
        for name in sorted(self._passive_prefixes):
            network, netmask, cost = self._passive_prefixes[name]
            links.append(RouterLink.stub(network=network, netmask=netmask,
                                         metric=cost))
        for prefix in sorted(self._external_routes,
                             key=lambda p: (int(p.network), p.prefix_len)):
            links.append(RouterLink.external(
                network=prefix.network, netmask=prefix.netmask,
                metric=self._external_routes[prefix]))
        lsa = RouterLSA.originate(router_id=self.router_id,
                                  sequence=self._next_sequence(), links=links)
        self.lsdb.install(lsa, now=self.sim.now)
        self.lsas_originated += 1
        self._flood(lsa, exclude=None)
        self.schedule_spf()

    def _refresh_router_lsa(self) -> None:
        """Periodic LSRefreshTime re-origination of our own Router LSA."""
        if self.running and self.interfaces:
            self._originate_router_lsa()

    # ------------------------------------------------------- external routes
    def announce_external(self, prefix: IPv4Network,
                          metric: int = DEFAULT_EXTERNAL_METRIC) -> None:
        """Redistribute an AS-external prefix into the area.

        The prefix rides in our Router LSA as an EXTERNAL stub link (the
        type-5 LSA stand-in) and every router in the area derives a route
        to it through us, tagged :data:`EXTERNAL_ROUTE_TAG` in the RIB.
        Re-origination is debounced by :data:`EXTERNAL_LSA_DELAY` so a
        border router importing a whole BGP table floods one LSA, not one
        per prefix.  Safe to call before :meth:`start`.
        """
        if self._external_routes.get(prefix) == metric:
            return
        self._external_routes[prefix] = metric
        self._schedule_reoriginate()

    def withdraw_external(self, prefix: IPv4Network) -> None:
        """Stop redistributing an AS-external prefix."""
        if self._external_routes.pop(prefix, None) is not None:
            self._schedule_reoriginate()

    @property
    def external_routes(self) -> Dict[IPv4Network, int]:
        """The prefixes this router currently redistributes (prefix -> metric)."""
        return dict(self._external_routes)

    def _schedule_reoriginate(self) -> None:
        if self._reoriginate_scheduled or not self.running:
            return
        self._reoriginate_scheduled = True
        self.sim.schedule(EXTERNAL_LSA_DELAY, self._do_reoriginate,
                          label=f"ospf:{self.hostname}:external-lsa")

    def _do_reoriginate(self) -> None:
        self._reoriginate_scheduled = False
        if self.running:
            self._originate_router_lsa()

    def on_lsa_installed(self, lsa: RouterLSA, from_interface: Optional[OSPFInterface]) -> None:
        """A fresher LSA entered the LSDB via flooding: propagate and re-run SPF."""
        self._flood(lsa, exclude=from_interface)
        self.schedule_spf()

    def _flood(self, lsa: RouterLSA, exclude: Optional[OSPFInterface]) -> None:
        for interface in self.interfaces.values():
            if interface is exclude:
                continue
            interface.flood([lsa])

    # ------------------------------------------------------------- FSM events
    def add_state_listener(self, listener: Callable[[OSPFInterface, Neighbor, int, int], None]) -> None:
        self._state_listeners.append(listener)

    def on_neighbor_state_change(self, interface: OSPFInterface, neighbor: Neighbor,
                                 old_state: int, new_state: int) -> None:
        if new_state == NeighborState.FULL:
            self.full_adjacency_times.append(self.sim.now)
            self._originate_router_lsa()
        elif old_state == NeighborState.FULL:
            # Lost an adjacency: advertise the reduced connectivity.
            self._originate_router_lsa()
        for listener in self._state_listeners:
            listener(interface, neighbor, old_state, new_state)

    # --------------------------------------------------------------------- SPF
    def schedule_spf(self) -> None:
        """Schedule an SPF run, honouring the delay/holdtime throttle."""
        if self._spf_scheduled or not self.running:
            return
        delay = self.spf_delay
        if self._last_spf_time is not None:
            since_last = self.sim.now - self._last_spf_time
            if since_last < self.spf_holdtime:
                delay = max(delay, self.spf_holdtime - since_last)
        self._spf_scheduled = True
        self.sim.schedule(delay, self._run_spf, label=self._spf_label)

    def spf_routes(self) -> Dict[IPv4Network, Route]:
        """The daemon's current SPF result as resolved zebra routes.

        Pure computation (no RIB side effects): SPF over the LSDB plus
        next-hop resolution against the adjacency state.  Route objects
        from the installed snapshot are reused when unchanged, so the
        caller can compare snapshots cheaply (mostly by identity).
        """
        routes = compute_routes(self.lsdb, self.router_id)
        new_routes: Dict[IPv4Network, Route] = {}
        # Neighbor states cannot change while this event runs, so each
        # distinct first hop resolves once per SPF run, not once per route.
        resolutions: Dict[IPv4Address, Optional[tuple]] = {}
        for spf_route in routes:
            if spf_route.first_hop is None:
                continue  # local stub, covered by a connected route
            first_hop = spf_route.first_hop
            if first_hop in resolutions:
                resolution = resolutions[first_hop]
            else:
                resolution = resolutions[first_hop] = self._resolve_next_hop(first_hop)
            if resolution is None:
                continue
            next_hop, interface_name = resolution
            prefix = spf_route.prefix
            tag = EXTERNAL_ROUTE_TAG if spf_route.external else 0
            installed = self._installed_routes.get(prefix)
            if installed is not None and installed.next_hop == next_hop \
                    and installed.interface == interface_name \
                    and installed.metric == spf_route.cost \
                    and installed.tag == tag:
                new_routes[prefix] = installed
            else:
                new_routes[prefix] = Route(
                    prefix=prefix, next_hop=next_hop, interface=interface_name,
                    source=RouteSource.OSPF, metric=spf_route.cost, tag=tag)
        return new_routes

    def _run_spf(self) -> None:
        self._spf_scheduled = False
        if not self.running:
            return
        self._last_spf_time = self.sim.now
        self.spf_runs += 1
        expired = self.lsdb.expire_aged(self.sim.now)
        if any(key[2] == int(self.router_id) for key in expired):
            # Defensive: the LSRefreshTime task re-originates well before
            # MaxAge, so our own LSA should never expire while we run —
            # but if it somehow did, re-originate rather than vanish.
            self._originate_router_lsa()
        new_routes = self.spf_routes()
        if new_routes != self._installed_routes:
            # Hand zebra the full snapshot: stale candidates — including a
            # same-prefix route whose next hop changed — are withdrawn by
            # the RIB's reconciliation, not left to win equal-metric
            # tie-breaks forever.
            self.zebra.replace_routes(RouteSource.OSPF, list(new_routes.values()))
        self._installed_routes = new_routes

    def _resolve_next_hop(self, first_hop_router: IPv4Address):
        """Map a first-hop router id to (next-hop IP, outgoing interface)."""
        for interface in self.interfaces.values():
            neighbor = interface.neighbors.get(IPv4Address(first_hop_router))
            if neighbor is not None and neighbor.state == NeighborState.FULL:
                return neighbor.address, interface.name
        return None

    # ------------------------------------------------------------------ status
    @property
    def full_neighbor_count(self) -> int:
        return sum(len(i.full_neighbors) for i in self.interfaces.values())

    @property
    def neighbor_count(self) -> int:
        return sum(len(i.neighbors) for i in self.interfaces.values())

    def show_ip_ospf_neighbor(self) -> str:
        """A ``show ip ospf neighbor``-style dump."""
        lines = [f"{self.hostname}# show ip ospf neighbor"]
        for interface in self.interfaces.values():
            for neighbor in interface.neighbors.values():
                lines.append(f"{str(neighbor.router_id):<16} {neighbor.state_name:<10} "
                             f"{str(neighbor.address):<16} {interface.name}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<OSPFDaemon {self.hostname} rid={self.router_id} "
                f"ifaces={len(self.interfaces)} lsdb={len(self.lsdb)}>")
