"""Per-interface OSPF machinery: hello protocol and the neighbor FSM.

Every OSPF-enabled VM interface is treated as a point-to-point network (the
RouteFlow virtual topology only contains router-to-router links), so there
is no DR/BDR election and adjacencies form with every neighbor heard on the
interface.  The adjacency walks the standard state sequence
Down → Init → ExStart → Exchange → (Loading) → Full via real Hello,
Database-Description, LS-Request, LS-Update and LS-Ack packets.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.net.addresses import IPv4Address, IPv4Network
from repro.quagga.ospf.constants import DDFlags, NeighborState
from repro.quagga.ospf.lsdb import LSDB
from repro.quagga.ospf.neighbor import Neighbor
from repro.quagga.ospf.packets import (
    DBDescriptionPacket,
    HelloPacket,
    LSAckPacket,
    LSRequestPacket,
    LSUpdatePacket,
    OSPFPacket,
)
from repro.sim import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.quagga.ospf.daemon import OSPFDaemon

LOG = logging.getLogger(__name__)


class OSPFInterface:
    """OSPF state bound to one VM interface."""

    def __init__(self, daemon: "OSPFDaemon", name: str, ip: IPv4Address,
                 prefix_len: int, cost: int, hello_interval: float,
                 dead_interval: float, area_id: IPv4Address = IPv4Address(0)) -> None:
        self.daemon = daemon
        self.name = name
        self.ip = IPv4Address(ip)
        self.prefix_len = prefix_len
        self.cost = cost
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval
        self.area_id = IPv4Address(area_id)
        #: Operational state: a downed interface sends no hellos, accepts no
        #: packets and contributes no links to the Router LSA.
        self.up = True
        self.neighbors: Dict[IPv4Address, Neighbor] = {}
        #: Connected prefix and netmask, fixed at construction (the ip and
        #: prefix length never change) — hello emission reads them per tick.
        self.network = IPv4Network((self.ip, prefix_len))
        self.netmask = self.network.netmask
        self._hello_task = PeriodicTask(daemon.sim, hello_interval, self.send_hello,
                                        name=f"ospf:{daemon.hostname}:{name}:hello")
        self._dd_sequence = 1
        self._dead_label = f"ospf:{daemon.hostname}:{name}:dead"
        #: (neighbor-id tuple, encoded hello) — hellos only change when the
        #: neighbor set does, so steady-state ticks resend cached bytes.
        self._hello_wire: Optional[tuple] = None
        self.hello_sent = 0
        self.hello_received = 0

    # -------------------------------------------------------------- properties
    @property
    def full_neighbors(self) -> List[Neighbor]:
        return [n for n in self.neighbors.values() if n.state == NeighborState.FULL]

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin sending hellos (first one immediately, as Quagga does)."""
        self._hello_task.start(fire_immediately=True)

    def stop(self) -> None:
        self._hello_task.stop()
        for neighbor in self.neighbors.values():
            if neighbor.dead_timer_event is not None:
                neighbor.dead_timer_event.cancel()
        self.neighbors.clear()

    def bring_down(self) -> None:
        """Interface lost carrier: stop hellos and tear every adjacency down.

        Unlike :meth:`stop` this walks the neighbor FSM (each adjacency
        transitions to Down), so the daemon re-originates its Router LSA for
        every lost FULL adjacency and schedules SPF — the withdrawal then
        propagates through the RIB to the FIB and the physical switch.
        """
        if not self.up:
            return
        self.up = False
        self._hello_task.stop()
        self._hello_wire = None
        for neighbor in list(self.neighbors.values()):
            if neighbor.dead_timer_event is not None:
                neighbor.dead_timer_event.cancel()
                neighbor.dead_timer_event = None
            del self.neighbors[neighbor.router_id]
            self._set_state(neighbor, NeighborState.DOWN)

    def bring_up(self) -> None:
        """Carrier returned: resume hellos so adjacencies can re-form."""
        if self.up:
            return
        self.up = True
        self._hello_task.start(fire_immediately=True)

    # ------------------------------------------------------------------ hello
    def send_hello(self) -> None:
        if not self.up:
            return
        neighbor_ids = tuple(self.neighbors)
        cached = self._hello_wire
        if cached is None or cached[0] != neighbor_ids:
            hello = HelloPacket(
                router_id=self.daemon.router_id,
                network_mask=self.netmask,
                hello_interval=int(self.hello_interval),
                dead_interval=int(self.dead_interval),
                neighbors=[n.router_id for n in self.neighbors.values()],
                area_id=self.area_id,
            )
            cached = self._hello_wire = (neighbor_ids, hello.encode())
        self.hello_sent += 1
        self.daemon.send_bytes(self.name, cached[1])

    # --------------------------------------------------------------- dispatch
    def handle_packet(self, src_ip: IPv4Address, packet: OSPFPacket) -> None:
        if not self.up:
            return  # a frame in flight when the interface went down
        if packet.router_id == self.daemon.router_id:
            return  # our own multicast reflected back
        if isinstance(packet, HelloPacket):
            self._handle_hello(src_ip, packet)
        elif isinstance(packet, DBDescriptionPacket):
            self._handle_dd(packet)
        elif isinstance(packet, LSRequestPacket):
            self._handle_ls_request(packet)
        elif isinstance(packet, LSUpdatePacket):
            self._handle_ls_update(packet)
        elif isinstance(packet, LSAckPacket):
            pass  # no retransmission queues on loss-free virtual links

    # ------------------------------------------------------------------ hello
    def _handle_hello(self, src_ip: IPv4Address, hello: HelloPacket) -> None:
        self.hello_received += 1
        neighbor = self.neighbors.get(hello.router_id)
        if neighbor is None:
            neighbor = Neighbor(router_id=hello.router_id, address=src_ip)
            self.neighbors[hello.router_id] = neighbor
            self._set_state(neighbor, NeighborState.INIT)
        neighbor.address = IPv4Address(src_ip)
        neighbor.last_heard = self.daemon.sim.now
        self._restart_dead_timer(neighbor)
        bidirectional = self.daemon.router_id in hello.neighbors
        if bidirectional and neighbor.state < NeighborState.EXSTART:
            self._start_adjacency(neighbor)
        elif not bidirectional and neighbor.state >= NeighborState.TWO_WAY:
            # One-way received: fall back and retry adjacency from scratch.
            self._set_state(neighbor, NeighborState.INIT)

    def _restart_dead_timer(self, neighbor: Neighbor) -> None:
        if neighbor.dead_timer_event is not None:
            neighbor.dead_timer_event.cancel()
        neighbor.dead_timer_event = self.daemon.sim.schedule(
            self.dead_interval, self._neighbor_dead, neighbor,
            label=self._dead_label)

    def _neighbor_dead(self, neighbor: Neighbor) -> None:
        if self.neighbors.get(neighbor.router_id) is not neighbor:
            return
        LOG.info("%s/%s: neighbor %s dead", self.daemon.hostname, self.name,
                 neighbor.router_id)
        del self.neighbors[neighbor.router_id]
        self._set_state(neighbor, NeighborState.DOWN)

    # -------------------------------------------------------------- adjacency
    def _start_adjacency(self, neighbor: Neighbor) -> None:
        self._set_state(neighbor, NeighborState.EXSTART)
        neighbor.dd_sequence = self._dd_sequence
        self._dd_sequence += 1
        dd = DBDescriptionPacket(
            router_id=self.daemon.router_id,
            dd_sequence=neighbor.dd_sequence,
            flags=DDFlags.INIT | DDFlags.MORE | DDFlags.MASTER,
            lsa_headers=[],
            area_id=self.area_id,
        )
        self.daemon.send_packet(self.name, dd)

    def _handle_dd(self, dd: DBDescriptionPacket) -> None:
        neighbor = self.neighbors.get(dd.router_id)
        if neighbor is None or neighbor.state < NeighborState.EXSTART:
            return
        if neighbor.state == NeighborState.EXSTART:
            # Negotiation done: whoever has the higher router id is master —
            # the distinction does not change behaviour in this implementation.
            neighbor.is_master = int(self.daemon.router_id) > int(dd.router_id)
            self._set_state(neighbor, NeighborState.EXCHANGE)
            summary = DBDescriptionPacket(
                router_id=self.daemon.router_id,
                dd_sequence=neighbor.dd_sequence,
                flags=DDFlags.MASTER if neighbor.is_master else 0,
                lsa_headers=self.daemon.lsdb.headers,
                area_id=self.area_id,
            )
            self.daemon.send_packet(self.name, summary)
        self._process_dd_headers(neighbor, dd)

    def _process_dd_headers(self, neighbor: Neighbor, dd: DBDescriptionPacket) -> None:
        if not dd.lsa_headers:
            # The initial (empty) DD carries no database summary; stay put and
            # wait for the summary DD.
            if neighbor.state == NeighborState.EXCHANGE and not (dd.flags & DDFlags.INIT):
                self._maybe_full(neighbor)
            return
        needed = self.daemon.lsdb.missing_or_older_than(dd.lsa_headers)
        if needed:
            neighbor.ls_request_list.update(header.key for header in needed)
            request = LSRequestPacket(
                router_id=self.daemon.router_id,
                requests=[(h.ls_type, h.link_state_id, h.advertising_router)
                          for h in needed],
                area_id=self.area_id,
            )
            if neighbor.state == NeighborState.EXCHANGE:
                self._set_state(neighbor, NeighborState.LOADING)
            self.daemon.send_packet(self.name, request)
        else:
            self._maybe_full(neighbor)

    def _maybe_full(self, neighbor: Neighbor) -> None:
        if neighbor.state in (NeighborState.EXCHANGE, NeighborState.LOADING) \
                and not neighbor.ls_request_list:
            self._set_state(neighbor, NeighborState.FULL)

    # --------------------------------------------------------------- flooding
    def _handle_ls_request(self, request: LSRequestPacket) -> None:
        neighbor = self.neighbors.get(request.router_id)
        if neighbor is None or neighbor.state < NeighborState.EXCHANGE:
            return
        lsas = []
        for ls_type, lsid, adv in request.requests:
            lsa = self.daemon.lsdb.get((ls_type, int(lsid), int(adv)))
            if lsa is not None:
                lsas.append(lsa)
        if lsas:
            update = LSUpdatePacket(router_id=self.daemon.router_id, lsas=lsas,
                                    area_id=self.area_id)
            self.daemon.send_packet(self.name, update)

    def _handle_ls_update(self, update: LSUpdatePacket) -> None:
        neighbor = self.neighbors.get(update.router_id)
        acked = []
        for lsa in update.lsas:
            acked.append(lsa.header)
            changed = self.daemon.lsdb.install(lsa, now=self.daemon.sim.now)
            if neighbor is not None:
                neighbor.ls_request_list.discard(lsa.key)
            if changed:
                self.daemon.on_lsa_installed(lsa, from_interface=self)
        if acked:
            ack = LSAckPacket(router_id=self.daemon.router_id, lsa_headers=acked,
                              area_id=self.area_id)
            self.daemon.send_packet(self.name, ack)
        if neighbor is not None:
            self._maybe_full(neighbor)

    def flood(self, lsas: List) -> None:
        """Send an LS Update carrying the given LSAs out of this interface."""
        if not self.up:
            return
        if not any(n.state >= NeighborState.EXCHANGE for n in self.neighbors.values()):
            return
        update = LSUpdatePacket(router_id=self.daemon.router_id, lsas=list(lsas),
                                area_id=self.area_id)
        self.daemon.send_packet(self.name, update)

    # ------------------------------------------------------------- FSM events
    def _set_state(self, neighbor: Neighbor, new_state: int) -> None:
        old_state = neighbor.state
        if old_state == new_state:
            return
        neighbor.state = new_state
        if new_state == NeighborState.FULL:
            neighbor.full_since = self.daemon.sim.now
        LOG.debug("%s/%s: neighbor %s %s -> %s", self.daemon.hostname, self.name,
                  neighbor.router_id, NeighborState.NAMES.get(old_state),
                  NeighborState.NAMES.get(new_state))
        self.daemon.on_neighbor_state_change(self, neighbor, old_state, new_state)

    def __repr__(self) -> str:
        return (f"<OSPFInterface {self.name} {self.ip}/{self.prefix_len} "
                f"neighbors={len(self.neighbors)}>")
