"""OSPFv2: packets, LSDB, neighbor FSM, SPF and the ospfd daemon."""

from repro.quagga.ospf.constants import (
    ALL_SPF_ROUTERS,
    DEFAULT_DEAD_INTERVAL,
    DEFAULT_HELLO_INTERVAL,
    LSAType,
    NeighborState,
    OSPFPacketType,
    RouterLinkType,
)
from repro.quagga.ospf.daemon import OSPFDaemon
from repro.quagga.ospf.interface import OSPFInterface
from repro.quagga.ospf.lsdb import LSDB
from repro.quagga.ospf.neighbor import Neighbor
from repro.quagga.ospf.packets import (
    DBDescriptionPacket,
    HelloPacket,
    LSAHeader,
    LSAckPacket,
    LSRequestPacket,
    LSUpdatePacket,
    OSPFPacket,
    RouterLSA,
    RouterLink,
)
from repro.quagga.ospf.spf import SPFRoute, build_router_graph, compute_routes, shortest_paths

__all__ = [
    "ALL_SPF_ROUTERS",
    "DBDescriptionPacket",
    "DEFAULT_DEAD_INTERVAL",
    "DEFAULT_HELLO_INTERVAL",
    "HelloPacket",
    "LSAHeader",
    "LSAType",
    "LSAckPacket",
    "LSDB",
    "LSRequestPacket",
    "LSUpdatePacket",
    "Neighbor",
    "NeighborState",
    "OSPFDaemon",
    "OSPFInterface",
    "OSPFPacket",
    "OSPFPacketType",
    "RouterLSA",
    "RouterLink",
    "RouterLinkType",
    "SPFRoute",
    "build_router_graph",
    "compute_routes",
    "shortest_paths",
]
