"""OSPFv2 packet and LSA wire formats (RFC 2328 subset).

Implemented packet types: Hello, Database Description, Link State Request,
Link State Update and Link State Acknowledgment.  Implemented LSA type:
Router LSA (type 1) — sufficient because every adjacency in the RouteFlow
virtual topology is a point-to-point link between two VMs, so no Network
LSAs are ever originated.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.net.addresses import IPv4Address, checksum16
from repro.net.packet import DecodeError, Header
from repro.quagga.ospf.constants import (
    LSAType,
    OSPF_VERSION,
    OSPFPacketType,
    RouterLinkType,
)

OSPF_HEADER_LEN = 24
LSA_HEADER_LEN = 20

_ZERO_ADDR = bytes(4)

#: Wire-bytes -> decoded RouterLSA intern table (see RouterLSA.decode).
#: Bounded so a long-running simulation cannot grow it without limit.
_DECODED_LSAS: dict = {}
_DECODED_LSAS_LIMIT = 1 << 16

#: Wire-bytes -> decoded OSPFPacket intern table (see OSPFPacket.decode).
_DECODED_PACKETS: dict = {}
_DECODED_PACKETS_LIMIT = 1 << 16


# --------------------------------------------------------------------------
# LSA structures
# --------------------------------------------------------------------------
class LSAHeader:
    """The 20-byte LSA header used in DD packets, acks and the LSDB index."""

    def __init__(self, ls_type: int, link_state_id: IPv4Address,
                 advertising_router: IPv4Address, sequence: int,
                 age: int = 0, options: int = 0x02, length: int = LSA_HEADER_LEN) -> None:
        self.ls_type = ls_type
        self.link_state_id = IPv4Address(link_state_id)
        self.advertising_router = IPv4Address(advertising_router)
        self.sequence = sequence
        self.age = age
        self.options = options
        self.length = length
        # Headers sit in the LSDB and are re-encoded for every DD summary
        # and ack; the wire form is cached until ``length`` changes (the one
        # field RouterLSA rewrites after construction).
        self._encoded: Optional[bytes] = None
        self._encoded_length = -1

    @property
    def key(self) -> Tuple[int, int, int]:
        """LSDB identity: (type, link-state id, advertising router)."""
        return (self.ls_type, int(self.link_state_id), int(self.advertising_router))

    def is_newer_than(self, other: "LSAHeader") -> bool:
        """RFC 2328 §13.1 freshness comparison (sequence number, then age)."""
        if self.sequence != other.sequence:
            return self.sequence > other.sequence
        return self.age < other.age

    def encode(self) -> bytes:
        if self._encoded is None or self._encoded_length != self.length:
            self._encoded = struct.pack(
                "!HBB4s4sIHH", self.age, self.options, self.ls_type,
                self.link_state_id.packed, self.advertising_router.packed,
                self.sequence & 0xFFFFFFFF, 0, self.length)
            self._encoded_length = self.length
        return self._encoded

    @classmethod
    def decode(cls, data: bytes) -> "LSAHeader":
        if len(data) < LSA_HEADER_LEN:
            raise DecodeError("truncated LSA header")
        age, options, ls_type, lsid, adv, sequence, _csum, length = struct.unpack(
            "!HBB4s4sIHH", data[:LSA_HEADER_LEN])
        return cls(ls_type=ls_type, link_state_id=IPv4Address(lsid),
                   advertising_router=IPv4Address(adv), sequence=sequence,
                   age=age, options=options, length=length)

    def __repr__(self) -> str:
        return (f"<LSAHeader type={self.ls_type} id={self.link_state_id} "
                f"adv={self.advertising_router} seq={self.sequence:#x}>")


class RouterLink:
    """One link description inside a Router LSA."""

    def __init__(self, link_id: IPv4Address, link_data: IPv4Address,
                 link_type: int, metric: int) -> None:
        self.link_id = IPv4Address(link_id)
        self.link_data = IPv4Address(link_data)
        self.link_type = link_type
        self.metric = metric

    @classmethod
    def point_to_point(cls, neighbor_router_id: IPv4Address,
                       local_interface_ip: IPv4Address, metric: int) -> "RouterLink":
        return cls(neighbor_router_id, local_interface_ip,
                   RouterLinkType.POINT_TO_POINT, metric)

    @classmethod
    def stub(cls, network: IPv4Address, netmask: IPv4Address, metric: int) -> "RouterLink":
        return cls(network, netmask, RouterLinkType.STUB, metric)

    @classmethod
    def external(cls, network: IPv4Address, netmask: IPv4Address,
                 metric: int) -> "RouterLink":
        """A redistributed AS-external prefix (the type-5 LSA stand-in)."""
        return cls(network, netmask, RouterLinkType.EXTERNAL, metric)

    def encode(self) -> bytes:
        return (self.link_id.packed + self.link_data.packed
                + struct.pack("!BBH", self.link_type, 0, self.metric))

    @classmethod
    def decode(cls, data: bytes) -> "RouterLink":
        if len(data) < 12:
            raise DecodeError("truncated router link")
        link_id = IPv4Address(data[0:4])
        link_data = IPv4Address(data[4:8])
        link_type, _ntos, metric = struct.unpack("!BBH", data[8:12])
        return cls(link_id, link_data, link_type, metric)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouterLink):
            return NotImplemented
        return self.encode() == other.encode()

    def __repr__(self) -> str:
        kind = {1: "p2p", 2: "transit", 3: "stub", 4: "virtual",
                7: "external"}.get(self.link_type, "?")
        return f"<RouterLink {kind} id={self.link_id} data={self.link_data} metric={self.metric}>"


class RouterLSA:
    """A type-1 (Router) LSA: header + the router's link descriptions."""

    def __init__(self, header: LSAHeader, links: List[RouterLink], flags: int = 0) -> None:
        self.header = header
        self.links = list(links)
        self.flags = flags
        self.header.length = LSA_HEADER_LEN + 4 + 12 * len(self.links)
        # LSAs are immutable once originated/decoded but are flooded out of
        # every interface on every topology change: serialize once.
        self._encoded: Optional[bytes] = None

    @classmethod
    def originate(cls, router_id: IPv4Address, sequence: int,
                  links: List[RouterLink], age: int = 0) -> "RouterLSA":
        """Originate an LSA; ``age=MAX_AGE`` produces a premature-aging flush."""
        header = LSAHeader(ls_type=LSAType.ROUTER, link_state_id=router_id,
                           advertising_router=router_id, sequence=sequence,
                           age=age)
        return cls(header=header, links=links)

    @property
    def key(self) -> Tuple[int, int, int]:
        return self.header.key

    def encode(self) -> bytes:
        if self._encoded is None:
            body = struct.pack("!BxH", self.flags, len(self.links))
            body += b"".join(link.encode() for link in self.links)
            self.header.length = LSA_HEADER_LEN + len(body)
            self._encoded = self.header.encode() + body
        return self._encoded

    @classmethod
    def decode(cls, data: bytes) -> "RouterLSA":
        """Decode a Router LSA, interning by wire bytes.

        Flooding delivers the identical LSA bytes to every router in the
        area; the decoded instance is shared between them, which is safe
        because LSAs are immutable once decoded (nothing in the LSDB or the
        flooding path writes to them).
        """
        if len(data) < LSA_HEADER_LEN:
            raise DecodeError("truncated LSA header")
        if data[3] != LSAType.ROUTER:
            raise DecodeError(f"not a router LSA (type {data[3]})")
        length = (data[18] << 8) | data[19]
        if len(data) < length:
            raise DecodeError("truncated router LSA")
        wire = bytes(data[:length])
        cached = _DECODED_LSAS.get(wire)
        if cached is not None:
            return cached
        header = LSAHeader.decode(wire)
        body = wire[LSA_HEADER_LEN:]
        if len(body) < 4:
            raise DecodeError("router LSA body too short")
        flags, num_links = struct.unpack("!BxH", body[:4])
        links = []
        offset = 4
        for _ in range(num_links):
            links.append(RouterLink.decode(body[offset:offset + 12]))
            offset += 12
        lsa = cls(header=header, links=links, flags=flags)
        if len(_DECODED_LSAS) < _DECODED_LSAS_LIMIT:
            _DECODED_LSAS[wire] = lsa
        return lsa

    def __repr__(self) -> str:
        return f"<RouterLSA {self.header.advertising_router} links={len(self.links)}>"


def decode_lsa(data: bytes) -> Tuple[RouterLSA, int]:
    """Decode one LSA from a byte string; returns (lsa, bytes consumed).

    Unknown LSA types are rejected — only Router LSAs circulate in the
    reproduced topologies.
    """
    if len(data) < LSA_HEADER_LEN:
        raise DecodeError("truncated LSA header")
    if data[3] == LSAType.ROUTER:
        lsa = RouterLSA.decode(data)
        return lsa, lsa.header.length
    raise DecodeError(f"unsupported LSA type {data[3]}")


# --------------------------------------------------------------------------
# OSPF packets
# --------------------------------------------------------------------------
class OSPFPacket(Header):
    """Base: the 24-byte OSPF header followed by a typed body."""

    packet_type: int = 0

    def __init__(self, router_id: IPv4Address, area_id: IPv4Address = IPv4Address(0)) -> None:
        self.router_id = IPv4Address(router_id)
        self.area_id = IPv4Address(area_id)
        self.payload = None

    def body(self) -> bytes:
        return b""

    def encode(self) -> bytes:
        body = self.body()
        length = OSPF_HEADER_LEN + len(body)
        header = struct.pack("!BBH4s4sHHQ", OSPF_VERSION, self.packet_type, length,
                             self.router_id.packed, self.area_id.packed, 0, 0, 0)
        csum = checksum16(header + body)
        header = header[:12] + struct.pack("!H", csum) + header[14:]
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "OSPFPacket":
        """Decode an OSPF packet, interning by wire bytes.

        Steady-state hellos repeat byte-identically every interval and a
        flooded LS Update reaches every neighbor with the same bytes, so the
        decoded (immutable) packet is shared between deliveries.
        """
        wire = bytes(data)
        cached = _DECODED_PACKETS.get(wire)
        if cached is not None:
            return cached
        packet = cls._decode_uncached(wire)
        if len(_DECODED_PACKETS) < _DECODED_PACKETS_LIMIT:
            _DECODED_PACKETS[wire] = packet
        return packet

    @classmethod
    def _decode_uncached(cls, data: bytes) -> "OSPFPacket":
        if len(data) < OSPF_HEADER_LEN:
            raise DecodeError(f"OSPF packet too short: {len(data)} bytes")
        version, ptype, length, router_id, area_id, _csum, _autype, _auth = struct.unpack(
            "!BBH4s4sHHQ", data[:OSPF_HEADER_LEN])
        if version != OSPF_VERSION:
            raise DecodeError(f"unsupported OSPF version {version}")
        if length < OSPF_HEADER_LEN or len(data) < length:
            raise DecodeError("truncated OSPF packet")
        body = data[OSPF_HEADER_LEN:length]
        klass = _PACKET_TYPES.get(ptype)
        if klass is None:
            raise DecodeError(f"unsupported OSPF packet type {ptype}")
        return klass.decode_body(IPv4Address(router_id), IPv4Address(area_id), body)

    @classmethod
    def decode_body(cls, router_id: IPv4Address, area_id: IPv4Address,
                    body: bytes) -> "OSPFPacket":
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} from {self.router_id}>"


class HelloPacket(OSPFPacket):
    packet_type = OSPFPacketType.HELLO

    def __init__(self, router_id: IPv4Address, network_mask: IPv4Address,
                 hello_interval: int, dead_interval: int,
                 neighbors: Optional[List[IPv4Address]] = None,
                 area_id: IPv4Address = IPv4Address(0), priority: int = 1) -> None:
        super().__init__(router_id, area_id)
        self.network_mask = IPv4Address(network_mask)
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval
        self.neighbors = [IPv4Address(n) for n in (neighbors or [])]
        self.priority = priority

    def body(self) -> bytes:
        out = self.network_mask.packed
        out += struct.pack("!HBB", self.hello_interval, 0x02, self.priority)
        out += struct.pack("!I", self.dead_interval)
        out += _ZERO_ADDR  # designated router (unused on p2p)
        out += _ZERO_ADDR  # backup designated router
        for neighbor in self.neighbors:
            out += neighbor.packed
        return out

    @classmethod
    def decode_body(cls, router_id, area_id, body: bytes) -> "HelloPacket":
        if len(body) < 20:
            raise DecodeError("truncated OSPF hello")
        network_mask = IPv4Address(body[0:4])
        hello_interval, _options, priority = struct.unpack("!HBB", body[4:8])
        (dead_interval,) = struct.unpack("!I", body[8:12])
        neighbors = []
        offset = 20
        while offset + 4 <= len(body):
            neighbors.append(IPv4Address(body[offset:offset + 4]))
            offset += 4
        return cls(router_id=router_id, network_mask=network_mask,
                   hello_interval=hello_interval, dead_interval=dead_interval,
                   neighbors=neighbors, area_id=area_id, priority=priority)

    def __repr__(self) -> str:
        return f"<Hello from {self.router_id} neighbors={len(self.neighbors)}>"


class DBDescriptionPacket(OSPFPacket):
    packet_type = OSPFPacketType.DB_DESCRIPTION

    def __init__(self, router_id: IPv4Address, dd_sequence: int, flags: int,
                 lsa_headers: Optional[List[LSAHeader]] = None,
                 area_id: IPv4Address = IPv4Address(0), mtu: int = 1500) -> None:
        super().__init__(router_id, area_id)
        self.dd_sequence = dd_sequence
        self.flags = flags
        self.lsa_headers = list(lsa_headers or [])
        self.mtu = mtu

    def body(self) -> bytes:
        out = struct.pack("!HBBI", self.mtu, 0x02, self.flags, self.dd_sequence)
        out += b"".join(header.encode() for header in self.lsa_headers)
        return out

    @classmethod
    def decode_body(cls, router_id, area_id, body: bytes) -> "DBDescriptionPacket":
        if len(body) < 8:
            raise DecodeError("truncated DB description")
        mtu, _options, flags, dd_sequence = struct.unpack("!HBBI", body[:8])
        headers = []
        offset = 8
        while offset + LSA_HEADER_LEN <= len(body):
            headers.append(LSAHeader.decode(body[offset:offset + LSA_HEADER_LEN]))
            offset += LSA_HEADER_LEN
        return cls(router_id=router_id, dd_sequence=dd_sequence, flags=flags,
                   lsa_headers=headers, area_id=area_id, mtu=mtu)


class LSRequestPacket(OSPFPacket):
    packet_type = OSPFPacketType.LS_REQUEST

    def __init__(self, router_id: IPv4Address,
                 requests: Optional[List[Tuple[int, IPv4Address, IPv4Address]]] = None,
                 area_id: IPv4Address = IPv4Address(0)) -> None:
        super().__init__(router_id, area_id)
        #: list of (ls_type, link_state_id, advertising_router)
        self.requests = [(t, IPv4Address(i), IPv4Address(a)) for t, i, a in (requests or [])]

    def body(self) -> bytes:
        out = b""
        for ls_type, lsid, adv in self.requests:
            out += struct.pack("!I", ls_type) + lsid.packed + adv.packed
        return out

    @classmethod
    def decode_body(cls, router_id, area_id, body: bytes) -> "LSRequestPacket":
        requests = []
        offset = 0
        while offset + 12 <= len(body):
            (ls_type,) = struct.unpack("!I", body[offset:offset + 4])
            lsid = IPv4Address(body[offset + 4:offset + 8])
            adv = IPv4Address(body[offset + 8:offset + 12])
            requests.append((ls_type, lsid, adv))
            offset += 12
        return cls(router_id=router_id, requests=requests, area_id=area_id)


class LSUpdatePacket(OSPFPacket):
    packet_type = OSPFPacketType.LS_UPDATE

    def __init__(self, router_id: IPv4Address, lsas: Optional[List[RouterLSA]] = None,
                 area_id: IPv4Address = IPv4Address(0)) -> None:
        super().__init__(router_id, area_id)
        self.lsas = list(lsas or [])

    def body(self) -> bytes:
        out = struct.pack("!I", len(self.lsas))
        out += b"".join(lsa.encode() for lsa in self.lsas)
        return out

    @classmethod
    def decode_body(cls, router_id, area_id, body: bytes) -> "LSUpdatePacket":
        if len(body) < 4:
            raise DecodeError("truncated LS update")
        (count,) = struct.unpack("!I", body[:4])
        lsas = []
        offset = 4
        for _ in range(count):
            lsa, consumed = decode_lsa(body[offset:])
            lsas.append(lsa)
            offset += consumed
        return cls(router_id=router_id, lsas=lsas, area_id=area_id)

    def __repr__(self) -> str:
        return f"<LSUpdate from {self.router_id} lsas={len(self.lsas)}>"


class LSAckPacket(OSPFPacket):
    packet_type = OSPFPacketType.LS_ACK

    def __init__(self, router_id: IPv4Address,
                 lsa_headers: Optional[List[LSAHeader]] = None,
                 area_id: IPv4Address = IPv4Address(0)) -> None:
        super().__init__(router_id, area_id)
        self.lsa_headers = list(lsa_headers or [])

    def body(self) -> bytes:
        return b"".join(header.encode() for header in self.lsa_headers)

    @classmethod
    def decode_body(cls, router_id, area_id, body: bytes) -> "LSAckPacket":
        headers = []
        offset = 0
        while offset + LSA_HEADER_LEN <= len(body):
            headers.append(LSAHeader.decode(body[offset:offset + LSA_HEADER_LEN]))
            offset += LSA_HEADER_LEN
        return cls(router_id=router_id, lsa_headers=headers, area_id=area_id)


_PACKET_TYPES = {
    OSPFPacketType.HELLO: HelloPacket,
    OSPFPacketType.DB_DESCRIPTION: DBDescriptionPacket,
    OSPFPacketType.LS_REQUEST: LSRequestPacket,
    OSPFPacketType.LS_UPDATE: LSUpdatePacket,
    OSPFPacketType.LS_ACK: LSAckPacket,
}
