"""Shortest-path-first (Dijkstra) computation over the OSPF LSDB.

The SPF run builds the router graph from Router LSAs — an edge exists only
when *both* endpoints advertise the point-to-point link (the RFC's
bidirectional connectivity check) — computes shortest paths from the
calculating router, and derives one candidate route per stub network
advertised anywhere in the area.

Derived data is cached on the LSDB and keyed by its version counter: the
router graph and the flattened stub-prefix list are rebuilt only when the
database actually changed, so the N routers of an area flooding N LSAs no
longer cost N² from-scratch graph builds.  Adjacency lists are stored
pre-sorted by neighbor id, which keeps the Dijkstra visit order (and
therefore every tie-break) exactly as it was when the inner loop sorted on
every pop.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Network, PREFIXLEN_FROM_NETMASK
from repro.quagga.ospf.constants import RouterLinkType
from repro.quagga.ospf.lsdb import LSDB

#: Shared (address, prefix-length) -> IPv4Network intern table.  Every
#: router in an area derives routes for the same handful of stub prefixes on
#: every SPF run; reusing the network objects also makes the RIB's
#: prefix-keyed dict lookups hit precomputed hashes.  Bounded like the
#: address intern tables.
_NETWORK_CACHE: Dict[Tuple[int, int], IPv4Network] = {}
_NETWORK_CACHE_LIMIT = 1 << 16


class SPFRoute(NamedTuple):
    """One route produced by an SPF run.

    A named tuple rather than a (frozen) dataclass: an SPF run emits one per
    stub network and large areas mean hundreds of thousands of them, where
    tuple allocation is several times cheaper than ``object.__setattr__``.
    """

    prefix: IPv4Network
    cost: int
    #: Router id of the first hop on the shortest path (None = local stub).
    first_hop: Optional[IPv4Address]
    #: Router id of the router advertising the stub network.
    advertising_router: IPv4Address
    #: True when the prefix was redistributed into the area (an EXTERNAL
    #: stub link, the type-5 stand-in); intra-area routes always win over
    #: external ones regardless of cost, per RFC 2328 §16.4.
    external: bool = False


class SPFNode:
    """Per-router result of the Dijkstra run."""

    __slots__ = ("router_id", "distance", "first_hop")

    def __init__(self, router_id: IPv4Address, distance: int,
                 first_hop: Optional[IPv4Address]) -> None:
        self.router_id = router_id
        self.distance = distance
        self.first_hop = first_hop

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SPFNode):
            return NotImplemented
        return (self.router_id, self.distance, self.first_hop) == \
            (other.router_id, other.distance, other.first_hop)

    def __repr__(self) -> str:
        return (f"SPFNode(router_id={self.router_id!r}, "
                f"distance={self.distance!r}, first_hop={self.first_hop!r})")


def build_router_graph(lsdb: LSDB) -> Dict[int, Dict[int, int]]:
    """Adjacency map {router -> {neighbor -> cost}} with bidirectional check.

    Cached per LSDB version; the returned mapping is shared, so callers must
    treat it as read-only.  Neighbor iteration order is ascending router id.
    """
    cached = getattr(lsdb, "_spf_graph", None)
    if cached is not None and lsdb._spf_graph_version == lsdb.version:
        return cached
    advertised: Dict[int, Dict[int, int]] = {}
    for lsa in lsdb.lsas:
        router = int(lsa.header.advertising_router)
        edges = advertised.setdefault(router, {})
        # The parsed point-to-point link list rides on the (immutable,
        # interned) LSA itself: extracted once, shared by every router that
        # holds the LSA in its database.
        p2p = getattr(lsa, "_spf_p2p", None)
        if p2p is None:
            p2p = lsa._spf_p2p = [
                (int(link.link_id), link.metric) for link in lsa.links
                if link.link_type == RouterLinkType.POINT_TO_POINT]
        for neighbor, cost in p2p:
            if neighbor not in edges or cost < edges[neighbor]:
                edges[neighbor] = cost
    graph: Dict[int, Dict[int, int]] = {}
    for router, edges in advertised.items():
        graph[router] = {
            neighbor: edges[neighbor]
            for neighbor in sorted(edges)
            if neighbor in advertised and router in advertised[neighbor]
        }
    lsdb._spf_graph = graph
    lsdb._spf_graph_version = lsdb.version
    return graph


def _stub_links(lsdb: LSDB) -> List[Tuple[int, IPv4Network, int, bool]]:
    """Flattened ``(advertising router, prefix, metric, external)`` stubs.

    Covers plain STUB links and the EXTERNAL (redistributed-prefix) links,
    distinguished by the trailing flag.  Cached per LSDB version so the
    per-SPF cost of rebuilding every stub's :class:`IPv4Network` (including
    the netmask → prefix-length conversion) is paid once per database
    change, not once per SPF run.
    """
    cached = getattr(lsdb, "_spf_stubs", None)
    if cached is not None and lsdb._spf_stubs_version == lsdb.version:
        return cached
    stubs: List[Tuple[int, IPv4Network, int, bool]] = []
    networks = _NETWORK_CACHE
    for lsa in lsdb.lsas:
        # Like the p2p list in build_router_graph, the parsed stub list is
        # cached on the shared LSA object itself.
        lsa_stubs = getattr(lsa, "_spf_stubs", None)
        if lsa_stubs is None:
            lsa_stubs = []
            for link in lsa.links:
                if link.link_type not in (RouterLinkType.STUB,
                                          RouterLinkType.EXTERNAL):
                    continue
                netmask = int(link.link_data)
                prefix_len = PREFIXLEN_FROM_NETMASK.get(netmask)
                if prefix_len is None:  # non-contiguous mask: count the bits
                    prefix_len = bin(netmask).count("1")
                network_key = (int(link.link_id), prefix_len)
                prefix = networks.get(network_key)
                if prefix is None:
                    prefix = IPv4Network((link.link_id, prefix_len))
                    if len(networks) < _NETWORK_CACHE_LIMIT:
                        networks[network_key] = prefix
                lsa_stubs.append((prefix, link.metric,
                                  link.link_type == RouterLinkType.EXTERNAL))
            lsa._spf_stubs = lsa_stubs
        adv = int(lsa.header.advertising_router)
        for prefix, metric, external in lsa_stubs:
            stubs.append((adv, prefix, metric, external))
    lsdb._spf_stubs = stubs
    lsdb._spf_stubs_version = lsdb.version
    return stubs


def shortest_paths(lsdb: LSDB, root: IPv4Address) -> Dict[int, SPFNode]:
    """Dijkstra from ``root``; result keyed by integer router id."""
    graph = build_router_graph(lsdb)
    root_id = int(IPv4Address(root))
    if root_id not in graph:
        return {root_id: SPFNode(IPv4Address(root), 0, None)}
    distances: Dict[int, SPFNode] = {root_id: SPFNode(IPv4Address(root), 0, None)}
    # heap entries: (distance, router_id, first_hop_router_id or None)
    heap: List[Tuple[int, int, Optional[int]]] = [(0, root_id, None)]
    visited: set = set()
    while heap:
        distance, router, first_hop = heapq.heappop(heap)
        if router in visited:
            continue
        visited.add(router)
        # Adjacency lists come out of build_router_graph pre-sorted.
        for neighbor, cost in graph[router].items():
            if neighbor in visited:
                continue
            candidate = distance + cost
            # The first hop of a direct neighbor of the root is that neighbor.
            hop = neighbor if router == root_id else first_hop
            existing = distances.get(neighbor)
            if existing is None or candidate < existing.distance:
                distances[neighbor] = SPFNode(IPv4Address(neighbor), candidate,
                                              IPv4Address(hop) if hop is not None else None)
                heapq.heappush(heap, (candidate, neighbor, hop))
    return distances


def compute_routes(lsdb: LSDB, root: IPv4Address) -> List[SPFRoute]:
    """Derive routes to every stub network advertised in the area.

    Local stubs (advertised by the root itself) are returned with
    ``first_hop=None`` and are normally shadowed by connected routes in the
    RIB.  For every other stub, the route cost is the distance to its
    advertising router plus the stub metric; when several routers advertise
    the same prefix (the two ends of a point-to-point link do), the cheapest
    wins.
    """
    root_id = IPv4Address(root)
    root_int = int(root_id)
    nodes = shortest_paths(lsdb, root_id)
    # Keyed by (network value, prefix length) — the tuple doubles as the
    # final sort key, so the result ordering costs one C-level tuple sort
    # instead of a per-route lambda.
    best: Dict[Tuple[int, int], SPFRoute] = {}
    for adv_int, prefix, metric, external in _stub_links(lsdb):
        node = nodes.get(adv_int)
        if node is None:
            continue  # advertising router unreachable
        cost = node.distance + metric
        key = (prefix.network._value, prefix.prefix_len)
        existing = best.get(key)
        # Intra-area stubs beat external (redistributed) prefixes no matter
        # the cost; within a class, the cheapest wins.
        if existing is None or (external, cost) < (existing.external,
                                                   existing.cost):
            best[key] = SPFRoute(
                prefix=prefix, cost=cost,
                first_hop=node.first_hop if adv_int != root_int else None,
                advertising_router=IPv4Address(adv_int),
                external=external)
    return [route for _, route in sorted(best.items())]
