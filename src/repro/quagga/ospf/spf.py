"""Shortest-path-first (Dijkstra) computation over the OSPF LSDB.

The SPF run builds the router graph from Router LSAs — an edge exists only
when *both* endpoints advertise the point-to-point link (the RFC's
bidirectional connectivity check) — computes shortest paths from the
calculating router, and derives one candidate route per stub network
advertised anywhere in the area.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Network
from repro.quagga.ospf.constants import RouterLinkType
from repro.quagga.ospf.lsdb import LSDB
from repro.quagga.ospf.packets import RouterLSA


@dataclass(frozen=True)
class SPFRoute:
    """One route produced by an SPF run."""

    prefix: IPv4Network
    cost: int
    #: Router id of the first hop on the shortest path (None = local stub).
    first_hop: Optional[IPv4Address]
    #: Router id of the router advertising the stub network.
    advertising_router: IPv4Address


@dataclass
class SPFNode:
    """Per-router result of the Dijkstra run."""

    router_id: IPv4Address
    distance: int
    first_hop: Optional[IPv4Address]


def build_router_graph(lsdb: LSDB) -> Dict[int, Dict[int, int]]:
    """Adjacency map {router -> {neighbor -> cost}} with bidirectional check."""
    advertised: Dict[int, Dict[int, int]] = {}
    for lsa in lsdb.lsas:
        router = int(lsa.header.advertising_router)
        edges = advertised.setdefault(router, {})
        for link in lsa.links:
            if link.link_type == RouterLinkType.POINT_TO_POINT:
                neighbor = int(link.link_id)
                cost = link.metric
                if neighbor not in edges or cost < edges[neighbor]:
                    edges[neighbor] = cost
    graph: Dict[int, Dict[int, int]] = {router: {} for router in advertised}
    for router, edges in advertised.items():
        for neighbor, cost in edges.items():
            if neighbor in advertised and router in advertised[neighbor]:
                graph[router][neighbor] = cost
    return graph


def shortest_paths(lsdb: LSDB, root: IPv4Address) -> Dict[int, SPFNode]:
    """Dijkstra from ``root``; result keyed by integer router id."""
    graph = build_router_graph(lsdb)
    root_id = int(IPv4Address(root))
    if root_id not in graph:
        return {root_id: SPFNode(IPv4Address(root), 0, None)}
    distances: Dict[int, SPFNode] = {root_id: SPFNode(IPv4Address(root), 0, None)}
    # heap entries: (distance, router_id, first_hop_router_id or None)
    heap: List[Tuple[int, int, Optional[int]]] = [(0, root_id, None)]
    visited: set = set()
    while heap:
        distance, router, first_hop = heapq.heappop(heap)
        if router in visited:
            continue
        visited.add(router)
        for neighbor, cost in sorted(graph.get(router, {}).items()):
            if neighbor in visited:
                continue
            candidate = distance + cost
            # The first hop of a direct neighbor of the root is that neighbor.
            hop = neighbor if router == root_id else first_hop
            existing = distances.get(neighbor)
            if existing is None or candidate < existing.distance:
                distances[neighbor] = SPFNode(IPv4Address(neighbor), candidate,
                                              IPv4Address(hop) if hop is not None else None)
                heapq.heappush(heap, (candidate, neighbor, hop))
    return distances


def compute_routes(lsdb: LSDB, root: IPv4Address) -> List[SPFRoute]:
    """Derive routes to every stub network advertised in the area.

    Local stubs (advertised by the root itself) are returned with
    ``first_hop=None`` and are normally shadowed by connected routes in the
    RIB.  For every other stub, the route cost is the distance to its
    advertising router plus the stub metric; when several routers advertise
    the same prefix (the two ends of a point-to-point link do), the cheapest
    wins.
    """
    root_id = IPv4Address(root)
    nodes = shortest_paths(lsdb, root_id)
    best: Dict[IPv4Network, SPFRoute] = {}
    for lsa in lsdb.lsas:
        adv = lsa.header.advertising_router
        node = nodes.get(int(adv))
        if node is None:
            continue  # advertising router unreachable
        for link in lsa.links:
            if link.link_type != RouterLinkType.STUB:
                continue
            netmask = int(link.link_data)
            prefix_len = bin(netmask).count("1")
            prefix = IPv4Network((link.link_id, prefix_len))
            cost = node.distance + link.metric
            route = SPFRoute(prefix=prefix, cost=cost,
                             first_hop=node.first_hop if adv != root_id else None,
                             advertising_router=adv)
            existing = best.get(prefix)
            if existing is None or cost < existing.cost:
                best[prefix] = route
    return sorted(best.values(), key=lambda r: (int(r.prefix.network), r.prefix.prefix_len))
