"""Quagga configuration files: generation and parsing.

The paper's RPC server "writes routing configuration files (e.g.
ospf.conf, zebra.conf, bgp.conf) using the information present in the
configuration message".  This module produces those files in Quagga's
syntax and parses them back into structured objects; the virtual machines
boot their routing daemons from the parsed form, so the generated text is
a real interface rather than decoration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Network


class ConfigError(ValueError):
    """Raised when a configuration file cannot be parsed."""


# --------------------------------------------------------------------------
# Structured configuration objects
# --------------------------------------------------------------------------
@dataclass
class InterfaceConfig:
    """One ``interface`` stanza of zebra.conf."""

    name: str
    ip: Optional[IPv4Address] = None
    prefix_len: int = 0
    description: str = ""

    @property
    def network(self) -> Optional[IPv4Network]:
        if self.ip is None:
            return None
        return IPv4Network((self.ip, self.prefix_len))


@dataclass
class ZebraConfig:
    """Parsed zebra.conf."""

    hostname: str = "zebra"
    password: str = "zebra"
    interfaces: List[InterfaceConfig] = field(default_factory=list)

    def interface(self, name: str) -> Optional[InterfaceConfig]:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        return None


@dataclass
class OSPFNetworkStatement:
    """One ``network <prefix> area <area>`` statement."""

    prefix: IPv4Network
    area: str = "0.0.0.0"


@dataclass
class OSPFConfig:
    """Parsed ospfd.conf."""

    hostname: str = "ospfd"
    password: str = "zebra"
    router_id: Optional[IPv4Address] = None
    networks: List[OSPFNetworkStatement] = field(default_factory=list)
    hello_interval: int = 10
    dead_interval: int = 40
    reference_bandwidth_mbps: int = 100
    #: ``redistribute bgp``: inject BGP-learned FIB routes into the area as
    #: AS-external prefixes (how interior routers of an AS learn routes the
    #: border routers picked up over eBGP).
    redistribute_bgp: bool = False
    #: ``redistribute connected``: inject connected prefixes *not* covered
    #: by any network statement (an eBGP border link) as external prefixes.
    redistribute_connected: bool = False

    def covers(self, prefix: IPv4Network) -> bool:
        """Is a connected prefix enabled for OSPF by a network statement?"""
        return any(int(prefix.network) & int(stmt.prefix.netmask) == int(stmt.prefix.network)
                   and prefix.prefix_len >= stmt.prefix.prefix_len
                   for stmt in self.networks)


@dataclass
class BGPNeighbor:
    """One ``neighbor`` statement (plus its per-peer policy lines)."""

    address: IPv4Address
    remote_as: int
    #: LOCAL_PREF applied to routes received *from* this neighbor
    #: (``neighbor X local-preference N``); None = the daemon default.
    local_pref: Optional[int] = None
    #: MED attached to routes advertised *to* this neighbor
    #: (``neighbor X med N``).
    med: Optional[int] = None
    #: Name of the ``ip prefix-list`` applied to routes advertised to this
    #: neighbor (``neighbor X prefix-list NAME out``).
    export_prefix_list: Optional[str] = None
    #: Gao-Rexford business relationship of this neighbor from *our*
    #: perspective (``neighbor X relationship customer|peer|provider``).
    #: Towards peers and providers the daemon only exports locally
    #: originated routes and routes whose LOCAL_PREF marks them as
    #: customer-learned — the valley-free export rule.  None = no
    #: relationship policy (export everything the ordinary rules allow).
    relationship: Optional[str] = None
    #: ``neighbor X route-reflector-client``: iBGP routes learned from (or
    #: destined to) this neighbor are reflected across other iBGP sessions
    #: instead of being stopped by the full-mesh no-transit rule.
    route_reflector_client: bool = False


#: One ``ip prefix-list`` entry: ("permit"|"deny", prefix-or-None-for-any).
PrefixListEntry = Tuple[str, Optional[IPv4Network]]


@dataclass
class BGPConfig:
    """Parsed bgpd.conf."""

    hostname: str = "bgpd"
    password: str = "zebra"
    local_as: int = 0
    router_id: Optional[IPv4Address] = None
    neighbors: List[BGPNeighbor] = field(default_factory=list)
    networks: List[IPv4Network] = field(default_factory=list)
    redistribute_ospf: bool = False
    redistribute_connected: bool = False
    #: ``timers bgp <keepalive> <holdtime>``.
    keepalive_interval: float = 10.0
    hold_time: float = 30.0
    #: ``ip prefix-list`` stanzas: name -> ordered (action, prefix) entries.
    prefix_lists: Dict[str, List[PrefixListEntry]] = field(default_factory=dict)

    def neighbor(self, address: IPv4Address) -> Optional[BGPNeighbor]:
        # The daemon calls this per prefix per session on the decision hot
        # path; a linear scan is O(degree) and scale-free hubs have large
        # degree.  The index is rebuilt whenever the neighbor list grew.
        index = self.__dict__.get("_neighbor_index")
        if index is None or len(index) != len(self.neighbors):
            index = {n.address: n for n in self.neighbors}
            self.__dict__["_neighbor_index"] = index
        return index.get(address)

    def prefix_list_permits(self, name: Optional[str],
                            prefix: IPv4Network) -> bool:
        """Evaluate a prefix list: first match wins, no match = permit."""
        if name is None:
            return True
        for action, entry in self.prefix_lists.get(name, ()):
            if entry is None or entry == prefix:
                return action == "permit"
        return True


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------
def generate_zebra_conf(hostname: str, interfaces: List[InterfaceConfig],
                        password: str = "zebra") -> str:
    """Render a zebra.conf for a VM with the given interface addressing."""
    lines = [f"hostname {hostname}", f"password {password}", "!"]
    for iface in interfaces:
        lines.append(f"interface {iface.name}")
        if iface.description:
            lines.append(f" description {iface.description}")
        if iface.ip is not None:
            lines.append(f" ip address {iface.ip}/{iface.prefix_len}")
        lines.append("!")
    lines.append("line vty")
    lines.append("!")
    return "\n".join(lines) + "\n"


def generate_ospfd_conf(hostname: str, router_id: IPv4Address,
                        networks: List[OSPFNetworkStatement],
                        hello_interval: int = 10, dead_interval: int = 40,
                        redistribute_bgp: bool = False,
                        redistribute_connected: bool = False,
                        password: str = "zebra") -> str:
    """Render an ospfd.conf enabling OSPF on the given prefixes."""
    lines = [f"hostname {hostname}", f"password {password}", "!"]
    lines.append("router ospf")
    lines.append(f" ospf router-id {router_id}")
    lines.append(f" timers ospf hello-interval {hello_interval}")
    lines.append(f" timers ospf dead-interval {dead_interval}")
    for statement in networks:
        lines.append(f" network {statement.prefix} area {statement.area}")
    if redistribute_bgp:
        lines.append(" redistribute bgp")
    if redistribute_connected:
        lines.append(" redistribute connected")
    lines.append("!")
    lines.append("line vty")
    lines.append("!")
    return "\n".join(lines) + "\n"


def generate_bgpd_conf(hostname: str, local_as: int, router_id: IPv4Address,
                       neighbors: List[BGPNeighbor],
                       networks: Optional[List[IPv4Network]] = None,
                       redistribute_ospf: bool = False,
                       redistribute_connected: bool = False,
                       keepalive_interval: Optional[float] = None,
                       hold_time: Optional[float] = None,
                       prefix_lists: Optional[Dict[str, List[PrefixListEntry]]] = None,
                       password: str = "zebra") -> str:
    """Render a bgpd.conf with the given AS, neighbors and announcements."""
    lines = [f"hostname {hostname}", f"password {password}", "!"]
    for name in sorted(prefix_lists or {}):
        for index, (action, entry) in enumerate(prefix_lists[name]):
            target = "any" if entry is None else str(entry)
            lines.append(f"ip prefix-list {name} seq {(index + 1) * 5} "
                         f"{action} {target}")
    if prefix_lists:
        lines.append("!")
    lines.append(f"router bgp {local_as}")
    lines.append(f" bgp router-id {router_id}")
    if keepalive_interval is not None and hold_time is not None:
        lines.append(f" timers bgp {keepalive_interval:g} {hold_time:g}")
    for neighbor in neighbors:
        lines.append(f" neighbor {neighbor.address} remote-as {neighbor.remote_as}")
        if neighbor.local_pref is not None:
            lines.append(f" neighbor {neighbor.address} "
                         f"local-preference {neighbor.local_pref}")
        if neighbor.med is not None:
            lines.append(f" neighbor {neighbor.address} med {neighbor.med}")
        if neighbor.export_prefix_list is not None:
            lines.append(f" neighbor {neighbor.address} "
                         f"prefix-list {neighbor.export_prefix_list} out")
        if neighbor.relationship is not None:
            lines.append(f" neighbor {neighbor.address} "
                         f"relationship {neighbor.relationship}")
        if neighbor.route_reflector_client:
            lines.append(f" neighbor {neighbor.address} route-reflector-client")
    for network in networks or []:
        lines.append(f" network {network}")
    if redistribute_ospf:
        lines.append(" redistribute ospf")
    if redistribute_connected:
        lines.append(" redistribute connected")
    lines.append("!")
    lines.append("line vty")
    lines.append("!")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Parsing
# --------------------------------------------------------------------------
def _significant_lines(text: str) -> List[str]:
    lines = []
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line or line.lstrip().startswith("!"):
            continue
        lines.append(line)
    return lines


def parse_zebra_conf(text: str) -> ZebraConfig:
    """Parse a zebra.conf produced by :func:`generate_zebra_conf` (or Quagga)."""
    config = ZebraConfig()
    current: Optional[InterfaceConfig] = None
    for line in _significant_lines(text):
        stripped = line.strip()
        indented = line.startswith(" ")
        tokens = stripped.split()
        if not indented:
            current = None
            if tokens[0] == "hostname" and len(tokens) >= 2:
                config.hostname = tokens[1]
            elif tokens[0] == "password" and len(tokens) >= 2:
                config.password = tokens[1]
            elif tokens[0] == "interface" and len(tokens) >= 2:
                current = InterfaceConfig(name=tokens[1])
                config.interfaces.append(current)
            elif tokens[0] == "line":
                continue
            continue
        if current is None:
            continue
        if tokens[:2] == ["ip", "address"] and len(tokens) >= 3:
            if "/" not in tokens[2]:
                raise ConfigError(f"interface address needs a prefix length: {stripped!r}")
            address, plen = tokens[2].split("/", 1)
            current.ip = IPv4Address(address)
            current.prefix_len = int(plen)
        elif tokens[0] == "description":
            current.description = " ".join(tokens[1:])
    return config


def parse_ospfd_conf(text: str) -> OSPFConfig:
    """Parse an ospfd.conf produced by :func:`generate_ospfd_conf` (or Quagga)."""
    config = OSPFConfig()
    in_router = False
    for line in _significant_lines(text):
        stripped = line.strip()
        indented = line.startswith(" ")
        tokens = stripped.split()
        if not indented:
            in_router = tokens[:2] == ["router", "ospf"]
            if tokens[0] == "hostname" and len(tokens) >= 2:
                config.hostname = tokens[1]
            elif tokens[0] == "password" and len(tokens) >= 2:
                config.password = tokens[1]
            continue
        if not in_router:
            continue
        if tokens[:2] == ["ospf", "router-id"] and len(tokens) >= 3:
            config.router_id = IPv4Address(tokens[2])
        elif tokens[:3] == ["timers", "ospf", "hello-interval"] and len(tokens) >= 4:
            config.hello_interval = int(tokens[3])
        elif tokens[:3] == ["timers", "ospf", "dead-interval"] and len(tokens) >= 4:
            config.dead_interval = int(tokens[3])
        elif tokens[0] == "network" and len(tokens) >= 4 and tokens[2] == "area":
            config.networks.append(OSPFNetworkStatement(prefix=IPv4Network(tokens[1]),
                                                        area=tokens[3]))
        elif tokens[:2] == ["redistribute", "bgp"]:
            config.redistribute_bgp = True
        elif tokens[:2] == ["redistribute", "connected"]:
            config.redistribute_connected = True
    if config.router_id is None:
        raise ConfigError("ospfd.conf is missing 'ospf router-id'")
    return config


def parse_bgpd_conf(text: str) -> BGPConfig:
    """Parse a bgpd.conf produced by :func:`generate_bgpd_conf` (or Quagga)."""
    config = BGPConfig()
    in_router = False
    for line in _significant_lines(text):
        stripped = line.strip()
        indented = line.startswith(" ")
        tokens = stripped.split()
        if not indented:
            if tokens[:2] == ["router", "bgp"] and len(tokens) >= 3:
                in_router = True
                config.local_as = int(tokens[2])
            else:
                in_router = False
                if tokens[0] == "hostname" and len(tokens) >= 2:
                    config.hostname = tokens[1]
                elif tokens[0] == "password" and len(tokens) >= 2:
                    config.password = tokens[1]
                elif tokens[:2] == ["ip", "prefix-list"] and len(tokens) >= 6 \
                        and tokens[3] == "seq":
                    action = tokens[5]
                    if action not in ("permit", "deny"):
                        raise ConfigError(f"bad prefix-list action: {stripped!r}")
                    entry = None if len(tokens) < 7 or tokens[6] == "any" \
                        else IPv4Network(tokens[6])
                    config.prefix_lists.setdefault(tokens[2], []).append(
                        (action, entry))
            continue
        if not in_router:
            continue
        if tokens[:2] == ["bgp", "router-id"] and len(tokens) >= 3:
            config.router_id = IPv4Address(tokens[2])
        elif tokens[:2] == ["timers", "bgp"] and len(tokens) >= 4:
            config.keepalive_interval = float(tokens[2])
            config.hold_time = float(tokens[3])
        elif tokens[0] == "neighbor" and len(tokens) >= 4 and tokens[2] == "remote-as":
            config.neighbors.append(BGPNeighbor(address=IPv4Address(tokens[1]),
                                                remote_as=int(tokens[3])))
        elif tokens[0] == "neighbor" and len(tokens) >= 4 \
                and tokens[2] in ("local-preference", "med", "prefix-list",
                                  "relationship"):
            neighbor = config.neighbor(IPv4Address(tokens[1]))
            if neighbor is None:
                raise ConfigError(
                    f"policy for unknown neighbor (no remote-as yet): {stripped!r}")
            if tokens[2] == "local-preference":
                neighbor.local_pref = int(tokens[3])
            elif tokens[2] == "med":
                neighbor.med = int(tokens[3])
            elif tokens[2] == "relationship":
                if tokens[3] not in ("customer", "peer", "provider"):
                    raise ConfigError(f"bad neighbor relationship: {stripped!r}")
                neighbor.relationship = tokens[3]
            else:  # prefix-list NAME out
                neighbor.export_prefix_list = tokens[3]
        elif tokens[0] == "neighbor" and len(tokens) >= 3 \
                and tokens[2] == "route-reflector-client":
            neighbor = config.neighbor(IPv4Address(tokens[1]))
            if neighbor is None:
                raise ConfigError(
                    f"policy for unknown neighbor (no remote-as yet): {stripped!r}")
            neighbor.route_reflector_client = True
        elif tokens[0] == "network" and len(tokens) >= 2:
            config.networks.append(IPv4Network(tokens[1]))
        elif tokens[:2] == ["redistribute", "ospf"]:
            config.redistribute_ospf = True
        elif tokens[:2] == ["redistribute", "connected"]:
            config.redistribute_connected = True
    return config
