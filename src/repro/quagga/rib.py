"""Routing information base (RIB) shared by the Quagga-style daemons.

The RIB holds candidate routes from multiple protocols (connected, static,
OSPF, BGP), selects the best one per prefix using administrative distance
then metric, and notifies listeners when the selected route for a prefix
changes.  The zebra daemon wraps one RIB per virtual machine and pushes
selected routes into the VM's FIB, from where the RouteFlow client exports
them to the physical switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Network


class RouteSource:
    """Route origins and their default administrative distances."""

    CONNECTED = "connected"
    STATIC = "static"
    OSPF = "ospf"
    BGP = "bgp"
    #: Traffic-engineering overrides installed by the TE controller
    #: (:mod:`repro.te`).  Distance 15 sits between static (1) and eBGP
    #: (20): a TE steer beats every protocol-learned route to the same
    #: prefix but never a connected or operator-pinned static route.
    TE = "te"

    DISTANCES = {
        CONNECTED: 0,
        STATIC: 1,
        TE: 15,
        OSPF: 110,
        BGP: 20,
    }

    #: Routes learned over *internal* BGP sessions carry the classic 200
    #: administrative distance (set per-route via :attr:`Route.distance`),
    #: so an iBGP path never beats the IGP to the same prefix while an
    #: eBGP path (20) always does.
    IBGP_DISTANCE = 200

    @classmethod
    def distance(cls, source: str) -> int:
        return cls.DISTANCES.get(source, 255)


@dataclass(frozen=True)
class Route:
    """A single candidate route."""

    prefix: IPv4Network
    next_hop: Optional[IPv4Address]
    interface: str
    source: str
    metric: int = 0
    distance: Optional[int] = None
    #: Opaque route tag carried with the route (like the OSPF external route
    #: tag): OSPF marks routes it computed from redistributed (AS-external)
    #: prefixes with :data:`repro.quagga.ospf.constants.EXTERNAL_ROUTE_TAG`,
    #: and the BGP daemon's ``redistribute ospf`` skips them — the guard
    #: that keeps a leaked external route from re-entering BGP with a
    #: truncated AS path.
    tag: int = 0

    @property
    def admin_distance(self) -> int:
        if self.distance is not None:
            return self.distance
        return RouteSource.distance(self.source)

    @property
    def is_connected(self) -> bool:
        return self.source == RouteSource.CONNECTED

    def __str__(self) -> str:
        via = str(self.next_hop) if self.next_hop is not None else "directly connected"
        return f"{self.prefix} via {via} dev {self.interface} [{self.source}/{self.metric}]"


#: Callback signature: ``f(prefix, new_best_or_None, previous_best_or_None)``.
RouteChangeListener = Callable[[IPv4Network, Optional[Route], Optional[Route]], None]


class RIB:
    """Candidate routes per prefix with best-path selection."""

    def __init__(self) -> None:
        self._routes: Dict[IPv4Network, List[Route]] = {}
        self._selected: Dict[IPv4Network, Route] = {}
        self._listeners: List[RouteChangeListener] = []

    # -------------------------------------------------------------- listeners
    def add_listener(self, listener: RouteChangeListener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------- CRUD
    def add_route(self, route: Route) -> bool:
        """Insert or replace a candidate; returns True if the best changed."""
        candidates = self._routes.setdefault(route.prefix, [])
        # A protocol re-announcing a prefix replaces its previous candidate.
        candidates[:] = [r for r in candidates
                         if not (r.source == route.source and r.next_hop == route.next_hop
                                 and r.interface == route.interface)]
        candidates.append(route)
        return self._reselect(route.prefix)

    def remove_route(self, prefix: IPv4Network, source: str,
                     next_hop: Optional[IPv4Address] = None) -> bool:
        """Withdraw candidates of a protocol; returns True if the best changed."""
        candidates = self._routes.get(prefix)
        if not candidates:
            return False
        remaining = [r for r in candidates
                     if not (r.source == source
                             and (next_hop is None or r.next_hop == next_hop))]
        if len(remaining) == len(candidates):
            return False
        if remaining:
            self._routes[prefix] = remaining
        else:
            del self._routes[prefix]
        return self._reselect(prefix)

    def remove_all_from(self, source: str) -> List[IPv4Network]:
        """Withdraw every candidate of a protocol (daemon shutdown)."""
        changed = []
        for prefix in list(self._routes):
            if self.remove_route(prefix, source):
                changed.append(prefix)
        return changed

    def replace_routes(self, source: str,
                       routes: Iterable[Route]) -> List[IPv4Network]:
        """Reconcile a protocol's candidates against a full snapshot.

        ``routes`` is the protocol's *complete* current route set (one per
        prefix, e.g. the result of an SPF run).  Candidates the protocol no
        longer announces — including ones for the same prefix with a stale
        next hop or metric — are withdrawn, new and changed ones installed,
        and best-path selection re-runs once per affected prefix.  This is
        what keeps an equal-metric stale candidate from surviving a
        next-hop change and winning :meth:`_reselect`'s tie-break forever.

        Returns the prefixes whose selected route changed, in ascending
        prefix order (listeners fire in the same deterministic order).
        """
        new_by_prefix: Dict[IPv4Network, Route] = {}
        for route in routes:
            if route.source != source:
                raise ValueError(
                    f"route {route} does not belong to source {source!r}")
            new_by_prefix[route.prefix] = route
        affected = set(new_by_prefix)
        for prefix, candidates in self._routes.items():
            if any(r.source == source for r in candidates):
                affected.add(prefix)
        changed: List[IPv4Network] = []
        for prefix in sorted(affected,
                             key=lambda p: (int(p.network), p.prefix_len)):
            candidates = self._routes.get(prefix)
            new = new_by_prefix.get(prefix)
            if candidates:
                existing = [r for r in candidates if r.source == source]
                if new is not None and len(existing) == 1 and existing[0] == new:
                    continue  # unchanged: skip the reselect round trip
                remaining = [r for r in candidates if r.source != source]
            else:
                remaining = []
            if new is not None:
                remaining.append(new)
            if remaining:
                self._routes[prefix] = remaining
            else:
                self._routes.pop(prefix, None)
            if self._reselect(prefix):
                changed.append(prefix)
        return changed

    # -------------------------------------------------------------- selection
    def _reselect(self, prefix: IPv4Network) -> bool:
        candidates = self._routes.get(prefix, [])
        best = min(candidates, key=lambda r: (r.admin_distance, r.metric),
                   default=None)
        previous = self._selected.get(prefix)
        if best == previous:
            return False
        if best is None:
            del self._selected[prefix]
        else:
            self._selected[prefix] = best
        for listener in self._listeners:
            listener(prefix, best, previous)
        return True

    # ------------------------------------------------------------------ reads
    def best_route(self, prefix: IPv4Network) -> Optional[Route]:
        return self._selected.get(prefix)

    def lookup(self, destination: IPv4Address) -> Optional[Route]:
        """Longest-prefix-match lookup over the selected routes."""
        best: Optional[Route] = None
        for prefix, route in self._selected.items():
            if destination in prefix:
                if best is None or prefix.prefix_len > best.prefix.prefix_len:
                    best = route
        return best

    @property
    def selected_routes(self) -> List[Route]:
        return sorted(self._selected.values(),
                      key=lambda r: (int(r.prefix.network), r.prefix.prefix_len))

    def routes_from(self, source: str) -> List[Route]:
        return [r for r in self.selected_routes if r.source == source]

    def candidates(self, prefix: IPv4Network) -> List[Route]:
        """All candidate routes for a prefix (selected or not)."""
        return list(self._routes.get(prefix, ()))

    def candidates_from(self, source: str) -> Dict[IPv4Network, List[Route]]:
        """Every candidate a protocol currently has installed, per prefix."""
        result: Dict[IPv4Network, List[Route]] = {}
        for prefix, candidates in self._routes.items():
            mine = [r for r in candidates if r.source == source]
            if mine:
                result[prefix] = mine
        return result

    def __len__(self) -> int:
        return len(self._selected)

    def __contains__(self, prefix: IPv4Network) -> bool:
        return prefix in self._selected
