"""Figure 3: automatic vs manual configuration time on ring topologies.

For each ring size the experiment builds the emulated network, attaches a
cold automatic-configuration framework, runs the simulation until RouteFlow
is fully configured (every switch mirrored by a running VM, every link
addressed, OSPF converged everywhere) and records the simulated time.  The
manual baseline uses the paper's 5+2+8-minutes-per-switch model.
"""

from __future__ import annotations

import logging
from typing import Iterable, List, Optional

from repro.core.autoconfig import AutoConfigFramework, FrameworkConfig
from repro.core.ipam import IPAddressManager
from repro.core.manual_model import ManualConfigurationModel
from repro.experiments.results import ConfigTimeResult, format_seconds, format_table
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import ring_topology
from repro.topology.graph import Topology

LOG = logging.getLogger(__name__)

#: Ring sizes reported in the paper's Figure 3 sweep.
DEFAULT_RING_SIZES = (4, 8, 12, 16, 20, 24, 28)


def run_single_configuration(topology: Topology,
                             config: Optional[FrameworkConfig] = None,
                             max_time: float = 3600.0) -> ConfigTimeResult:
    """Configure one topology automatically and measure the time taken."""
    sim = Simulator()
    framework_config = config if config is not None else FrameworkConfig(
        detect_edge_ports=False)
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=framework_config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    auto_seconds = framework.run_until_configured(max_time=max_time)
    manual = ManualConfigurationModel()
    return ConfigTimeResult(
        num_switches=topology.num_nodes,
        num_links=topology.num_links,
        auto_seconds=auto_seconds,
        manual_seconds=manual.seconds_for(topology.num_nodes),
        milestones=dict(framework.milestones),
        link_stats=network.stats(),
    )


def run_config_time_sweep(ring_sizes: Iterable[int] = DEFAULT_RING_SIZES,
                          config: Optional[FrameworkConfig] = None,
                          max_time: float = 3600.0) -> List[ConfigTimeResult]:
    """Reproduce the Figure 3 sweep over ring topologies."""
    results = []
    for size in ring_sizes:
        topology = ring_topology(size)
        result = run_single_configuration(topology, config=config, max_time=max_time)
        LOG.info("config-time: %d switches -> auto %s, manual %s", size,
                 format_seconds(result.auto_seconds),
                 format_seconds(result.manual_seconds))
        results.append(result)
    return results


def render_config_time_table(results: List[ConfigTimeResult]) -> str:
    """Render the Figure 3 series as an ASCII table."""
    rows = []
    for result in results:
        rows.append([
            result.num_switches,
            format_seconds(result.auto_seconds),
            format_seconds(result.manual_seconds),
            f"{result.speedup:.0f}x" if result.speedup else "n/a",
        ])
    return format_table(
        ["switches", "automatic", "manual (paper model)", "speedup"], rows)
