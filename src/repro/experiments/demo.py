"""The paper's demonstration (§3): video over the 28-node pan-European network.

Two hosts — a streaming server and a remote client — are attached to edge
switches of the pan-European topology.  The stream starts at t = 0, when
the RF-controller holds no configuration at all.  The automatic framework
then discovers the network, creates the VMs, writes the Quagga
configurations, waits for OSPF to converge and pushes the resulting routes
down as flow entries; the moment the first video frame reaches the client
is the demo's headline number (around 4 minutes in the paper, against
roughly 7 hours of manual configuration for 28 switches).
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.app.streaming import VideoStreamClient, VideoStreamServer
from repro.core.autoconfig import AutoConfigFramework, FrameworkConfig
from repro.core.ipam import IPAddressManager
from repro.core.manual_model import ManualConfigurationModel
from repro.experiments.results import DemoResult
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.graph import Topology
from repro.topology.pan_european import pan_european_topology

LOG = logging.getLogger(__name__)

#: Default attachment points: the server sits in Stockholm, the remote
#: client in Madrid — opposite corners of the pan-European topology.
DEFAULT_SERVER_CITY = "Stockholm"
DEFAULT_CLIENT_CITY = "Madrid"


def run_demo(topology: Optional[Topology] = None,
             server_node: Optional[int] = None,
             client_node: Optional[int] = None,
             config: Optional[FrameworkConfig] = None,
             max_time: float = 1800.0,
             extra_run_time: float = 30.0) -> DemoResult:
    """Run the demonstration and report when the video reached the client."""
    sim = Simulator()
    topo = topology if topology is not None else pan_european_topology()
    if server_node is None:
        server_node = topo.node_by_name(DEFAULT_SERVER_CITY).node_id if topology is None \
            else topo.nodes[0].node_id
    if client_node is None:
        client_node = topo.node_by_name(DEFAULT_CLIENT_CITY).node_id if topology is None \
            else topo.nodes[-1].node_id
    topo.attach_host("video-server", server_node)
    topo.attach_host("video-client", client_node)

    framework_config = config if config is not None else FrameworkConfig()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=framework_config, ipam=ipam)
    network = EmulatedNetwork(sim, topo, ipam=ipam)
    framework.attach(network)

    server_host = network.host("video-server")
    client_host = network.host("video-client")
    server = VideoStreamServer(sim, server_host, client_ip=client_host.ip)
    client = VideoStreamClient(sim, client_host, server_ip=server_host.ip)
    # The demo starts the stream immediately, before anything is configured.
    server.start()
    client.start()

    configuration_seconds = framework.run_until_configured(max_time=max_time)
    # Keep running until the video arrives (or the deadline passes).
    deadline = min(max_time, sim.now + max_time)
    while sim.now < deadline and not client.video_started:
        sim.run(until=min(sim.now + 5.0, deadline))
    if client.video_started:
        sim.run(until=sim.now + extra_run_time)

    manual = ManualConfigurationModel()
    result = DemoResult(
        topology_name=topo.name,
        num_switches=topo.num_nodes,
        num_links=topo.num_links,
        video_start_seconds=client.time_to_first_frame,
        configuration_seconds=configuration_seconds,
        manual_seconds=manual.seconds_for(topo.num_nodes),
        frames_received=client.stats.frames_received,
        frames_sent=server.frames_sent,
        green_timeline=framework.gui.configuration_timeline(),
        milestones=dict(framework.milestones),
        gui_text=framework.gui.render_text(),
    )
    LOG.info("demo: video started after %s, configuration finished after %s",
             result.video_start_seconds, result.configuration_seconds)
    return result


def render_demo_report(result: DemoResult) -> str:
    """A textual report mirroring what the demo's GUI and narration showed."""
    lines = [
        f"Demonstration on {result.topology_name} "
        f"({result.num_switches} switches, {result.num_links} links)",
        "",
        result.gui_text,
        "",
        f"Milestones:",
    ]
    for name, when in sorted(result.milestones.items(), key=lambda item: item[1]):
        lines.append(f"  {when:8.1f} s  {name}")
    if result.video_start_seconds is not None:
        lines.append(f"  {result.video_start_seconds:8.1f} s  first video frame at client")
        lines.append("")
        lines.append(f"Video reached the client after "
                     f"{result.video_start_seconds / 60.0:.1f} minutes "
                     f"(paper: around 4 minutes).")
    else:
        lines.append("  video did not reach the client within the deadline")
    lines.append(f"Manual configuration for {result.num_switches} switches "
                 f"(paper model): {result.manual_seconds / 3600.0:.1f} hours.")
    return "\n".join(lines)
