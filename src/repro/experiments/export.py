"""Export experiment results to CSV, JSON and Markdown.

The benchmark harness prints tables to the terminal; this module writes the
same data to files so results can be archived next to EXPERIMENTS.md or
plotted externally (the CSV columns match the series of Figure 3).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.experiments.failover import FailoverResult
from repro.experiments.results import AblationResult, ConfigTimeResult, DemoResult
from repro.experiments.sweep import SweepResult

PathLike = Union[str, Path]


def write_config_time_csv(results: Iterable[ConfigTimeResult], path: PathLike) -> Path:
    """Write the Figure 3 series as CSV (one row per ring size)."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["switches", "links", "auto_seconds", "manual_seconds",
                         "speedup"])
        for result in results:
            writer.writerow([result.num_switches, result.num_links,
                             _round(result.auto_seconds), _round(result.manual_seconds),
                             _round(result.speedup)])
    return target


def write_config_time_json(results: Iterable[ConfigTimeResult], path: PathLike) -> Path:
    """Write the Figure 3 series as JSON, including the per-run milestones."""
    payload = [
        {
            "switches": result.num_switches,
            "links": result.num_links,
            "auto_seconds": result.auto_seconds,
            "manual_seconds": result.manual_seconds,
            "speedup": result.speedup,
            "milestones": result.milestones,
        }
        for result in results
    ]
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def write_demo_json(result: DemoResult, path: PathLike) -> Path:
    """Write the demo outcome (timings, timeline, frame counts) as JSON."""
    payload = {
        "topology": result.topology_name,
        "switches": result.num_switches,
        "links": result.num_links,
        "video_start_seconds": result.video_start_seconds,
        "configuration_seconds": result.configuration_seconds,
        "manual_seconds": result.manual_seconds,
        "frames_sent": result.frames_sent,
        "frames_received": result.frames_received,
        "milestones": result.milestones,
        "green_timeline": [[when, dpid] for when, dpid in result.green_timeline],
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def write_ablation_csv(results: Iterable[AblationResult], path: PathLike) -> Path:
    """Write an ablation series as CSV (parameter, configuration time)."""
    target = Path(path)
    results = list(results)
    label = results[0].label if results else "parameter"
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([label, "auto_seconds"])
        for result in results:
            writer.writerow([result.parameter, _round(result.auto_seconds)])
    return target


def write_markdown_report(config_results: List[ConfigTimeResult],
                          demo: Optional[DemoResult], path: PathLike) -> Path:
    """Write a compact Markdown report mirroring EXPERIMENTS.md's tables."""
    lines = ["# Measured results", ""]
    if config_results:
        lines += ["## Figure 3 — configuration time (ring topologies)", "",
                  "| switches | automatic (s) | manual (min) | speed-up |",
                  "|---|---|---|---|"]
        for result in config_results:
            lines.append(
                f"| {result.num_switches} | {_round(result.auto_seconds)} "
                f"| {_round(result.manual_seconds / 60.0)} "
                f"| {_round(result.speedup)} |")
        lines.append("")
    if demo is not None:
        lines += ["## Demonstration — pan-European video delivery", "",
                  f"* topology: {demo.topology_name} ({demo.num_switches} switches, "
                  f"{demo.num_links} links)",
                  f"* video reached the client after: "
                  f"{_round(demo.video_start_seconds)} s",
                  f"* full configuration after: {_round(demo.configuration_seconds)} s",
                  f"* manual baseline: {_round(demo.manual_seconds / 3600.0)} h",
                  f"* frames received: {demo.frames_received} / {demo.frames_sent}",
                  ""]
    target = Path(path)
    target.write_text("\n".join(lines))
    return target


def write_sweep_json(results: Iterable[SweepResult], path: PathLike) -> Path:
    """Write a scenario sweep as JSON (round-trips via :func:`read_sweep_json`)."""
    payload = [
        {
            "scenario": result.scenario,
            "family": result.family,
            "seed": result.seed,
            "controllers": result.controllers,
            "switches": result.num_switches,
            "links": result.num_links,
            "auto_seconds": result.auto_seconds,
            "manual_seconds": result.manual_seconds,
            "speedup": result.speedup,
            "milestones": result.milestones,
            "frames_delivered": result.frames_delivered,
            "frames_dropped": result.frames_dropped,
            "wall_seconds": result.wall_seconds,
        }
        for result in results
    ]
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def read_sweep_json(path: PathLike) -> List[SweepResult]:
    """Load a sweep previously written by :func:`write_sweep_json`."""
    payload = json.loads(Path(path).read_text())
    return [
        SweepResult(
            scenario=entry["scenario"],
            family=entry["family"],
            seed=int(entry["seed"]),
            controllers=int(entry.get("controllers", 1)),
            num_switches=int(entry["switches"]),
            num_links=int(entry["links"]),
            auto_seconds=entry["auto_seconds"],
            manual_seconds=entry["manual_seconds"],
            milestones=dict(entry.get("milestones", {})),
            frames_delivered=int(entry.get("frames_delivered", 0)),
            frames_dropped=int(entry.get("frames_dropped", 0)),
            wall_seconds=float(entry.get("wall_seconds", 0.0)),
        )
        for entry in payload
    ]


def write_sweep_csv(results: Iterable[SweepResult], path: PathLike) -> Path:
    """Write a scenario sweep as CSV (one row per scenario, no milestones)."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "family", "seed", "controllers",
                         "switches", "links", "auto_seconds",
                         "manual_seconds", "speedup", "frames_delivered",
                         "frames_dropped"])
        for result in results:
            writer.writerow([result.scenario, result.family, result.seed,
                             result.controllers,
                             result.num_switches, result.num_links,
                             result.auto_seconds, result.manual_seconds,
                             result.speedup, result.frames_delivered,
                             result.frames_dropped])
    return target


def read_sweep_csv(path: PathLike) -> List[SweepResult]:
    """Load a sweep previously written by :func:`write_sweep_csv`.

    The CSV format carries no milestones or wall-clock column, so those
    fields come back empty/zero.  Frame counters default to zero for files
    written before the columns existed.
    """
    results = []
    with Path(path).open(newline="") as handle:
        for row in csv.DictReader(handle):
            auto = row["auto_seconds"]
            results.append(SweepResult(
                scenario=row["scenario"],
                family=row["family"],
                seed=int(row["seed"]),
                controllers=int(row.get("controllers") or 1),
                num_switches=int(row["switches"]),
                num_links=int(row["links"]),
                auto_seconds=float(auto) if auto not in ("", "None") else None,
                manual_seconds=float(row["manual_seconds"]),
                frames_delivered=int(row.get("frames_delivered") or 0),
                frames_dropped=int(row.get("frames_dropped") or 0),
            ))
    return results


def write_failover_json(results: Iterable[FailoverResult], path: PathLike) -> Path:
    """Write a failover suite as JSON (per-event measurements included)."""
    payload = [
        {
            "scenario": result.scenario,
            "family": result.family,
            "seed": result.seed,
            "switches": result.num_switches,
            "links": result.num_links,
            "configured_seconds": result.configured_seconds,
            "settled": result.settled,
            "events": [
                {
                    "index": event.index,
                    "action": event.action,
                    "description": event.description,
                    "at_seconds": event.at_seconds,
                    "reconverge_seconds": event.reconverge_seconds,
                    "route_changes": event.route_changes,
                    "frames_lost": event.frames_lost,
                }
                for event in result.events
            ],
            "invariant_violations": list(result.invariant_violations),
            "link_stats": dict(result.link_stats),
            "wall_seconds": result.wall_seconds,
        }
        for result in results
    ]
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def write_failover_csv(results: Iterable[FailoverResult], path: PathLike) -> Path:
    """Write a failover suite as CSV, one row per injected failure event.

    The per-run delivery/drop totals ride on every row so the file stays
    flat (same shape as the sweep CSV).
    """
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "family", "seed", "switches", "links",
                         "configured_seconds", "event_index", "action",
                         "event", "at_seconds", "reconverge_seconds",
                         "route_changes", "frames_lost", "frames_delivered",
                         "frames_dropped"])
        for result in results:
            delivered = result.link_stats.get("frames_delivered", 0)
            dropped = result.link_stats.get("frames_dropped", 0)
            if not result.events:
                writer.writerow([result.scenario, result.family, result.seed,
                                 result.num_switches, result.num_links,
                                 result.configured_seconds, "", "", "", "",
                                 "", "", "", delivered, dropped])
                continue
            for event in result.events:
                writer.writerow([result.scenario, result.family, result.seed,
                                 result.num_switches, result.num_links,
                                 result.configured_seconds, event.index,
                                 event.action, event.description,
                                 event.at_seconds, event.reconverge_seconds,
                                 event.route_changes, event.frames_lost,
                                 delivered, dropped])
    return target


def _round(value: Optional[float], digits: int = 1) -> Optional[float]:
    if value is None:
        return None
    return round(value, digits)
