"""Parallel scenario sweeps.

Generalises the Figure 3 harness: any list of registered (or ad-hoc)
:class:`~repro.scenarios.ScenarioSpec` objects is executed as a sweep, one
independent simulation per scenario.  Runs are embarrassingly parallel —
every scenario builds its own simulator, topology and framework from a
deterministic seed — so with ``workers > 1`` they are fanned out across
processes with :class:`concurrent.futures.ProcessPoolExecutor`.  Results
come back in scenario order and are bit-identical to a serial run.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.experiments.config_time import run_single_configuration
from repro.experiments.results import format_seconds, format_table
from repro.scenarios import ScenarioSpec, resolve

LOG = logging.getLogger(__name__)

ScenarioLike = Union[str, ScenarioSpec]


@dataclass
class SweepResult:
    """The outcome of configuring one scenario."""

    scenario: str
    family: str
    seed: int
    num_switches: int
    num_links: int
    auto_seconds: Optional[float]
    manual_seconds: float
    #: Controller shards the scenario ran under (1 = single RF-controller).
    controllers: int = 1
    milestones: Dict[str, float] = field(default_factory=dict)
    #: Physical frames delivered / dropped across the emulated network by
    #: the end of the run (from ``EmulatedNetwork.stats()``).
    frames_delivered: int = 0
    frames_dropped: int = 0
    #: Host wall-clock spent on this run (not simulated time; informational
    #: only — it varies between runs and machines and is excluded from
    #: equality comparisons in the test-suite).
    wall_seconds: float = 0.0

    @property
    def configured(self) -> bool:
        return self.auto_seconds is not None

    @property
    def speedup(self) -> Optional[float]:
        if not self.auto_seconds:
            return None
        return self.manual_seconds / self.auto_seconds


def run_scenario(spec: ScenarioSpec) -> SweepResult:
    """Build and automatically configure one scenario, measuring the time.

    Delegates the measurement itself to the Figure 3 harness
    (:func:`run_single_configuration`), so sweep numbers can never diverge
    from the paper-figure numbers for the same topology.
    """
    started = time.perf_counter()
    topology = spec.build_topology()
    measured = run_single_configuration(topology,
                                        config=spec.framework_config(topology),
                                        max_time=spec.max_time)
    return SweepResult(
        scenario=spec.name,
        family=spec.family,
        seed=spec.seed,
        num_switches=measured.num_switches,
        num_links=measured.num_links,
        auto_seconds=measured.auto_seconds,
        manual_seconds=measured.manual_seconds,
        controllers=spec.controllers,
        milestones=dict(measured.milestones),
        frames_delivered=measured.link_stats.get("frames_delivered", 0),
        frames_dropped=measured.link_stats.get("frames_dropped", 0),
        wall_seconds=time.perf_counter() - started,
    )


def _resolve_specs(scenarios: Iterable[ScenarioLike]) -> List[ScenarioSpec]:
    specs: List[ScenarioSpec] = []
    for item in scenarios:
        if isinstance(item, ScenarioSpec):
            specs.append(item)
        else:
            specs.extend(resolve([item]))
    return specs


def run_sweep(scenarios: Union[ScenarioLike, Sequence[ScenarioLike]],
              workers: int = 1,
              controllers: Optional[int] = None) -> List[SweepResult]:
    """Run every scenario and return their results in input order.

    ``scenarios`` mixes registry names and ad-hoc :class:`ScenarioSpec`
    objects.  ``workers=1`` runs serially in-process; ``workers > 1`` fans
    the runs out over a process pool (each worker re-imports the package,
    so ad-hoc specs must be picklable — plain dataclasses always are).
    Per-scenario seeds live in the specs themselves, so the results are
    independent of ``workers`` and of scheduling order.  ``controllers``
    overrides every scenario's controller-shard count for the sweep
    (``repro sweep --controllers``).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if isinstance(scenarios, (str, ScenarioSpec)):
        # A lone name/spec would otherwise be iterated element-by-element
        # (character-by-character for a string).
        scenarios = [scenarios]
    specs = _resolve_specs(scenarios)
    if controllers is not None:
        specs = [spec.with_controllers(controllers) for spec in specs]
    if not specs:
        return []
    if workers == 1 or len(specs) == 1:
        results = []
        for spec in specs:
            result = run_scenario(spec)
            LOG.info("sweep: %s (%d switches) -> auto %s", spec.name,
                     result.num_switches, format_seconds(result.auto_seconds))
            results.append(result)
        return results
    with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
        # ``map`` preserves submission order regardless of completion order.
        results = list(pool.map(run_scenario, specs, chunksize=1))
    for result in results:
        LOG.info("sweep: %s (%d switches) -> auto %s", result.scenario,
                 result.num_switches, format_seconds(result.auto_seconds))
    return results


def expand_seeds(spec: ScenarioSpec, seeds: Iterable[int]) -> List[ScenarioSpec]:
    """One spec per seed, for seed-replication sweeps of stochastic families."""
    return [spec.with_seed(seed) for seed in seeds]


def render_sweep_table(results: Sequence[SweepResult]) -> str:
    """Render a sweep as an ASCII table."""
    rows = []
    for result in results:
        rows.append([
            result.scenario,
            result.num_switches,
            result.num_links,
            format_seconds(result.auto_seconds),
            format_seconds(result.manual_seconds),
            f"{result.speedup:.0f}x" if result.speedup else "n/a",
        ])
    return format_table(
        ["scenario", "switches", "links", "automatic", "manual (paper model)",
         "speedup"], rows)
