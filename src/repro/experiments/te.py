"""Traffic-engineering experiments: the ``repro te`` subcommand.

A TE run drives the same fluid demand set through a scenario once per
policy — ``none`` (the shortest-path plane untouched, the baseline),
``static-ecmp``, ``greedy``, ``bandit`` — and reports per-policy
delivered throughput, loss, p99 path stretch and re-route counts, so
the utilization-aware policies can be compared against the static plane
under identical offered load, induced bottlenecks and failure schedules.

Two actuation engines (see :mod:`repro.te`):

* ``zebra`` — the scenario converges the full control plane and steers
  ride RIB → FIB → RouteMod → OFPFC_DELETE;
* ``synthetic`` — RouteFlow-shaped flow tables are installed directly
  (:class:`~repro.traffic.SyntheticRoutes`) and steers override them at
  one priority level up, which keeps 256-router/1M-demand runs
  tractable while exercising the same strict delete + add discipline.

``engine="auto"`` (the default) picks ``zebra`` up to 64 switches.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.scenarios import ScenarioSpec, get
from repro.te import (AUTO_ZEBRA_MAX_SWITCHES, FlowTableActuator,
                      TEController, TESpec, ZebraActuator, adjacency_of,
                      make_policy)
from repro.traffic import DemandSpec, FluidEngine, generate_demands

LOG = logging.getLogger(__name__)

#: Extra simulated seconds past the last demand/failure event.
DEFAULT_SETTLE = 5.0

#: Simulated traffic-phase length when nothing else bounds the run.
DEFAULT_WINDOW = 30.0

#: The default policy sweep: the untouched shortest-path plane first
#: (the baseline every other row's ``delivered_gain`` is relative to).
DEFAULT_POLICIES = ("none", "static-ecmp", "greedy", "bandit")


@dataclass
class TEPolicyResult:
    """The outcome of one scenario run under one TE policy."""

    policy: str
    configured_seconds: Optional[float]
    demands: int = 0
    commodities: int = 0
    delivered_commodities: int = 0
    unrouted_commodities: int = 0
    duration_seconds: float = 0.0
    offered_bits: float = 0.0
    delivered_bits: float = 0.0
    #: Path stretch (resolved hops / shortest possible hops) over the
    #: delivered commodities at the end of the run.
    stretch_mean: float = 1.0
    stretch_p99: float = 1.0
    #: Controller counters (zero under ``none``).
    reroutes: int = 0
    steers: int = 0
    steer_changes: int = 0
    decisions: int = 0
    samples: int = 0
    pruned_steers: int = 0
    #: RouteMod messages observed on the bus (zebra engine only).
    route_mods: int = 0
    wall_seconds: float = 0.0
    #: Delivered-throughput gain over the suite's baseline run (set by
    #: :func:`run_te`; 0.0 for the baseline itself).
    delivered_gain: float = 0.0

    @property
    def loss_fraction(self) -> float:
        if self.offered_bits <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.delivered_bits / self.offered_bits)

    @property
    def delivered(self) -> bool:
        """Did every commodity find a path at the end of the run?"""
        return self.commodities > 0 \
            and self.delivered_commodities == self.commodities


@dataclass
class TEResult:
    """A per-policy comparison over one scenario."""

    scenario: str
    family: str
    seed: int
    num_switches: int
    num_links: int
    engine: str
    model: str
    hot_link: Optional[str] = None
    results: List[TEPolicyResult] = field(default_factory=list)

    @property
    def baseline(self) -> Optional[TEPolicyResult]:
        return self.results[0] if self.results else None

    def result_for(self, policy: str) -> Optional[TEPolicyResult]:
        for result in self.results:
            if result.policy == policy:
                return result
        return None

    @property
    def healthy(self) -> bool:
        """Every policy run routed every commodity at the end."""
        return bool(self.results) and all(r.delivered for r in self.results)


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 1.0
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1,
                       int(fraction * len(ordered) + 0.999999) - 1))
    return ordered[index]


def _bfs_hops(adjacency, source: int) -> Dict[int, int]:
    """Hop counts from ``source`` over the adjacency (undirected)."""
    from collections import deque

    hops = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for peer in adjacency.get(node, ()):
            if peer not in hops:
                hops[peer] = hops[node] + 1
                queue.append(peer)
    return hops


def _stretch(engine: FluidEngine, network, owner_of) -> Tuple[float, float]:
    """(mean, p99) path stretch over the delivered commodities."""
    adjacency = adjacency_of(network)
    shortest: Dict[int, Dict[int, int]] = {}
    stretches: List[float] = []
    for (src, dst_int), commodity in engine.commodities.items():
        path = commodity.path
        if path is None or not path.delivered or len(path.dpids) < 2:
            continue
        dst = owner_of(dst_int)
        if dst is None:
            continue
        hops = len(path.dpids) - 1
        if dst not in shortest:
            shortest[dst] = _bfs_hops(adjacency, dst)
        best = shortest[dst].get(src, 0)
        if best > 0:
            stretches.append(hops / best)
    if not stretches:
        return 1.0, 1.0
    return sum(stretches) / len(stretches), _percentile(stretches, 0.99)


def _scale_hot_link(network, te_spec: TESpec) -> Optional[str]:
    """Scale the induced hot link's capacity down; returns its name."""
    pair = te_spec.hot_link_pair()
    if pair is None:
        return None
    node_a, node_b = pair
    port_a, _port_b = network.ports_for_link(node_a, node_b)
    link = network.switches[node_a].port(port_a).interface.link
    link.bandwidth_bps *= te_spec.hot_capacity_scale
    return link.name


def _resolve_engine(te_spec: TESpec, num_switches: int) -> str:
    if te_spec.engine != "auto":
        return te_spec.engine
    return "zebra" if num_switches <= AUTO_ZEBRA_MAX_SWITCHES else "synthetic"


def _horizon(spec: ScenarioSpec, demand_set, window: float) -> float:
    horizon = spec.failures.duration if spec.failures is not None else 0.0
    finite_ends = [d.end for d in demand_set if d.duration != float("inf")]
    if finite_ends:
        horizon = max([horizon] + finite_ends)
    elif horizon <= 0.0:
        horizon = window
    else:
        horizon += window
    return horizon


def _run_policy_zebra(spec: ScenarioSpec, te_spec: TESpec, policy_name: str,
                      demand_spec: DemandSpec, settle: float,
                      window: float) -> TEPolicyResult:
    from dataclasses import replace as dc_replace

    from repro.core.autoconfig import AutoConfigFramework
    from repro.core.ipam import IPAddressManager
    from repro.experiments.failover import _mirror_into_routeflow
    from repro.net.addresses import IPv4Network
    from repro.sim import Simulator
    from repro.topology.emulator import EmulatedNetwork

    started = time.perf_counter()
    topology = spec.build_topology()
    config = spec.framework_config(topology)
    if not config.advertise_loopbacks:
        config = dc_replace(config, advertise_loopbacks=True)
    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=spec.max_time)
    result = TEPolicyResult(policy=policy_name,
                            configured_seconds=configured_at)
    if configured_at is None:
        result.wall_seconds = time.perf_counter() - started
        return result

    addresses = {dpid: ipam.router_id(dpid) for dpid in network.switches}
    owners = {int(address): dpid for dpid, address in addresses.items()}
    engine = FluidEngine(sim, network, owner_of=owners.get)
    engine.attach()
    _scale_hot_link(network, te_spec)

    route_mods = [0]
    topic = getattr(framework.rfserver, "route_mods_topic", None)
    if topic is not None:
        framework.bus.subscribe(
            topic,
            lambda _envelope: route_mods.__setitem__(0, route_mods[0] + 1))

    controller = None
    if policy_name != "none":
        run_spec = dc_replace(te_spec, policy=policy_name)
        actuator = ZebraActuator(
            framework.control_plane, network,
            prefix_of=lambda dst: IPv4Network((addresses[dst], 32)))
        controller = TEController(sim, network, actuator, spec=run_spec,
                                  policy=make_policy(run_spec), engine=engine,
                                  owner_of=owners.get)
        controller.start()

    demand_set = generate_demands(demand_spec, addresses)
    start = sim.now
    result.demands = engine.register(demand_set)
    if spec.failures is not None:
        network.add_failure_listener(_mirror_into_routeflow(network,
                                                            framework.bus))
        network.schedule_failures(spec.failures)
    sim.run(until=start + _horizon(spec, demand_set, window) + settle)
    engine.finalize()
    if controller is not None:
        controller.stop()
    _collect(result, engine, network, owners.get, controller, sim.now - start)
    result.route_mods = route_mods[0]
    result.wall_seconds = time.perf_counter() - started
    return result


def _run_policy_synthetic(spec: ScenarioSpec, te_spec: TESpec,
                          policy_name: str, demand_spec: DemandSpec,
                          settle: float, window: float) -> TEPolicyResult:
    from dataclasses import replace as dc_replace

    from repro.sim import Simulator
    from repro.topology.emulator import EmulatedNetwork
    from repro.traffic import SyntheticRoutes, service_address

    started = time.perf_counter()
    topology = spec.build_topology()
    sim = Simulator()
    network = EmulatedNetwork(sim, topology)
    routes = SyntheticRoutes(network)
    routes.install()
    addresses = {dpid: service_address(dpid) for dpid in network.switches}
    owners = {int(address): dpid for dpid, address in addresses.items()}
    engine = FluidEngine(sim, network, owner_of=owners.get)
    engine.attach()
    _scale_hot_link(network, te_spec)

    result = TEPolicyResult(policy=policy_name, configured_seconds=0.0)
    controller = None
    if policy_name != "none":
        run_spec = dc_replace(te_spec, policy=policy_name)
        controller = TEController(sim, network, FlowTableActuator(routes),
                                  spec=run_spec,
                                  policy=make_policy(run_spec), engine=engine,
                                  owner_of=owners.get)
        controller.start()

    demand_set = generate_demands(demand_spec, addresses)
    start = sim.now
    result.demands = engine.register(demand_set)
    if spec.failures is not None:
        # No control plane to reconverge: apply the shortest-path diff the
        # RouteMod churn would have produced, like the churn benchmark.
        network.add_failure_listener(lambda _event: routes.reroute())
        network.schedule_failures(spec.failures)
    sim.run(until=start + _horizon(spec, demand_set, window) + settle)
    engine.finalize()
    if controller is not None:
        controller.stop()
    _collect(result, engine, network, owners.get, controller, sim.now - start)
    result.wall_seconds = time.perf_counter() - started
    return result


def _collect(result: TEPolicyResult, engine: FluidEngine, network, owner_of,
             controller: Optional[TEController], duration: float) -> None:
    stats = engine.stats()
    result.commodities = int(stats["commodities"])
    result.delivered_commodities = int(stats["delivered_commodities"])
    result.unrouted_commodities = result.commodities \
        - result.delivered_commodities
    result.duration_seconds = duration
    result.offered_bits = stats["offered_bits"]
    result.delivered_bits = stats["delivered_bits"]
    result.stretch_mean, result.stretch_p99 = _stretch(engine, network,
                                                       owner_of)
    if controller is not None:
        te_stats = controller.stats()
        result.reroutes = int(te_stats["reroutes"])
        result.steers = int(te_stats["steers"])
        result.steer_changes = int(te_stats["steer_changes"])
        result.decisions = int(te_stats["decisions"])
        result.samples = int(te_stats["samples"])
        result.pruned_steers = int(te_stats["pruned_steers"])


def run_te(scenario: Union[str, ScenarioSpec],
           policies: Optional[Sequence[str]] = None,
           demands: Optional[DemandSpec] = None,
           te_spec: Optional[TESpec] = None,
           settle: float = DEFAULT_SETTLE,
           window: float = DEFAULT_WINDOW) -> TEResult:
    """Run a scenario once per policy and compare delivered throughput.

    ``policies`` defaults to :data:`DEFAULT_POLICIES`; the first entry is
    the baseline the per-policy ``delivered_gain`` is computed against.
    ``te_spec`` (defaulting to the scenario's own ``te`` knob) supplies
    the measurement interval, candidate-path count, thresholds and the
    induced hot link shared by every run.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    effective_te = te_spec if te_spec is not None else spec.te
    if effective_te is None:
        effective_te = TESpec()
    demand_spec = demands if demands is not None else spec.demands
    if demand_spec is None:
        demand_spec = DemandSpec()
    policy_list = list(policies) if policies else list(DEFAULT_POLICIES)
    topology = spec.build_topology()
    engine_mode = _resolve_engine(effective_te, topology.num_nodes)
    runner = _run_policy_zebra if engine_mode == "zebra" \
        else _run_policy_synthetic
    suite = TEResult(scenario=spec.name, family=spec.family, seed=spec.seed,
                     num_switches=topology.num_nodes,
                     num_links=topology.num_links, engine=engine_mode,
                     model=demand_spec.model, hot_link=effective_te.hot_link)
    for policy_name in policy_list:
        result = runner(spec, effective_te, policy_name, demand_spec,
                        settle, window)
        LOG.info("te: %s/%s -> %s delivered, %d reroutes",
                 spec.name, policy_name, f"{result.delivered_bits:.3g}b",
                 result.reroutes)
        suite.results.append(result)
    baseline = suite.baseline
    if baseline is not None and baseline.delivered_bits > 0.0:
        for result in suite.results[1:]:
            result.delivered_gain = (result.delivered_bits
                                     / baseline.delivered_bits) - 1.0
    return suite


def _format_bits(bits: float) -> str:
    for unit, scale in (("Gbit", 1e9), ("Mbit", 1e6), ("kbit", 1e3)):
        if bits >= scale:
            return f"{bits / scale:.2f} {unit}"
    return f"{bits:.0f} bit"


def render_te_table(suite: TEResult) -> str:
    """ASCII comparison of the policy runs."""
    from repro.experiments.results import format_table

    rows = []
    for result in suite.results:
        if result.configured_seconds is None:
            rows.append([result.policy, "-", "-", "-", "-", "-", "-", "-"])
            continue
        rows.append([
            result.policy,
            f"{result.delivered_commodities}/{result.commodities}",
            _format_bits(result.delivered_bits),
            f"{100.0 * result.loss_fraction:.2f}%",
            f"{result.stretch_p99:.2f}",
            result.reroutes,
            result.steers,
            f"{100.0 * result.delivered_gain:+.1f}%",
        ])
    table = format_table(
        ["policy", "routed", "delivered", "loss", "p99 stretch", "reroutes",
         "steers", "vs baseline"], rows)
    header = (f"{suite.scenario}: {suite.num_switches} switches / "
              f"{suite.num_links} links, {suite.model} demands, "
              f"{suite.engine} engine"
              + (f", hot link {suite.hot_link}" if suite.hot_link else ""))
    return header + "\n\n" + table


def write_te_json(suite: TEResult, path: Union[str, Path]) -> Path:
    """Write a TE comparison as JSON (one record per policy run)."""
    payload = {
        "scenario": suite.scenario,
        "family": suite.family,
        "seed": suite.seed,
        "switches": suite.num_switches,
        "links": suite.num_links,
        "engine": suite.engine,
        "model": suite.model,
        "hot_link": suite.hot_link,
        "policies": [
            {
                "policy": result.policy,
                "configured_seconds": result.configured_seconds,
                "demands": result.demands,
                "commodities": result.commodities,
                "delivered_commodities": result.delivered_commodities,
                "unrouted_commodities": result.unrouted_commodities,
                "duration_seconds": result.duration_seconds,
                "offered_bits": result.offered_bits,
                "delivered_bits": result.delivered_bits,
                "loss_fraction": result.loss_fraction,
                "stretch_mean": result.stretch_mean,
                "stretch_p99": result.stretch_p99,
                "reroutes": result.reroutes,
                "steers": result.steers,
                "steer_changes": result.steer_changes,
                "decisions": result.decisions,
                "samples": result.samples,
                "pruned_steers": result.pruned_steers,
                "route_mods": result.route_mods,
                "delivered_gain": result.delivered_gain,
                "wall_seconds": result.wall_seconds,
            }
            for result in suite.results
        ],
    }
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
