"""Ablation experiments over the framework's design choices.

docs/DESIGN.md ("Design parameters under ablation") calls out three
design parameters worth isolating:

* **A1 — controller split.**  The paper deliberately separates the topology
  controller from the RF-controller (behind FlowVisor) "to share the load";
  the ablation compares that deployment against a single controller running
  both roles.
* **A2 — VM creation latency.**  Automatic configuration time is dominated
  by how long a VM takes to clone and boot; the ablation sweeps that
  latency.
* **A3 — OSPF timers.**  The remaining time goes to routing-protocol
  convergence, which is governed by the hello interval (and the derived
  dead interval).
"""

from __future__ import annotations

import logging
from typing import Iterable, List, Optional

from repro.core.autoconfig import FrameworkConfig
from repro.experiments.config_time import run_single_configuration
from repro.experiments.results import AblationResult, format_seconds, format_table
from repro.topology.generators import ring_topology
from repro.topology.graph import Topology
from repro.topology.pan_european import pan_european_topology

LOG = logging.getLogger(__name__)


def _measure(topology: Topology, config: FrameworkConfig, label: str,
             parameter: object, max_time: float) -> AblationResult:
    result = run_single_configuration(topology, config=config, max_time=max_time)
    LOG.info("ablation %s=%s -> %s", label, parameter,
             format_seconds(result.auto_seconds))
    return AblationResult(label=label, parameter=parameter,
                          auto_seconds=result.auto_seconds,
                          milestones=result.milestones)


def run_controller_split_ablation(num_switches: int = 16,
                                  max_time: float = 3600.0) -> List[AblationResult]:
    """A1: separate topology controller + FlowVisor vs a single controller."""
    results = []
    for use_flowvisor, label in ((True, "split (FlowVisor + 2 controllers)"),
                                 (False, "single controller")):
        config = FrameworkConfig(use_flowvisor=use_flowvisor, detect_edge_ports=False)
        results.append(_measure(ring_topology(num_switches), config,
                                label="deployment", parameter=label,
                                max_time=max_time))
    return results


def run_vm_latency_ablation(boot_delays: Iterable[float] = (1.0, 5.0, 10.0, 30.0, 60.0),
                            num_switches: int = 16,
                            max_time: float = 7200.0) -> List[AblationResult]:
    """A2: configuration time as a function of per-VM boot latency."""
    results = []
    for boot_delay in boot_delays:
        config = FrameworkConfig(vm_boot_delay=boot_delay, detect_edge_ports=False)
        results.append(_measure(ring_topology(num_switches), config,
                                label="vm_boot_delay_s", parameter=boot_delay,
                                max_time=max_time))
    return results


def run_ospf_timer_ablation(hello_intervals: Iterable[int] = (1, 5, 10),
                            use_pan_european: bool = False,
                            num_switches: int = 12,
                            max_time: float = 3600.0) -> List[AblationResult]:
    """A3: configuration time as a function of the OSPF hello interval."""
    results = []
    for hello in hello_intervals:
        config = FrameworkConfig(ospf_hello_interval=hello,
                                 ospf_dead_interval=4 * hello,
                                 detect_edge_ports=False)
        topology = pan_european_topology() if use_pan_european \
            else ring_topology(num_switches)
        results.append(_measure(topology, config, label="hello_interval_s",
                                parameter=hello, max_time=max_time))
    return results


def render_ablation_table(results: List[AblationResult], title: str) -> str:
    rows = [[result.parameter, format_seconds(result.auto_seconds)]
            for result in results]
    table = format_table([results[0].label if results else "parameter",
                          "automatic configuration time"], rows)
    return f"{title}\n{table}"
