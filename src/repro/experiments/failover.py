"""Failure-resilience experiments: the ``repro failover`` subcommand.

A failover run configures a registry scenario exactly like a sweep run,
then arms a :class:`~repro.scenarios.FailureSchedule` against the emulated
network and measures, per failure event:

* **reconvergence time** — seconds from the event until the last routing
  change it caused (RIB/FIB updates across every VM, observed through the
  zebra FIB listeners); and
* **frames lost** — the physical network's drop-counter delta over the
  event's window (traffic blackholed on the dead link until the control
  platform rerouted).

Failure events execute in the simulation kernel
(:meth:`EmulatedNetwork.schedule_failures`); a listener mirrors each
physical change into the RouteFlow virtual topology the way RFProxy relays
port-status messages, so the per-VM Quagga stacks react through carrier
loss, adjacency teardown and SPF — not through experiment-harness fiat.

After the run, :func:`verify_spf_rib_consistency` cross-checks every VM:
the RIB's OSPF candidates must exactly equal a fresh SPF result over the
VM's LSDB — the end-to-end guarantee that no stale route survived the
churn.
"""

from __future__ import annotations

import logging
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.bus import topics
from repro.bus.reliable import acquire_publisher
from repro.core.autoconfig import AutoConfigFramework
from repro.core.ipam import IPAddressManager
from repro.experiments.results import format_seconds, format_table
from repro.quagga.rib import RouteSource
from repro.routeflow.ipc import PortStatusRelay
from repro.scenarios import FailureAction, FailureSchedule, ScenarioSpec, get
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork

LOG = logging.getLogger(__name__)

#: Quiet period (seconds) with no routing activity after the last event
#: before the network counts as reconverged.  Must exceed the OSPF SPF
#: holdtime (5 s by default) or a throttled SPF run could be missed.
DEFAULT_SETTLE = 15.0

#: Extra simulated time allowed past the schedule's last event before the
#: run is declared non-convergent.
DEFAULT_MAX_EXTRA = 1800.0


@dataclass
class FailoverEventResult:
    """Measurements for one executed failure event."""

    index: int
    action: str
    description: str
    #: Absolute simulated time the event executed.
    at_seconds: float
    #: Seconds from the event to the last routing change in its window
    #: (0.0 when the event caused no routing change).
    reconverge_seconds: float
    #: Number of FIB updates (installs + withdrawals across all VMs).
    route_changes: int
    #: Physical frames dropped during the event's window.
    frames_lost: int


@dataclass
class FailoverResult:
    """The outcome of one failover run."""

    scenario: str
    family: str
    seed: int
    num_switches: int
    num_links: int
    #: Simulated seconds to the initial automatic configuration (None when
    #: the scenario never configured — no failures are injected then).
    configured_seconds: Optional[float]
    events: List[FailoverEventResult] = field(default_factory=list)
    #: Whether routing activity went quiet for the settle period after the
    #: last event.  False means the run hit its time budget still churning.
    settled: bool = False
    #: SPF/RIB consistency violations found after the run (empty = healthy).
    invariant_violations: List[str] = field(default_factory=list)
    #: Aggregate physical delivery/drop counters at the end of the run.
    link_stats: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def configured(self) -> bool:
        return self.configured_seconds is not None

    @property
    def reconverged(self) -> bool:
        """Every injected failure led to a finite, settled reconvergence."""
        return self.configured and self.settled \
            and not self.invariant_violations

    @property
    def total_frames_lost(self) -> int:
        return sum(event.frames_lost for event in self.events)

    @property
    def worst_reconverge_seconds(self) -> Optional[float]:
        if not self.events:
            return None
        return max(event.reconverge_seconds for event in self.events)


def verify_spf_rib_consistency(rfserver) -> List[str]:
    """Check every VM's RIB against a fresh SPF run over its LSDB.

    ``rfserver`` is anything with a ``vms`` mapping — a single
    :class:`RFServer` or a sharded control plane (then the check spans
    every shard's VMs).  Returns human-readable violations; an empty list
    means each router's OSPF candidate set exactly equals its latest SPF
    result — no stale next hops, no leftover withdrawn prefixes, no
    duplicate candidates.
    """
    violations: List[str] = []
    for vm in rfserver.vms.values():
        daemon = vm.ospf
        if daemon is None or not daemon.running:
            continue
        expected = daemon.spf_routes()
        actual = {}
        for prefix, candidates in vm.zebra.rib.candidates_from(
                RouteSource.OSPF).items():
            if len(candidates) != 1:
                violations.append(
                    f"{vm.name}: {len(candidates)} OSPF candidates for "
                    f"{prefix} (expected exactly one)")
            actual[prefix] = candidates[0]
        for prefix in sorted(set(expected) | set(actual),
                             key=lambda p: (int(p.network), p.prefix_len)):
            want = expected.get(prefix)
            have = actual.get(prefix)
            if want is None:
                violations.append(
                    f"{vm.name}: stale OSPF candidate {have} not in the "
                    f"latest SPF result")
            elif have is None:
                violations.append(
                    f"{vm.name}: SPF route {want} missing from the RIB")
            elif have != want:
                violations.append(
                    f"{vm.name}: RIB has {have}, SPF computed {want}")
    return violations


def _mirror_into_routeflow(network: EmulatedNetwork, bus):
    """Build the physical→virtual mirroring listener for failure events.

    The relay rides the control-plane bus (the RFProxy→RFServer
    port-status hop): each affected link is published as a
    :class:`~repro.routeflow.ipc.PortStatusRelay` on the
    :data:`~repro.bus.topics.PORT_STATUS` topic, where the control plane —
    single RFServer or sharded — mirrors it onto the virtual wires.  On a
    reliable bus the relay acquires an acknowledged publisher, so a lossy
    fault profile cannot silently eat a port-status transition.
    """
    publisher = acquire_publisher(bus, topics.PORT_STATUS,
                                  "emulator:port-status")

    def mirror(event) -> None:
        if event.action in FailureAction.LINK_ACTIONS:
            pairs = [(event.node_a, event.node_b)]
        elif event.action in FailureAction.NODE_ACTIONS:
            pairs = network.links_of(event.node_a)
        else:
            return  # shard events carry no physical change to mirror
        for node_a, node_b in pairs:
            port_a, port_b = network.ports_for_link(node_a, node_b)
            # Mirror the *effective* physical state, not the event's
            # direction: restoring a node must not bring a virtual wire up
            # while the link (or its other endpoint) is still failed.
            interface = network.switches[node_a].port(port_a).interface
            up = interface.link is not None and interface.link.up
            publisher.publish(
                PortStatusRelay(node_a, port_a, node_b, port_b, up).to_json())

    return mirror


def run_failover(scenario: Union[str, ScenarioSpec],
                 schedule: Optional[FailureSchedule] = None,
                 settle: float = DEFAULT_SETTLE,
                 max_extra_time: float = DEFAULT_MAX_EXTRA,
                 churn: int = 0, churn_seed: int = 0,
                 churn_spacing: float = 60.0,
                 churn_recovery: float = 30.0) -> FailoverResult:
    """Configure a scenario, inject a failure schedule, measure recovery.

    ``schedule`` defaults to the scenario's own :attr:`ScenarioSpec.failures`.
    ``churn > 0`` additionally bounces that many seeded-random links of the
    scenario's topology (generated here, against the same topology the run
    uses).  At least one failure event must result.  Schedules are
    validated against the topology before any simulation time is spent.
    """
    started = time.perf_counter()
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    topology = spec.build_topology()
    base = schedule if schedule is not None else spec.failures
    events = list(base.events) if base is not None else []
    if churn:
        # Links the base schedule explicitly controls are exempt from
        # churn, so a random link_up can never resurrect a link the caller
        # deliberately failed for the rest of the run.
        controlled = {(min(e.node_a, e.node_b), max(e.node_a, e.node_b))
                      for e in events if e.is_link_event}
        links = [(link.node_a, link.node_b) for link in topology.links
                 if (min(link.node_a, link.node_b),
                     max(link.node_a, link.node_b)) not in controlled]
        events.extend(FailureSchedule.random_churn(
            links, churn, seed=churn_seed, spacing=churn_spacing,
            recovery=churn_recovery).events)
    if not events:
        raise ValueError(
            f"scenario {spec.name!r} carries no failure schedule and none "
            f"was provided")
    active = FailureSchedule(tuple(events))
    active.validate_against((node.node_id for node in topology.nodes),
                            ((link.node_a, link.node_b)
                             for link in topology.links),
                            shards=spec.controllers)
    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=spec.framework_config(topology),
                                    ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=spec.max_time)
    result = FailoverResult(
        scenario=spec.name, family=spec.family, seed=spec.seed,
        num_switches=topology.num_nodes, num_links=topology.num_links,
        configured_seconds=configured_at)
    if configured_at is None:
        result.wall_seconds = time.perf_counter() - started
        return result

    # -- instrumentation -----------------------------------------------------
    change_times: List[float] = []
    for vm in framework.control_plane.vms.values():
        vm.zebra.add_fib_listener(
            lambda prefix, new, old, _sim=sim: change_times.append(_sim.now))
    executed: List[Tuple[object, float, Dict[str, int]]] = []

    def observe(event) -> None:
        executed.append((event, sim.now, network.stats()))

    network.add_failure_listener(_mirror_into_routeflow(network,
                                                        framework.bus))
    network.add_failure_listener(observe)
    network.schedule_failures(active)
    armed_at = sim.now

    # -- run to quiescence ---------------------------------------------------
    horizon = armed_at + active.duration
    deadline = horizon + max_extra_time
    while sim.now < deadline:
        sim.run(until=min(sim.now + 1.0, deadline))
        last_activity = max([horizon] + change_times[-1:])
        if sim.now >= last_activity + settle:
            result.settled = True
            break
    if not result.settled:
        LOG.warning("failover %s: still reconverging when the time budget "
                    "(%.0fs past the last event) ran out", spec.name,
                    max_extra_time)
    final_stats = network.stats()

    # -- per-event measurements ----------------------------------------------
    change_times.sort()
    for index, (event, at, stats_before) in enumerate(executed):
        has_next = index + 1 < len(executed)
        window_end = executed[index + 1][1] if has_next else sim.now
        stats_end = executed[index + 1][2] if has_next else final_stats
        first = bisect_left(change_times, at)
        # The window closes *before* the next event executes: changes at
        # that exact instant are the next event's synchronous fallout.
        last = bisect_left(change_times, window_end) if has_next \
            else bisect_right(change_times, window_end)
        changes = change_times[first:last]
        result.events.append(FailoverEventResult(
            index=index,
            action=event.action,
            description=event.describe(),
            at_seconds=at,
            reconverge_seconds=(changes[-1] - at) if changes else 0.0,
            route_changes=len(changes),
            frames_lost=(stats_end["frames_dropped"]
                         - stats_before["frames_dropped"]),
        ))
    result.invariant_violations = verify_spf_rib_consistency(framework.control_plane)
    result.link_stats = final_stats
    result.wall_seconds = time.perf_counter() - started
    for violation in result.invariant_violations:
        LOG.warning("failover %s: %s", spec.name, violation)
    return result


def run_failover_suite(scenarios, schedule: Optional[FailureSchedule] = None,
                       settle: float = DEFAULT_SETTLE,
                       max_extra_time: float = DEFAULT_MAX_EXTRA,
                       **churn_options) -> List[FailoverResult]:
    """Run a failover experiment for every scenario, serially."""
    results = []
    for scenario in scenarios:
        result = run_failover(scenario, schedule=schedule, settle=settle,
                              max_extra_time=max_extra_time, **churn_options)
        LOG.info("failover: %s -> %d events, worst reconvergence %s",
                 result.scenario, len(result.events),
                 format_seconds(result.worst_reconverge_seconds))
        results.append(result)
    return results


def render_failover_table(results: List[FailoverResult]) -> str:
    """Per-event ASCII report of a failover suite."""
    rows = []
    for result in results:
        if not result.configured:
            rows.append([result.scenario, "-", "(never configured)",
                         "n/a", "n/a", "n/a"])
            continue
        for event in result.events:
            rows.append([
                result.scenario,
                event.index,
                event.description,
                format_seconds(event.reconverge_seconds),
                event.route_changes,
                event.frames_lost,
            ])
    table = format_table(
        ["scenario", "#", "event", "reconvergence", "route changes",
         "frames lost"], rows)
    notes = []
    for result in results:
        if result.reconverged:
            state = "OK"
        elif not result.configured:
            state = "NOT CHECKED (never configured)"
        elif not result.settled:
            state = "NEVER SETTLED"
        else:
            state = "VIOLATIONS"
        notes.append(
            f"{result.scenario}: configured in "
            f"{format_seconds(result.configured_seconds)}, "
            f"{len(result.events)} failures, "
            f"{result.total_frames_lost} frames lost, invariant {state}")
        notes.extend(f"  ! {violation}"
                     for violation in result.invariant_violations)
    return table + "\n\n" + "\n".join(notes)
