"""Aggregate-traffic experiments: the ``repro traffic`` subcommand.

A traffic run configures a registry scenario exactly like a sweep run,
then drives a seeded demand set (:class:`~repro.traffic.DemandSpec`)
through the fluid fast path: every demand is resolved once against the
installed flow tables and advanced analytically, recomputed only at
events.  The run reports delivered vs. offered throughput, the loss
fraction, the incremental re-resolution counters and the hottest links
by utilization (busy-time integral and peak rate, from the interface
accounting the packet path shares).

Demands target the routers' loopback addresses, so the framework is run
with :attr:`FrameworkConfig.advertise_loopbacks` forced on — each
router-id /32 is announced into OSPF and RouteFlow installs a flow for
it on every other switch, giving the resolver a routable per-router
destination (the owner itself has no flow, exactly like the packet
pipeline, where the final hop's miss punts to the controller).

When the scenario carries a failure schedule, the physical events are
mirrored into the RouteFlow virtual topology like ``repro failover``
does, so demand paths are invalidated by the *actual* RouteMod /
OFPFC_DELETE churn of the reconvergence, not by harness fiat.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.autoconfig import AutoConfigFramework
from repro.core.ipam import IPAddressManager
from repro.experiments.failover import _mirror_into_routeflow
from repro.experiments.results import format_seconds, format_table
from repro.scenarios import ScenarioSpec, get
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.traffic import DemandSpec, FluidEngine, generate_demands

LOG = logging.getLogger(__name__)

#: Extra simulated seconds past the last demand/failure event, so expiry
#: and reconvergence fallout lands inside the measured window.
DEFAULT_SETTLE = 5.0

#: Simulated length of the traffic phase when every demand is open-ended
#: and no failure schedule bounds the run.
DEFAULT_WINDOW = 30.0

#: How many of the hottest links the result records.
TOP_LINKS = 10


@dataclass
class LinkUtilization:
    """Utilization of one physical link over the traffic window."""

    name: str
    busy_seconds: float
    #: Fraction of the traffic window the busier direction transmitted.
    utilization: float
    peak_bps: float


@dataclass
class TrafficResult:
    """The outcome of one fluid-traffic run."""

    scenario: str
    family: str
    seed: int
    num_switches: int
    num_links: int
    #: Simulated seconds to the initial automatic configuration (None when
    #: the scenario never configured — no demands run then).
    configured_seconds: Optional[float]
    model: str = "uniform"
    demands: int = 0
    commodities: int = 0
    delivered_commodities: int = 0
    #: Simulated length of the traffic window (configuration excluded).
    duration_seconds: float = 0.0
    offered_bits: float = 0.0
    delivered_bits: float = 0.0
    #: Resolution work: full path walks / table lookups (memoized), and
    #: the incremental-churn counters — commodity re-resolutions caused by
    #: route changes plus the demands riding inside them.
    resolutions: int = 0
    lookups: int = 0
    reresolutions: int = 0
    affected_demands: int = 0
    top_links: List[LinkUtilization] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def configured(self) -> bool:
        return self.configured_seconds is not None

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered bits not delivered over the whole window."""
        if self.offered_bits <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.delivered_bits / self.offered_bits)

    @property
    def delivered(self) -> bool:
        """Did every commodity find a path (no unrouted/looping demand)?"""
        return self.configured and self.commodities > 0 \
            and self.delivered_commodities == self.commodities


def run_traffic(scenario: Union[str, ScenarioSpec],
                demands: Optional[DemandSpec] = None,
                settle: float = DEFAULT_SETTLE,
                window: float = DEFAULT_WINDOW) -> TrafficResult:
    """Configure a scenario and run a demand set through the fluid path.

    ``demands`` defaults to the scenario's own
    :attr:`~repro.scenarios.ScenarioSpec.demands` (and failing that, a
    small uniform set).  ``window`` bounds the traffic phase when every
    demand is open-ended; with finite demands the phase runs to the last
    expiry (plus ``settle``).
    """
    started = time.perf_counter()
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    demand_spec = demands if demands is not None else spec.demands
    if demand_spec is None:
        demand_spec = DemandSpec()
    topology = spec.build_topology()
    config = spec.framework_config(topology)
    if not config.advertise_loopbacks:
        config = replace(config, advertise_loopbacks=True)
    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=spec.max_time)
    result = TrafficResult(
        scenario=spec.name, family=spec.family, seed=spec.seed,
        num_switches=topology.num_nodes, num_links=topology.num_links,
        configured_seconds=configured_at, model=demand_spec.model)
    if configured_at is None:
        result.wall_seconds = time.perf_counter() - started
        return result

    # -- demand setup --------------------------------------------------------
    addresses = {dpid: ipam.router_id(dpid) for dpid in network.switches}
    owners = {int(address): dpid for dpid, address in addresses.items()}
    engine = FluidEngine(sim, network, owner_of=owners.get)
    engine.attach()
    demand_set = generate_demands(demand_spec, addresses)
    start = sim.now
    result.demands = engine.register(demand_set)

    # -- churn (optional) ----------------------------------------------------
    horizon = 0.0
    if spec.failures is not None:
        network.add_failure_listener(_mirror_into_routeflow(network,
                                                            framework.bus))
        network.schedule_failures(spec.failures)
        horizon = spec.failures.duration
    finite_ends = [d.end for d in demand_set if d.duration != float("inf")]
    if finite_ends:
        horizon = max([horizon] + finite_ends)
    elif horizon <= 0.0:
        horizon = window
    else:
        horizon += window

    # -- run and measure -----------------------------------------------------
    deadline = start + horizon + settle
    sim.run(until=deadline)
    engine.finalize()
    elapsed = max(sim.now - start, 1e-12)
    result.duration_seconds = sim.now - start
    stats = engine.stats()
    result.commodities = int(stats["commodities"])
    result.delivered_commodities = int(stats["delivered_commodities"])
    result.offered_bits = stats["offered_bits"]
    result.delivered_bits = stats["delivered_bits"]
    result.resolutions = int(stats["resolutions"])
    result.lookups = int(stats["lookups"])
    result.reresolutions = int(stats["reresolutions"])
    result.affected_demands = int(stats["affected_demands"])
    ranked = sorted(network.links, key=lambda link: -link.stats()["busy_seconds"])
    for link in ranked[:TOP_LINKS]:
        stats_ = link.stats()
        if stats_["busy_seconds"] <= 0.0:
            break
        busier = max(link.iface_a.tx_busy_seconds, link.iface_b.tx_busy_seconds)
        result.top_links.append(LinkUtilization(
            name=link.name, busy_seconds=stats_["busy_seconds"],
            utilization=min(1.0, busier / elapsed),
            peak_bps=stats_["peak_bps"]))
    result.wall_seconds = time.perf_counter() - started
    return result


def run_traffic_suite(scenarios, demands: Optional[DemandSpec] = None,
                      settle: float = DEFAULT_SETTLE,
                      window: float = DEFAULT_WINDOW) -> List[TrafficResult]:
    """Run a traffic experiment for every scenario, serially."""
    results = []
    for scenario in scenarios:
        result = run_traffic(scenario, demands=demands, settle=settle,
                             window=window)
        LOG.info("traffic: %s -> %d demands, %.1f%% loss",
                 result.scenario, result.demands,
                 100.0 * result.loss_fraction)
        results.append(result)
    return results


def _format_bits(bits: float) -> str:
    """Human-friendly rendering of a bit volume."""
    for unit, scale in (("Gbit", 1e9), ("Mbit", 1e6), ("kbit", 1e3)):
        if bits >= scale:
            return f"{bits / scale:.2f} {unit}"
    return f"{bits:.0f} bit"


def render_traffic_table(results: List[TrafficResult]) -> str:
    """ASCII report of a traffic suite: throughput, loss, churn cost."""
    rows = []
    for result in results:
        if not result.configured:
            rows.append([result.scenario, "-", "-", "-", "-", "-", "-", "-"])
            continue
        rows.append([
            result.scenario,
            result.demands,
            f"{result.delivered_commodities}/{result.commodities}",
            _format_bits(result.offered_bits),
            _format_bits(result.delivered_bits),
            f"{100.0 * result.loss_fraction:.2f}%",
            result.reresolutions,
            result.affected_demands,
        ])
    table = format_table(
        ["scenario", "demands", "routed", "offered", "delivered", "loss",
         "re-resolved", "affected demands"], rows)
    notes = []
    for result in results:
        if not result.configured:
            notes.append(f"{result.scenario}: never configured — no traffic run")
            continue
        notes.append(
            f"{result.scenario}: configured in "
            f"{format_seconds(result.configured_seconds)}, "
            f"{format_seconds(result.duration_seconds)} traffic window, "
            f"{result.resolutions} path walks / {result.lookups} table "
            f"lookups for {result.demands} demands")
        for link in result.top_links[:3]:
            notes.append(
                f"  hot link {link.name}: {100.0 * link.utilization:.1f}% "
                f"utilized, peak {link.peak_bps / 1e6:.1f} Mbit/s")
    return table + "\n\n" + "\n".join(notes)


def write_traffic_json(results: List[TrafficResult],
                       path: Union[str, Path]) -> Path:
    """Write a traffic suite as JSON (per-link utilization included)."""
    payload = [
        {
            "scenario": result.scenario,
            "family": result.family,
            "seed": result.seed,
            "switches": result.num_switches,
            "links": result.num_links,
            "configured_seconds": result.configured_seconds,
            "model": result.model,
            "demands": result.demands,
            "commodities": result.commodities,
            "delivered_commodities": result.delivered_commodities,
            "duration_seconds": result.duration_seconds,
            "offered_bits": result.offered_bits,
            "delivered_bits": result.delivered_bits,
            "loss_fraction": result.loss_fraction,
            "resolutions": result.resolutions,
            "lookups": result.lookups,
            "reresolutions": result.reresolutions,
            "affected_demands": result.affected_demands,
            "top_links": [
                {
                    "name": link.name,
                    "busy_seconds": link.busy_seconds,
                    "utilization": link.utilization,
                    "peak_bps": link.peak_bps,
                }
                for link in result.top_links
            ],
            "wall_seconds": result.wall_seconds,
        }
        for result in results
    ]
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
