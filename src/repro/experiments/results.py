"""Result containers and table rendering shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table (the benchmark harness prints these)."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_seconds(seconds: Optional[float]) -> str:
    """Human-friendly rendering of a duration."""
    if seconds is None:
        return "n/a"
    if seconds < 90:
        return f"{seconds:.1f} s"
    minutes = seconds / 60.0
    if minutes < 90:
        return f"{minutes:.1f} min"
    return f"{minutes / 60.0:.1f} h"


@dataclass
class ConfigTimeResult:
    """One point of the Figure 3 sweep."""

    num_switches: int
    num_links: int
    auto_seconds: Optional[float]
    manual_seconds: float
    milestones: Dict[str, float] = field(default_factory=dict)
    #: Aggregate physical delivery/drop counters at the end of the run
    #: (see :meth:`EmulatedNetwork.stats`).
    link_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def auto_minutes(self) -> Optional[float]:
        return self.auto_seconds / 60.0 if self.auto_seconds is not None else None

    @property
    def manual_minutes(self) -> float:
        return self.manual_seconds / 60.0

    @property
    def speedup(self) -> Optional[float]:
        if not self.auto_seconds:
            return None
        return self.manual_seconds / self.auto_seconds


@dataclass
class DemoResult:
    """The outcome of the 28-node pan-European demonstration."""

    topology_name: str
    num_switches: int
    num_links: int
    video_start_seconds: Optional[float]
    configuration_seconds: Optional[float]
    manual_seconds: float
    frames_received: int
    frames_sent: int
    green_timeline: List[tuple] = field(default_factory=list)
    milestones: Dict[str, float] = field(default_factory=dict)
    gui_text: str = ""

    @property
    def video_started(self) -> bool:
        return self.video_start_seconds is not None

    @property
    def video_start_minutes(self) -> Optional[float]:
        if self.video_start_seconds is None:
            return None
        return self.video_start_seconds / 60.0


@dataclass
class AblationResult:
    """One configuration-time measurement under a varied design parameter."""

    label: str
    parameter: object
    auto_seconds: Optional[float]
    milestones: Dict[str, float] = field(default_factory=dict)
