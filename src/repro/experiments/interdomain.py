"""Interdomain routing experiments: the ``repro interdomain`` subcommand.

An interdomain run configures a multi-AS registry scenario — bgpd in every
VM, eBGP on the inter-AS border links, an iBGP full mesh per AS, OSPF↔BGP
redistribution at the borders — and measures:

* **interdomain convergence time** — simulated seconds until every VM's
  FIB covers every prefix of every AS (the framework's routing-converged
  milestone, which for interdomain scenarios spans the whole BGP route
  exchange), plus the time of the *last* routing change (BGP route
  selection and redistribution can keep refining the FIBs briefly after
  full reachability);
* **redistribution correctness** — border VMs must hold eBGP routes in
  their FIBs, interior VMs must have learned other-AS prefixes through
  the tagged OSPF AS-external routes their borders redistribute, no
  received AS path may contain the receiver's own AS, and every VM's RIB
  must still equal a fresh SPF run
  (:func:`~repro.experiments.failover.verify_spf_rib_consistency`);
* **per-AS flow counts** — the OpenFlow flow entries installed on each
  AS's switches; and
* optionally a **border flap**: one eBGP border link goes down and comes
  back.  The run verifies the full withdrawal lifecycle — both eBGP
  sessions drop (fast external fallover), the routes learned over them
  are withdrawn end to end (RIB → FIB → RouteMod delete → OFPFC_DELETE on
  the switches), the network reroutes over the surviving borders — and
  the re-establishment lifecycle: sessions back up, routes re-advertised,
  the steady-state flow count restored exactly.
"""

from __future__ import annotations

import csv
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.autoconfig import AutoConfigFramework
from repro.core.ipam import IPAddressManager
from repro.experiments.failover import (
    _mirror_into_routeflow,
    verify_spf_rib_consistency,
)
from repro.experiments.results import format_seconds, format_table
from repro.quagga.ospf.constants import EXTERNAL_ROUTE_TAG
from repro.quagga.rib import RouteSource
from repro.scenarios import FailureSchedule, ScenarioSpec, get
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork
from repro.topology.generators import as_map_from_topology

LOG = logging.getLogger(__name__)

#: Quiet period (seconds) with no FIB change before the interdomain route
#: exchange counts as settled.  Must exceed the OSPF SPF holdtime plus the
#: external-LSA debounce.
DEFAULT_SETTLE = 20.0

#: Extra simulated time allowed for settling / flap reconvergence.
DEFAULT_MAX_EXTRA = 600.0

#: Seconds between arming the flap and the border link going down.
FLAP_LEAD = 10.0

#: Seconds the flapped border link stays down.
FLAP_DOWN = 90.0

PathLike = Union[str, Path]


class PhaseProfiler:
    """Per-phase wall-time breakdown of an interdomain run.

    Patches the hot-path entry points at class level while active (zero
    overhead when off) and attributes wall time *exclusively*: while a
    patched function calls into another patched one, the inner phase is
    charged and the outer phase's clock pauses.  Phases:

    * ``session_establishment`` — broker handshakes and the initial
      Adj-RIB-Out sync a new session triggers;
    * ``decision_process`` — UPDATE reception and best-path re-evaluation;
    * ``redistribution`` — FIB-change handling (OSPF↔BGP redistribution
      and recursive next-hop re-resolution);
    * ``flow_install`` — RFProxy flow-mod installation.
    """

    PHASES = ("session_establishment", "decision_process",
              "redistribution", "flow_install")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {phase: 0.0 for phase in self.PHASES}
        self.calls: Dict[str, int] = {phase: 0 for phase in self.PHASES}
        #: Stack of [phase, resume-timestamp] frames for exclusive timing.
        self._stack: List[List] = []
        self._patched: List[Tuple[type, str, object]] = []

    def _enter(self, phase: str) -> None:
        now = time.perf_counter()
        if self._stack:
            top = self._stack[-1]
            self.seconds[top[0]] += now - top[1]
        self._stack.append([phase, now])
        self.calls[phase] += 1

    def _exit(self) -> None:
        now = time.perf_counter()
        phase, resume = self._stack.pop()
        self.seconds[phase] += now - resume
        if self._stack:
            self._stack[-1][1] = now

    def _wrap(self, owner: type, name: str, phase: str) -> None:
        original = getattr(owner, name)

        def wrapper(*args, **kwargs):
            self._enter(phase)
            try:
                return original(*args, **kwargs)
            finally:
                self._exit()

        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(owner, name, wrapper)
        self._patched.append((owner, name, original))

    def __enter__(self) -> "PhaseProfiler":
        from repro.quagga.bgp.daemon import BGPDaemon, BGPSessionBroker
        from repro.quagga.ospf.daemon import OSPFDaemon
        from repro.routeflow.rfproxy import RFProxy

        self._wrap(BGPSessionBroker, "_establish", "session_establishment")
        self._wrap(BGPDaemon, "on_session_established", "session_establishment")
        self._wrap(BGPDaemon, "receive_announcement", "decision_process")
        self._wrap(BGPDaemon, "receive_update_batch", "decision_process")
        self._wrap(BGPDaemon, "_reevaluate", "decision_process")
        self._wrap(BGPDaemon, "_on_fib_change", "redistribution")
        self._wrap(OSPFDaemon, "announce_external", "redistribution")
        self._wrap(OSPFDaemon, "withdraw_external", "redistribution")
        self._wrap(RFProxy, "_send_flow", "flow_install")
        return self

    def __exit__(self, *exc) -> bool:
        for owner, name, original in reversed(self._patched):
            setattr(owner, name, original)
        self._patched.clear()
        return False

    def report(self) -> Dict[str, Dict[str, float]]:
        return {phase: {"seconds": self.seconds[phase],
                        "calls": self.calls[phase]}
                for phase in self.PHASES}


@dataclass
class BorderFlapResult:
    """Measurements of one border-link flap."""

    node_a: int
    node_b: int
    #: OFPFC_DELETE flow-mods the withdrawal caused.
    withdrawn_flow_mods: int
    #: Both eBGP sessions over the link left Established while it was down.
    sessions_dropped: bool
    #: Seconds from link-down to the last routing change it caused.
    down_reconverge_seconds: float
    #: Both sessions re-established after the link came back.
    reestablished: bool
    #: Seconds from link-up to the last routing change it caused.
    restore_reconverge_seconds: float
    #: Steady-state flow count was restored exactly after the flap.
    flows_restored: bool

    @property
    def verified(self) -> bool:
        return (self.sessions_dropped and self.withdrawn_flow_mods > 0
                and self.reestablished and self.flows_restored)


@dataclass
class InterdomainResult:
    """The outcome of one interdomain run."""

    scenario: str
    family: str
    seed: int
    num_ases: int
    num_switches: int
    num_links: int
    border_links: int
    controllers: int
    #: Simulated seconds to full interdomain reachability (None = never).
    configured_seconds: Optional[float]
    #: Simulated seconds of the last routing change of the initial
    #: convergence (>= configured_seconds; the steady-state instant).
    converged_seconds: Optional[float] = None
    settled: bool = False
    #: Established session counts (pairs, not directed endpoints).
    ebgp_sessions: int = 0
    ibgp_sessions: int = 0
    steady_flows: int = 0
    #: asn -> {"switches", "flows", "bgp_fib_routes", "external_fib_routes"}.
    per_as: Dict[int, Dict[str, int]] = field(default_factory=dict)
    redistribution_violations: List[str] = field(default_factory=list)
    flap: Optional[BorderFlapResult] = None
    wall_seconds: float = 0.0
    #: Per-phase wall-time breakdown (``--profile``):
    #: phase -> {"seconds", "calls"}.  None unless profiling was requested.
    profile: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def configured(self) -> bool:
        return self.configured_seconds is not None

    @property
    def healthy(self) -> bool:
        """Converged, settled, redistribution clean, flap (if any) verified."""
        return (self.configured and self.settled
                and not self.redistribution_violations
                and (self.flap is None or self.flap.verified))


def verify_interdomain(control_plane, as_map: Dict[int, int]) -> List[str]:
    """Cross-check the interdomain state of every VM.

    Returns human-readable violations (empty = healthy):

    * every VM's FIB covers every prefix of every AS (full reachability);
    * no VM holds a received announcement whose AS path contains its own
      AS (loop freedom);
    * every border VM (one with eBGP sessions) has BGP routes in its FIB;
    * every interior VM of a multi-router AS learned routes through the
      border's redistribution (tagged OSPF AS-external FIB routes); and
    * every VM's RIB equals a fresh SPF run (the PR-3 invariant).
    """
    violations = list(verify_spf_rib_consistency(control_plane))
    vms = control_plane.vms
    prefixes = {vm_iface.network
                for vm in vms.values()
                for vm_iface in vm.interfaces.values()
                if vm_iface.ip is not None}
    for vm_id in sorted(vms):
        vm = vms[vm_id]
        if not vm.is_running:
            continue
        missing = [p for p in prefixes if p not in vm.zebra.fib]
        if missing:
            violations.append(
                f"{vm.name}: {len(missing)} prefixes missing from the FIB "
                f"(e.g. {sorted(map(str, missing))[:3]})")
        daemon = vm.bgp
        if daemon is None:
            violations.append(f"{vm.name}: no bgpd running")
            continue
        local_as = daemon.local_as
        for session in daemon.sessions.values():
            for announcement in session.received.values():
                if local_as in announcement.as_path:
                    violations.append(
                        f"{vm.name}: AS {local_as} in received path "
                        f"{announcement.as_path} for {announcement.prefix}")
        is_border = bool(daemon.ebgp_sessions)
        bgp_fib = [r for r in vm.zebra.fib_routes
                   if r.source == RouteSource.BGP]
        external_fib = [r for r in vm.zebra.fib_routes
                        if r.tag == EXTERNAL_ROUTE_TAG]
        as_size = sum(1 for asn in as_map.values() if asn == as_map[vm_id])
        if is_border and not bgp_fib:
            violations.append(
                f"{vm.name}: border router without BGP routes in the FIB")
        if not is_border and as_size > 1 and not external_fib:
            violations.append(
                f"{vm.name}: interior router without redistributed "
                f"(AS-external) OSPF routes in the FIB")
    return violations


def _session_states(vm, peer_vm) -> List[str]:
    """States of the eBGP sessions between two VMs (both directions)."""
    states = []
    for first, second in ((vm, peer_vm), (peer_vm, vm)):
        if first.bgp is None:
            continue
        for session in first.bgp.sessions.values():
            if session.is_ibgp:
                continue
            owner = second.owns_ip(session.peer_address)
            if owner is not None:
                states.append(session.state)
    return states


def _total(framework: AutoConfigFramework, key: str) -> int:
    return sum(load[key] for load in framework.shard_loads())


def _rfproxies(framework: AutoConfigFramework):
    if framework.shards:
        return [shard.rfproxy for shard in framework.shards]
    return [framework.rfproxy]


def run_interdomain(scenario: Union[str, ScenarioSpec],
                    flap: bool = True,
                    flap_link: Optional[Tuple[int, int]] = None,
                    settle: float = DEFAULT_SETTLE,
                    max_extra_time: float = DEFAULT_MAX_EXTRA,
                    profile: bool = False) -> InterdomainResult:
    """Configure a multi-AS scenario, verify the interdomain state, and
    (optionally) flap one eBGP border link.

    ``flap_link`` picks the border link to bounce (default: the first
    inter-AS link of the topology); ``flap=False`` skips the flap phase
    (the benchmark suite does, for a pure convergence measurement);
    ``profile=True`` additionally fills :attr:`InterdomainResult.profile`
    with the :class:`PhaseProfiler` wall-time breakdown.
    """
    if not profile:
        return _run_interdomain(scenario, flap, flap_link, settle,
                                max_extra_time, None)
    with PhaseProfiler() as profiler:
        return _run_interdomain(scenario, flap, flap_link, settle,
                                max_extra_time, profiler)


def _run_interdomain(scenario: Union[str, ScenarioSpec],
                     flap: bool,
                     flap_link: Optional[Tuple[int, int]],
                     settle: float,
                     max_extra_time: float,
                     profiler: Optional[PhaseProfiler]) -> InterdomainResult:
    started = time.perf_counter()
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    topology = spec.build_topology()
    as_map = as_map_from_topology(topology)
    borders = [(link.node_a, link.node_b) for link in topology.links
               if as_map[link.node_a] != as_map[link.node_b]]
    config = spec.framework_config(topology)
    if not config.enable_bgp:
        raise ValueError(
            f"scenario {spec.name!r} is not an interdomain scenario "
            f"(set ScenarioSpec.interdomain=True)")
    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=spec.max_time)
    result = InterdomainResult(
        scenario=spec.name, family=spec.family, seed=spec.seed,
        num_ases=len(set(as_map.values())),
        num_switches=topology.num_nodes, num_links=topology.num_links,
        border_links=len(borders), controllers=spec.controllers,
        configured_seconds=configured_at)
    if configured_at is None:
        result.wall_seconds = time.perf_counter() - started
        if profiler is not None:
            result.profile = profiler.report()
        return result

    # -- settle to the interdomain steady state ------------------------------
    change_times: List[float] = []
    control_plane = framework.control_plane
    for vm in control_plane.vms.values():
        vm.zebra.add_fib_listener(
            lambda prefix, new, old, _sim=sim: change_times.append(_sim.now))

    def run_to_quiescence(deadline: float) -> bool:
        anchor = sim.now
        while sim.now < deadline:
            sim.run(until=min(sim.now + 1.0, deadline))
            last = change_times[-1] if change_times else anchor
            if sim.now >= last + settle:
                return True
        return False

    result.settled = run_to_quiescence(configured_at + max_extra_time)
    result.converged_seconds = change_times[-1] if change_times else configured_at
    result.steady_flows = _total(framework, "flows_current")
    directed = {"ebgp": 0, "ibgp": 0}
    for vm in control_plane.vms.values():
        if vm.bgp is not None:
            for session in vm.bgp.established_sessions:
                directed["ibgp" if session.is_ibgp else "ebgp"] += 1
    result.ebgp_sessions = directed["ebgp"] // 2
    result.ibgp_sessions = directed["ibgp"] // 2
    for asn in sorted(set(as_map.values())):
        members = {dpid for dpid, owner in as_map.items() if owner == asn}
        flows = sum(1 for proxy in _rfproxies(framework)
                    for (dpid, _prefix) in proxy.installed_flows
                    if dpid in members)
        bgp_fib = external_fib = 0
        for vm_id in members:
            vm = control_plane.vms.get(vm_id)
            if vm is None:
                continue
            bgp_fib += sum(1 for r in vm.zebra.fib_routes
                           if r.source == RouteSource.BGP)
            external_fib += sum(1 for r in vm.zebra.fib_routes
                                if r.tag == EXTERNAL_ROUTE_TAG)
        result.per_as[asn] = {
            "switches": len(members), "flows": flows,
            "bgp_fib_routes": bgp_fib, "external_fib_routes": external_fib,
        }
    result.redistribution_violations = verify_interdomain(control_plane, as_map)

    # -- border flap ---------------------------------------------------------
    if flap and borders:
        link = flap_link if flap_link is not None else borders[0]
        if (min(link), max(link)) not in {(min(b), max(b)) for b in borders}:
            raise ValueError(
                f"{link[0]}:{link[1]} is not an eBGP border link of "
                f"{spec.name} (borders: {borders})")
        vm_a = control_plane.vms[link[0]]
        vm_b = control_plane.vms[link[1]]
        removed_before = _total(framework, "flow_mods_removed")
        network.add_failure_listener(_mirror_into_routeflow(network,
                                                            framework.bus))
        network.schedule_failures(FailureSchedule.single_link_failure(
            link[0], link[1], at=FLAP_LEAD, restore_after=FLAP_DOWN))
        down_at = sim.now + FLAP_LEAD
        up_at = down_at + FLAP_DOWN
        # Down window: run to quiescence before the link is restored.
        del change_times[:]
        sim.run(until=down_at)
        run_to_quiescence(min(up_at, down_at + max_extra_time))
        down_changes = [t for t in change_times if t >= down_at]
        sessions_dropped = all(state != "Established"
                               for state in _session_states(vm_a, vm_b))
        withdrawn = _total(framework, "flow_mods_removed") - removed_before
        # Restore window.
        del change_times[:]
        sim.run(until=up_at)
        restored = run_to_quiescence(up_at + max_extra_time)
        restore_changes = [t for t in change_times if t >= up_at]
        result.settled = result.settled and restored
        reestablished = bool(_session_states(vm_a, vm_b)) and all(
            state == "Established" for state in _session_states(vm_a, vm_b))
        result.flap = BorderFlapResult(
            node_a=link[0], node_b=link[1],
            withdrawn_flow_mods=withdrawn,
            sessions_dropped=sessions_dropped,
            down_reconverge_seconds=(down_changes[-1] - down_at)
            if down_changes else 0.0,
            reestablished=reestablished,
            restore_reconverge_seconds=(restore_changes[-1] - up_at)
            if restore_changes else 0.0,
            flows_restored=_total(framework, "flows_current")
            == result.steady_flows,
        )
        result.redistribution_violations.extend(
            violation for violation in verify_interdomain(control_plane, as_map)
            if violation not in result.redistribution_violations)
    result.wall_seconds = time.perf_counter() - started
    if profiler is not None:
        result.profile = profiler.report()
    return result


def render_interdomain_table(results: List[InterdomainResult]) -> str:
    """Human-readable report of an interdomain suite."""
    rows = []
    for result in results:
        rows.append([
            result.scenario,
            result.num_ases,
            result.num_switches,
            result.border_links,
            format_seconds(result.configured_seconds),
            format_seconds(result.converged_seconds),
            f"{result.ebgp_sessions}/{result.ibgp_sessions}",
            result.steady_flows,
            "OK" if result.healthy
            else ("n/a" if not result.configured else "VIOLATIONS"),
        ])
    table = format_table(
        ["scenario", "ASes", "switches", "borders", "reachable", "converged",
         "eBGP/iBGP", "flows", "state"], rows)
    as_rows = []
    for result in results:
        for asn, report in sorted(result.per_as.items()):
            as_rows.append([result.scenario, asn, report["switches"],
                            report["flows"], report["bgp_fib_routes"],
                            report["external_fib_routes"]])
    as_table = format_table(
        ["scenario", "AS", "switches", "flows", "BGP FIB routes",
         "external FIB routes"], as_rows)
    notes = []
    for result in results:
        if result.flap is not None:
            flap = result.flap
            notes.append(
                f"{result.scenario}: border {flap.node_a}<->{flap.node_b} flap "
                f"-> sessions {'dropped' if flap.sessions_dropped else 'KEPT'}, "
                f"{flap.withdrawn_flow_mods} OFPFC_DELETEs, reconverged in "
                f"{format_seconds(flap.down_reconverge_seconds)}; restore "
                f"{'re-established' if flap.reestablished else 'FAILED'} in "
                f"{format_seconds(flap.restore_reconverge_seconds)}, flows "
                f"{'restored' if flap.flows_restored else 'NOT restored'}")
        notes.extend(f"  ! {violation}"
                     for violation in result.redistribution_violations)
    for result in results:
        if result.profile:
            in_phases = sum(e["seconds"] for e in result.profile.values())
            notes.append(
                f"{result.scenario}: phase profile "
                f"({in_phases:.2f}s of {result.wall_seconds:.2f}s wall)")
            notes.extend(
                f"  {phase:<24} {entry['seconds']:8.3f}s"
                f"  ({int(entry['calls'])} calls)"
                for phase, entry in result.profile.items())
    report = f"{table}\n\nper-AS breakdown:\n{as_table}"
    if notes:
        report += "\n\n" + "\n".join(notes)
    return report


def _result_payload(result: InterdomainResult) -> Dict[str, object]:
    payload = {
        "scenario": result.scenario,
        "family": result.family,
        "seed": result.seed,
        "ases": result.num_ases,
        "switches": result.num_switches,
        "links": result.num_links,
        "border_links": result.border_links,
        "controllers": result.controllers,
        "configured_seconds": result.configured_seconds,
        "converged_seconds": result.converged_seconds,
        "settled": result.settled,
        "ebgp_sessions": result.ebgp_sessions,
        "ibgp_sessions": result.ibgp_sessions,
        "steady_flows": result.steady_flows,
        "per_as": {str(asn): dict(report)
                   for asn, report in result.per_as.items()},
        "redistribution_violations": list(result.redistribution_violations),
        "wall_seconds": result.wall_seconds,
    }
    if result.profile is not None:
        payload["profile"] = {phase: dict(entry)
                              for phase, entry in result.profile.items()}
    if result.flap is not None:
        payload["flap"] = {
            "node_a": result.flap.node_a,
            "node_b": result.flap.node_b,
            "withdrawn_flow_mods": result.flap.withdrawn_flow_mods,
            "sessions_dropped": result.flap.sessions_dropped,
            "down_reconverge_seconds": result.flap.down_reconverge_seconds,
            "reestablished": result.flap.reestablished,
            "restore_reconverge_seconds": result.flap.restore_reconverge_seconds,
            "flows_restored": result.flap.flows_restored,
        }
    return payload


def write_interdomain_json(results: List[InterdomainResult],
                           path: PathLike) -> Path:
    """Write an interdomain suite as JSON (full per-AS and flap detail)."""
    target = Path(path)
    target.write_text(json.dumps([_result_payload(r) for r in results],
                                 indent=2, sort_keys=True) + "\n")
    return target


def write_interdomain_csv(results: List[InterdomainResult],
                          path: PathLike) -> Path:
    """Write an interdomain suite as CSV, one row per AS."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "family", "seed", "ases", "switches",
                         "links", "border_links", "controllers",
                         "configured_seconds", "converged_seconds",
                         "ebgp_sessions", "ibgp_sessions", "steady_flows",
                         "asn", "as_switches", "as_flows",
                         "as_bgp_fib_routes", "as_external_fib_routes"])
        for result in results:
            for asn, report in sorted(result.per_as.items()):
                writer.writerow([
                    result.scenario, result.family, result.seed,
                    result.num_ases, result.num_switches, result.num_links,
                    result.border_links, result.controllers,
                    result.configured_seconds, result.converged_seconds,
                    result.ebgp_sessions, result.ibgp_sessions,
                    result.steady_flows, asn, report["switches"],
                    report["flows"], report["bgp_fib_routes"],
                    report["external_fib_routes"],
                ])
    return target
