"""Controller-scaling experiments: the ``repro ctlscale`` subcommand.

For one registry scenario and a list of controller-shard counts, the
experiment configures the same topology under each shard count and
reports, per run:

* the simulated configuration (convergence) time — sharding pays off
  because VM cloning/booting serialises per controller host, so N shards
  boot their partitions concurrently;
* the per-shard control-plane load — RouteMods received, FlowMods
  issued, flows currently installed — exported per shard and as totals;
* a **conservation check**: the steady-state flow count is a function of
  the topology alone, so the sum of every shard's ``flows_current`` must
  equal the single-controller total (transient message *counts* may
  differ — boot interleavings change OSPF timing — which is why the check
  pins installed state, not traffic);
* the SPF/RIB invariant over every VM
  (:func:`~repro.experiments.failover.verify_spf_rib_consistency`), i.e.
  each router's RIB equals a fresh SPF result; and
* the control-plane bus's per-topic message counters.
"""

from __future__ import annotations

import csv
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.autoconfig import AutoConfigFramework
from repro.core.ipam import IPAddressManager
from repro.experiments.failover import (
    _mirror_into_routeflow,
    verify_spf_rib_consistency,
)
from repro.experiments.results import format_seconds, format_table
from repro.scenarios import ScenarioSpec, get
from repro.scenarios.events import FailureAction, FailureEvent, FailureSchedule
from repro.sim import Simulator
from repro.sim.rng import SeededRandom
from repro.topology.emulator import EmulatedNetwork

LOG = logging.getLogger(__name__)

#: Shard counts swept by default (1 is the conservation reference).
DEFAULT_CONTROLLER_COUNTS = (1, 2, 4)

PathLike = Union[str, Path]


@dataclass
class CtlScaleResult:
    """One scenario configured under one controller-shard count."""

    scenario: str
    family: str
    seed: int
    controllers: int
    partitioner: str
    num_switches: int
    num_links: int
    configured_seconds: Optional[float]
    #: One entry per shard: switches, vms, route_mods, flow_mods_installed,
    #: flow_mods_removed, flows_current (see ``ControllerShard.load``).
    shard_loads: List[Dict[str, int]] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    #: Per-topic bus counters at the end of the run.
    bus_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def configured(self) -> bool:
        return self.configured_seconds is not None

    @property
    def total_route_mods(self) -> int:
        return sum(load["route_mods"] for load in self.shard_loads)

    @property
    def total_flow_mods(self) -> int:
        return sum(load["flow_mods_installed"] + load["flow_mods_removed"]
                   for load in self.shard_loads)

    @property
    def total_flows(self) -> int:
        return sum(load["flows_current"] for load in self.shard_loads)


def run_ctlscale(scenario: Union[str, ScenarioSpec],
                 controller_counts: Iterable[int] = DEFAULT_CONTROLLER_COUNTS,
                 partitioner: Optional[str] = None,
                 settle: float = 5.0) -> List[CtlScaleResult]:
    """Configure one scenario under every shard count, in given order.

    ``partitioner`` overrides the scenario's partitioner kind (default:
    whatever the scenario's framework overrides say, i.e. ``hash``);
    ``settle`` runs each simulation a little past convergence so trailing
    flow installations land before the loads are sampled.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    results: List[CtlScaleResult] = []
    for count in controller_counts:
        if count < 1:
            raise ValueError(f"controller counts must be >= 1, got {count}")
        started = time.perf_counter()
        run_spec = spec.with_controllers(count)
        topology = run_spec.build_topology()
        config = run_spec.framework_config(topology)
        if partitioner is not None:
            config.partitioner = partitioner
        sim = Simulator()
        ipam = IPAddressManager()
        framework = AutoConfigFramework(sim, config=config, ipam=ipam)
        network = EmulatedNetwork(sim, topology, ipam=ipam)
        framework.attach(network)
        configured_at = framework.run_until_configured(max_time=run_spec.max_time,
                                                       settle=settle)
        result = CtlScaleResult(
            scenario=spec.name, family=spec.family, seed=spec.seed,
            controllers=count, partitioner=config.partitioner,
            num_switches=topology.num_nodes, num_links=topology.num_links,
            configured_seconds=configured_at,
            shard_loads=framework.shard_loads(),
            bus_stats=framework.bus.stats(),
            wall_seconds=time.perf_counter() - started)
        if configured_at is not None:
            result.invariant_violations = verify_spf_rib_consistency(
                framework.control_plane)
        LOG.info("ctlscale: %s x%d controllers -> configured %s, "
                 "%d flows installed", spec.name, count,
                 format_seconds(configured_at), result.total_flows)
        results.append(result)
    return results


def check_load_conservation(results: Sequence[CtlScaleResult]) -> List[str]:
    """Cross-check the sharded runs against the single-controller run.

    The steady-state per-switch flow state must be independent of how the
    control plane is partitioned; returns a list of human-readable
    violations (empty = conserved).  Needs a ``controllers=1`` run in the
    result list as the reference; without one nothing is checked.
    """
    reference = next((r for r in results if r.controllers == 1 and r.configured),
                     None)
    if reference is None:
        return []
    problems: List[str] = []
    for result in results:
        if result is reference or not result.configured:
            continue
        if result.total_flows != reference.total_flows:
            problems.append(
                f"{result.scenario} x{result.controllers}: "
                f"{result.total_flows} flows installed across shards, "
                f"single-controller total is {reference.total_flows}")
        if result.invariant_violations:
            problems.append(
                f"{result.scenario} x{result.controllers}: "
                f"{len(result.invariant_violations)} SPF/RIB violations")
    return problems


# ---------------------------------------------------------------------------
# controller churn: takeover / resharding under a failure schedule
# ---------------------------------------------------------------------------
@dataclass
class CtlScaleChurnResult:
    """One scenario driven through controller churn under N shards.

    ``reference_flows`` is the single-controller steady state (the
    conservation reference), ``steady_flows`` the sharded steady state
    before churn, ``final_flows`` the count after the schedule ran and
    the network re-settled.  Zero flow loss means all three agree.
    """

    scenario: str
    family: str
    seed: int
    controllers: int
    partitioner: str
    num_switches: int
    num_links: int
    churn_seed: int
    configured_seconds: Optional[float]
    reference_flows: int = 0
    steady_flows: int = 0
    final_flows: int = 0
    takeovers: int = 0
    reshards: int = 0
    settled: bool = False
    #: Fault profile injected on the sharded run's bus (pattern ->
    #: ChannelFaults params); empty means the bus was lossless.
    bus_faults: Dict[str, Dict[str, float]] = field(default_factory=dict)
    bus_fault_seed: int = 0
    reliable_ipc: bool = False
    #: Reliability counters summed across topics (``stats()["_totals"]``).
    retransmits: int = 0
    acked: int = 0
    exhausted: int = 0
    dropped_fault: int = 0
    fault_duplicated: int = 0
    fault_reordered: int = 0
    rx_duplicates: int = 0
    rx_out_of_order: int = 0
    rx_out_of_window: int = 0
    #: Fencing + idempotence counters from the components themselves.
    stale_announcements: int = 0
    duplicate_installs: int = 0
    client_resyncs: int = 0
    #: Per-topic bus counters at the end of the run.
    bus_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Seconds between the last churn event and the last FIB change (how
    #: long the control plane needed to reconverge after the churn).
    reconvergence_seconds: Optional[float] = None
    schedule: List[Dict[str, object]] = field(default_factory=list)
    shard_roles: List[str] = field(default_factory=list)
    shard_loads: List[Dict[str, int]] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    ownership_violations: List[str] = field(default_factory=list)
    orphaned_route_mods: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def configured(self) -> bool:
        return self.configured_seconds is not None

    @property
    def flow_loss(self) -> int:
        return self.steady_flows - self.final_flows

    @property
    def conserved(self) -> bool:
        """The load-conservation gate under churn: the post-churn flow
        state matches both the pre-churn sharded steady state and the
        single-controller reference."""
        return (self.configured
                and self.final_flows == self.steady_flows
                and self.final_flows == self.reference_flows)

    @property
    def healthy(self) -> bool:
        return (self.configured and self.settled and self.conserved
                and not self.invariant_violations
                and not self.ownership_violations
                and not self.orphaned_route_mods)


def churn_schedule(num_shards: int, dpids: Sequence[int],
                   links: Sequence[tuple], failovers: int = 1,
                   reshards: int = 1, link_churn: int = 2, seed: int = 0,
                   spacing: float = 30.0,
                   start: float = 5.0) -> FailureSchedule:
    """A seeded controller-churn schedule: shard failovers (each later
    restored), live reshards onto random live shards, interleaved with
    random link churn.  At least two shards stay live at all times, so a
    takeover always has a standby.  Deterministic in the seed."""
    if num_shards < 2:
        raise ValueError(
            f"controller churn needs >= 2 shards, got {num_shards}")
    rng = SeededRandom(seed)
    events: List[FailureEvent] = []
    failed: set = set()
    when = start
    for _ in range(failovers):
        live = [s for s in range(num_shards) if s not in failed]
        if len(live) < 2:
            break
        victim = rng.choice(live)
        events.append(FailureEvent(when, FailureAction.SHARD_FAILOVER, victim))
        failed.add(victim)
        when += spacing
        events.append(FailureEvent(when, FailureAction.SHARD_UP, victim))
        failed.discard(victim)
        when += spacing
    ordered_dpids = sorted(dpids)
    for _ in range(reshards):
        live = [s for s in range(num_shards) if s not in failed]
        dpid = rng.choice(ordered_dpids)
        target = rng.choice(live)
        events.append(FailureEvent(when, FailureAction.RESHARD, dpid, target))
        when += spacing
    schedule = FailureSchedule(tuple(events))
    if link_churn:
        schedule = schedule.extended(FailureSchedule.random_churn(
            list(links), link_churn, seed=seed + 1, start=start + spacing / 2,
            spacing=spacing, recovery=spacing / 2).events)
    return schedule


def _harvest_bus_counters(result: CtlScaleChurnResult,
                          framework: AutoConfigFramework) -> None:
    """Copy the bus's end-of-run reliability counters into the result."""
    stats = framework.bus.stats()
    totals = stats.get("_totals", {})
    for key in ("retransmits", "acked", "exhausted", "dropped_fault",
                "fault_duplicated", "fault_reordered", "rx_duplicates",
                "rx_out_of_order", "rx_out_of_window"):
        setattr(result, key, int(totals.get(key, 0)))
    result.bus_stats = stats


def run_ctlscale_churn(scenario: Union[str, ScenarioSpec],
                       controllers: Optional[int] = None,
                       partitioner: Optional[str] = None,
                       failovers: int = 1, reshards: int = 1,
                       link_churn: int = 2, churn_seed: int = 0,
                       spacing: float = 30.0, settle: float = 15.0,
                       max_extra: float = 900.0,
                       bus_drop: float = 0.0, bus_duplicate: float = 0.0,
                       bus_reorder: float = 0.0, bus_jitter: float = 0.0,
                       bus_fault_seed: Optional[int] = None
                       ) -> CtlScaleChurnResult:
    """Measure reconvergence time and flow loss under controller churn.

    Configures the scenario twice: once with a single controller (the
    conservation reference) and once with ``controllers`` shards (default:
    the scenario's own count).  The sharded run is then driven through a
    seeded churn schedule — shard failovers with standby takeover, live
    resharding, link churn — and run to quiescence; the result carries the
    flow-conservation gate plus the SPF/RIB, ownership and parked-RouteMod
    invariants.

    ``bus_drop`` / ``bus_duplicate`` / ``bus_reorder`` / ``bus_jitter``
    degrade the sharded run's control bus on every ``routeflow.*`` and
    ``config.rpc`` topic (the single-controller reference stays lossless
    so the conservation baseline is exact).  Any non-zero value switches
    the bus to reliable at-least-once delivery; ``bus_fault_seed``
    defaults to ``churn_seed`` so a lossy run is deterministic in one
    seed.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    count = controllers if controllers is not None else spec.controllers
    if count < 2:
        raise ValueError(
            f"controller churn needs >= 2 shards; scenario {spec.name} "
            f"defaults to {count} (pass a controller count >= 2)")
    fault_params = {key: value for key, value in (
        ("drop", bus_drop), ("duplicate", bus_duplicate),
        ("reorder", bus_reorder), ("jitter", bus_jitter)) if value}
    bus_faults = ({"routeflow.*": dict(fault_params),
                   "config.rpc": dict(fault_params)}
                  if fault_params else {})
    fault_seed = churn_seed if bus_fault_seed is None else bus_fault_seed
    reference = run_ctlscale(spec, controller_counts=(1,))[0]

    started = time.perf_counter()
    run_spec = spec.with_controllers(count)
    topology = run_spec.build_topology()
    config = run_spec.framework_config(topology)
    if partitioner is not None:
        config.partitioner = partitioner
    if bus_faults:
        config.bus_faults = bus_faults
        config.bus_fault_seed = fault_seed
    sim = Simulator()
    ipam = IPAddressManager()
    framework = AutoConfigFramework(sim, config=config, ipam=ipam)
    network = EmulatedNetwork(sim, topology, ipam=ipam)
    framework.attach(network)
    configured_at = framework.run_until_configured(max_time=run_spec.max_time,
                                                   settle=5.0)
    result = CtlScaleChurnResult(
        scenario=spec.name, family=spec.family, seed=spec.seed,
        controllers=count, partitioner=config.partitioner,
        num_switches=topology.num_nodes, num_links=topology.num_links,
        churn_seed=churn_seed, configured_seconds=configured_at,
        reference_flows=reference.total_flows,
        bus_faults={pattern: dict(params)
                    for pattern, params in bus_faults.items()},
        bus_fault_seed=fault_seed if bus_faults else 0,
        reliable_ipc=framework.bus.reliable)
    if configured_at is None:
        result.wall_seconds = time.perf_counter() - started
        _harvest_bus_counters(result, framework)
        return result

    plane = framework.control_plane
    if bus_faults:
        # Under a lossy bus the flow-install tail outlives the VM-running
        # convergence signal (retransmits may still be draining); sample
        # the steady state only once the bus is quiet.  The signature
        # includes the retransmit/ack counters because a pending message
        # can sit silent for up to max_rto (5 s) between attempts without
        # the flow count moving — the quiet window must outlast that.
        def signature():
            stats = framework.bus.stats()["_totals"]
            flows = sum(load["flows_current"]
                        for load in framework.shard_loads())
            return (flows, stats["retransmits"], stats["acked"])

        quiet = signature()
        quiet_since = sim.now
        drain_deadline = sim.now + 180.0
        while sim.now < drain_deadline:
            sim.run(until=sim.now + 1.0)
            current = signature()
            if current != quiet:
                quiet, quiet_since = current, sim.now
            elif sim.now - quiet_since >= 6.0:
                break
    result.steady_flows = sum(load["flows_current"]
                              for load in framework.shard_loads())
    change_times: List[float] = []
    for vm in plane.vms.values():
        vm.zebra.add_fib_listener(
            lambda prefix, new, old: change_times.append(sim.now))
    network.add_failure_listener(_mirror_into_routeflow(network,
                                                        framework.bus))
    schedule = churn_schedule(
        count, [node.node_id for node in topology.nodes],
        list(network.link_ports), failovers=failovers, reshards=reshards,
        link_churn=link_churn, seed=churn_seed, spacing=spacing)
    schedule.validate_against(network.switches,
                              ((a, b) for a, b in network.link_ports),
                              shards=count)
    result.schedule = schedule.to_list()
    armed_at = sim.now
    network.schedule_failures(schedule)
    horizon = armed_at + schedule.duration
    deadline = horizon + max_extra
    while sim.now < deadline:
        sim.run(until=min(sim.now + 1.0, deadline))
        last_activity = max([horizon] + change_times[-1:])
        if sim.now >= last_activity + settle:
            result.settled = True
            break

    last_change = max((t for t in change_times if t >= armed_at),
                      default=horizon)
    result.reconvergence_seconds = max(0.0, last_change - horizon)
    result.final_flows = sum(load["flows_current"]
                             for load in framework.shard_loads())
    result.takeovers = plane.takeovers
    result.reshards = plane.reshards
    result.shard_roles = [plane.role_of(shard.shard_id)
                          for shard in plane.shards]
    result.shard_loads = framework.shard_loads()
    result.invariant_violations = verify_spf_rib_consistency(plane)
    result.ownership_violations = plane.ownership_violations()
    result.orphaned_route_mods = plane.orphaned_parked_route_mods()
    result.stale_announcements = plane.stale_announcements
    result.duplicate_installs = sum(shard.rfproxy.duplicate_installs
                                    for shard in plane.shards)
    result.client_resyncs = sum(
        client.resyncs
        for shard in plane.shards
        for client in shard.rfserver.rfclients.values())
    _harvest_bus_counters(result, framework)
    result.wall_seconds = time.perf_counter() - started
    LOG.info("ctlscale churn: %s x%d -> %d takeovers, %d reshards, "
             "flow loss %d, reconverged in %.1fs", spec.name, count,
             result.takeovers, result.reshards, result.flow_loss,
             result.reconvergence_seconds)
    return result


def render_ctlscale_churn(result: CtlScaleChurnResult) -> str:
    """Human-readable churn report with the gate verdicts."""
    rows = [[
        result.scenario, result.controllers, result.partitioner,
        format_seconds(result.configured_seconds), result.takeovers,
        result.reshards,
        "-" if result.reconvergence_seconds is None
        else format_seconds(result.reconvergence_seconds),
        result.flow_loss,
        "yes" if result.settled else "NO",
    ]]
    table = format_table(
        ["scenario", "controllers", "partitioner", "configured",
         "takeovers", "reshards", "reconvergence", "flow loss", "settled"],
        rows)
    lines = [table, ""]
    lines.append("schedule: " + (
        FailureSchedule.from_list(result.schedule).describe()
        if result.schedule else "(empty)"))
    lines.append(f"shard roles: {', '.join(result.shard_roles) or 'n/a'}")
    if result.bus_faults:
        profile = "; ".join(
            f"{pattern}: " + ", ".join(f"{key}={value:g}"
                                       for key, value in sorted(params.items()))
            for pattern, params in sorted(result.bus_faults.items()))
        lines.append(f"bus faults (seed {result.bus_fault_seed}): {profile}")
        lines.append(
            "reliable IPC: "
            f"{result.retransmits} retransmits, {result.acked} acked, "
            f"{result.exhausted} exhausted, {result.client_resyncs} resyncs; "
            f"rx {result.rx_duplicates} dup / {result.rx_out_of_order} ooo / "
            f"{result.rx_out_of_window} out-of-window; "
            f"{result.dropped_fault} dropped by faults, "
            f"{result.stale_announcements} stale announcements fenced, "
            f"{result.duplicate_installs} duplicate installs")
    gates = [
        ("flows conserved "
         f"(reference {result.reference_flows}, steady {result.steady_flows},"
         f" final {result.final_flows})", result.conserved),
        ("SPF/RIB invariant", not result.invariant_violations),
        ("one live master per dpid", not result.ownership_violations),
        ("no orphaned parked RouteMods", not result.orphaned_route_mods),
    ]
    for label, passed in gates:
        lines.append(f"  {'OK  ' if passed else 'FAIL'} {label}")
    for problem in (result.invariant_violations
                    + result.ownership_violations
                    + result.orphaned_route_mods):
        lines.append(f"  ! {problem}")
    return "\n".join(lines)


def churn_result_payload(result: CtlScaleChurnResult) -> Dict[str, object]:
    """JSON-ready form of a churn run (the ``--churn --out`` schema)."""
    return {
        "scenario": result.scenario,
        "family": result.family,
        "seed": result.seed,
        "controllers": result.controllers,
        "partitioner": result.partitioner,
        "switches": result.num_switches,
        "links": result.num_links,
        "churn_seed": result.churn_seed,
        "configured_seconds": result.configured_seconds,
        "reference_flows": result.reference_flows,
        "steady_flows": result.steady_flows,
        "final_flows": result.final_flows,
        "flow_loss": result.flow_loss,
        "takeovers": result.takeovers,
        "reshards": result.reshards,
        "settled": result.settled,
        "reconvergence_seconds": result.reconvergence_seconds,
        "schedule": list(result.schedule),
        "shard_roles": list(result.shard_roles),
        "shard_loads": list(result.shard_loads),
        "invariant_violations": list(result.invariant_violations),
        "ownership_violations": list(result.ownership_violations),
        "orphaned_route_mods": list(result.orphaned_route_mods),
        "conserved": result.conserved,
        "healthy": result.healthy,
        "bus_faults": {pattern: dict(params)
                       for pattern, params in result.bus_faults.items()},
        "bus_fault_seed": result.bus_fault_seed,
        "reliable_ipc": result.reliable_ipc,
        "retransmits": result.retransmits,
        "acked": result.acked,
        "exhausted": result.exhausted,
        "dropped_fault": result.dropped_fault,
        "fault_duplicated": result.fault_duplicated,
        "fault_reordered": result.fault_reordered,
        "rx_duplicates": result.rx_duplicates,
        "rx_out_of_order": result.rx_out_of_order,
        "rx_out_of_window": result.rx_out_of_window,
        "stale_announcements": result.stale_announcements,
        "duplicate_installs": result.duplicate_installs,
        "client_resyncs": result.client_resyncs,
        "bus_stats": dict(result.bus_stats),
        "wall_seconds": result.wall_seconds,
    }


def write_ctlscale_churn_json(result: CtlScaleChurnResult,
                              path: PathLike) -> Path:
    target = Path(path)
    target.write_text(json.dumps(churn_result_payload(result), indent=2,
                                 sort_keys=True) + "\n")
    return target


def render_ctlscale_table(results: Sequence[CtlScaleResult]) -> str:
    """Per-run summary plus a per-shard load breakdown."""
    rows = []
    for result in results:
        rows.append([
            result.scenario,
            result.controllers,
            result.partitioner,
            format_seconds(result.configured_seconds),
            result.total_route_mods,
            result.total_flow_mods,
            result.total_flows,
            "OK" if result.configured and not result.invariant_violations
            else ("n/a" if not result.configured else "VIOLATIONS"),
        ])
    table = format_table(
        ["scenario", "controllers", "partitioner", "configured",
         "route mods", "flow mods", "flows", "RIB=SPF"], rows)
    shard_rows = []
    for result in results:
        for load in result.shard_loads:
            shard_rows.append([
                f"{result.scenario} x{result.controllers}",
                load["shard"],
                load["switches"],
                load["route_mods"],
                load["flow_mods_installed"] + load["flow_mods_removed"],
                load["flows_current"],
            ])
    shard_table = format_table(
        ["run", "shard", "switches", "route mods", "flow mods", "flows"],
        shard_rows)
    notes = [f"  ! {problem}" for problem in check_load_conservation(results)]
    conservation = "\n".join(notes) if notes else \
        "per-shard load sums match the single-controller totals"
    return f"{table}\n\nper-shard load:\n{shard_table}\n\n{conservation}"


def _result_payload(result: CtlScaleResult) -> Dict[str, object]:
    return {
        "scenario": result.scenario,
        "family": result.family,
        "seed": result.seed,
        "controllers": result.controllers,
        "partitioner": result.partitioner,
        "switches": result.num_switches,
        "links": result.num_links,
        "configured_seconds": result.configured_seconds,
        "shard_loads": list(result.shard_loads),
        "total_route_mods": result.total_route_mods,
        "total_flow_mods": result.total_flow_mods,
        "total_flows": result.total_flows,
        "invariant_violations": list(result.invariant_violations),
        "bus_stats": dict(result.bus_stats),
        "wall_seconds": result.wall_seconds,
    }


def write_ctlscale_json(results: Sequence[CtlScaleResult],
                        path: PathLike) -> Path:
    """Write a controller-scaling series as JSON (full per-shard detail)."""
    target = Path(path)
    target.write_text(json.dumps([_result_payload(r) for r in results],
                                 indent=2, sort_keys=True) + "\n")
    return target


def write_ctlscale_csv(results: Sequence[CtlScaleResult],
                       path: PathLike) -> Path:
    """Write a controller-scaling series as CSV, one row per shard."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "family", "seed", "controllers",
                         "partitioner", "switches", "links",
                         "configured_seconds", "shard", "shard_switches",
                         "route_mods", "flow_mods_installed",
                         "flow_mods_removed", "flows_current",
                         "bgp_updates_sent", "bgp_withdrawals_sent",
                         "bgp_updates_received"])
        for result in results:
            for load in result.shard_loads:
                writer.writerow([
                    result.scenario, result.family, result.seed,
                    result.controllers, result.partitioner,
                    result.num_switches, result.num_links,
                    result.configured_seconds, load["shard"],
                    load["switches"], load["route_mods"],
                    load["flow_mods_installed"], load["flow_mods_removed"],
                    load["flows_current"],
                    load.get("bgp_updates_sent", 0),
                    load.get("bgp_withdrawals_sent", 0),
                    load.get("bgp_updates_received", 0),
                ])
    return target
