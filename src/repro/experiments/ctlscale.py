"""Controller-scaling experiments: the ``repro ctlscale`` subcommand.

For one registry scenario and a list of controller-shard counts, the
experiment configures the same topology under each shard count and
reports, per run:

* the simulated configuration (convergence) time — sharding pays off
  because VM cloning/booting serialises per controller host, so N shards
  boot their partitions concurrently;
* the per-shard control-plane load — RouteMods received, FlowMods
  issued, flows currently installed — exported per shard and as totals;
* a **conservation check**: the steady-state flow count is a function of
  the topology alone, so the sum of every shard's ``flows_current`` must
  equal the single-controller total (transient message *counts* may
  differ — boot interleavings change OSPF timing — which is why the check
  pins installed state, not traffic);
* the SPF/RIB invariant over every VM
  (:func:`~repro.experiments.failover.verify_spf_rib_consistency`), i.e.
  each router's RIB equals a fresh SPF result; and
* the control-plane bus's per-topic message counters.
"""

from __future__ import annotations

import csv
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.autoconfig import AutoConfigFramework
from repro.core.ipam import IPAddressManager
from repro.experiments.failover import verify_spf_rib_consistency
from repro.experiments.results import format_seconds, format_table
from repro.scenarios import ScenarioSpec, get
from repro.sim import Simulator
from repro.topology.emulator import EmulatedNetwork

LOG = logging.getLogger(__name__)

#: Shard counts swept by default (1 is the conservation reference).
DEFAULT_CONTROLLER_COUNTS = (1, 2, 4)

PathLike = Union[str, Path]


@dataclass
class CtlScaleResult:
    """One scenario configured under one controller-shard count."""

    scenario: str
    family: str
    seed: int
    controllers: int
    partitioner: str
    num_switches: int
    num_links: int
    configured_seconds: Optional[float]
    #: One entry per shard: switches, vms, route_mods, flow_mods_installed,
    #: flow_mods_removed, flows_current (see ``ControllerShard.load``).
    shard_loads: List[Dict[str, int]] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    #: Per-topic bus counters at the end of the run.
    bus_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def configured(self) -> bool:
        return self.configured_seconds is not None

    @property
    def total_route_mods(self) -> int:
        return sum(load["route_mods"] for load in self.shard_loads)

    @property
    def total_flow_mods(self) -> int:
        return sum(load["flow_mods_installed"] + load["flow_mods_removed"]
                   for load in self.shard_loads)

    @property
    def total_flows(self) -> int:
        return sum(load["flows_current"] for load in self.shard_loads)


def run_ctlscale(scenario: Union[str, ScenarioSpec],
                 controller_counts: Iterable[int] = DEFAULT_CONTROLLER_COUNTS,
                 partitioner: Optional[str] = None,
                 settle: float = 5.0) -> List[CtlScaleResult]:
    """Configure one scenario under every shard count, in given order.

    ``partitioner`` overrides the scenario's partitioner kind (default:
    whatever the scenario's framework overrides say, i.e. ``hash``);
    ``settle`` runs each simulation a little past convergence so trailing
    flow installations land before the loads are sampled.
    """
    spec = scenario if isinstance(scenario, ScenarioSpec) else get(scenario)
    results: List[CtlScaleResult] = []
    for count in controller_counts:
        if count < 1:
            raise ValueError(f"controller counts must be >= 1, got {count}")
        started = time.perf_counter()
        run_spec = spec.with_controllers(count)
        topology = run_spec.build_topology()
        config = run_spec.framework_config(topology)
        if partitioner is not None:
            config.partitioner = partitioner
        sim = Simulator()
        ipam = IPAddressManager()
        framework = AutoConfigFramework(sim, config=config, ipam=ipam)
        network = EmulatedNetwork(sim, topology, ipam=ipam)
        framework.attach(network)
        configured_at = framework.run_until_configured(max_time=run_spec.max_time,
                                                       settle=settle)
        result = CtlScaleResult(
            scenario=spec.name, family=spec.family, seed=spec.seed,
            controllers=count, partitioner=config.partitioner,
            num_switches=topology.num_nodes, num_links=topology.num_links,
            configured_seconds=configured_at,
            shard_loads=framework.shard_loads(),
            bus_stats=framework.bus.stats(),
            wall_seconds=time.perf_counter() - started)
        if configured_at is not None:
            result.invariant_violations = verify_spf_rib_consistency(
                framework.control_plane)
        LOG.info("ctlscale: %s x%d controllers -> configured %s, "
                 "%d flows installed", spec.name, count,
                 format_seconds(configured_at), result.total_flows)
        results.append(result)
    return results


def check_load_conservation(results: Sequence[CtlScaleResult]) -> List[str]:
    """Cross-check the sharded runs against the single-controller run.

    The steady-state per-switch flow state must be independent of how the
    control plane is partitioned; returns a list of human-readable
    violations (empty = conserved).  Needs a ``controllers=1`` run in the
    result list as the reference; without one nothing is checked.
    """
    reference = next((r for r in results if r.controllers == 1 and r.configured),
                     None)
    if reference is None:
        return []
    problems: List[str] = []
    for result in results:
        if result is reference or not result.configured:
            continue
        if result.total_flows != reference.total_flows:
            problems.append(
                f"{result.scenario} x{result.controllers}: "
                f"{result.total_flows} flows installed across shards, "
                f"single-controller total is {reference.total_flows}")
        if result.invariant_violations:
            problems.append(
                f"{result.scenario} x{result.controllers}: "
                f"{len(result.invariant_violations)} SPF/RIB violations")
    return problems


def render_ctlscale_table(results: Sequence[CtlScaleResult]) -> str:
    """Per-run summary plus a per-shard load breakdown."""
    rows = []
    for result in results:
        rows.append([
            result.scenario,
            result.controllers,
            result.partitioner,
            format_seconds(result.configured_seconds),
            result.total_route_mods,
            result.total_flow_mods,
            result.total_flows,
            "OK" if result.configured and not result.invariant_violations
            else ("n/a" if not result.configured else "VIOLATIONS"),
        ])
    table = format_table(
        ["scenario", "controllers", "partitioner", "configured",
         "route mods", "flow mods", "flows", "RIB=SPF"], rows)
    shard_rows = []
    for result in results:
        for load in result.shard_loads:
            shard_rows.append([
                f"{result.scenario} x{result.controllers}",
                load["shard"],
                load["switches"],
                load["route_mods"],
                load["flow_mods_installed"] + load["flow_mods_removed"],
                load["flows_current"],
            ])
    shard_table = format_table(
        ["run", "shard", "switches", "route mods", "flow mods", "flows"],
        shard_rows)
    notes = [f"  ! {problem}" for problem in check_load_conservation(results)]
    conservation = "\n".join(notes) if notes else \
        "per-shard load sums match the single-controller totals"
    return f"{table}\n\nper-shard load:\n{shard_table}\n\n{conservation}"


def _result_payload(result: CtlScaleResult) -> Dict[str, object]:
    return {
        "scenario": result.scenario,
        "family": result.family,
        "seed": result.seed,
        "controllers": result.controllers,
        "partitioner": result.partitioner,
        "switches": result.num_switches,
        "links": result.num_links,
        "configured_seconds": result.configured_seconds,
        "shard_loads": list(result.shard_loads),
        "total_route_mods": result.total_route_mods,
        "total_flow_mods": result.total_flow_mods,
        "total_flows": result.total_flows,
        "invariant_violations": list(result.invariant_violations),
        "bus_stats": dict(result.bus_stats),
        "wall_seconds": result.wall_seconds,
    }


def write_ctlscale_json(results: Sequence[CtlScaleResult],
                        path: PathLike) -> Path:
    """Write a controller-scaling series as JSON (full per-shard detail)."""
    target = Path(path)
    target.write_text(json.dumps([_result_payload(r) for r in results],
                                 indent=2, sort_keys=True) + "\n")
    return target


def write_ctlscale_csv(results: Sequence[CtlScaleResult],
                       path: PathLike) -> Path:
    """Write a controller-scaling series as CSV, one row per shard."""
    target = Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["scenario", "family", "seed", "controllers",
                         "partitioner", "switches", "links",
                         "configured_seconds", "shard", "shard_switches",
                         "route_mods", "flow_mods_installed",
                         "flow_mods_removed", "flows_current"])
        for result in results:
            for load in result.shard_loads:
                writer.writerow([
                    result.scenario, result.family, result.seed,
                    result.controllers, result.partitioner,
                    result.num_switches, result.num_links,
                    result.configured_seconds, load["shard"],
                    load["switches"], load["route_mods"],
                    load["flow_mods_installed"], load["flow_mods_removed"],
                    load["flows_current"],
                ])
    return target
