"""Machine-readable hot-path benchmarks (the ``repro bench`` subcommand).

The suite times the simulator's hot paths — the event-heap kernel, OSPF
SPF (cold and warm LSDB caches), the packet codecs and a full 64-router
convergence scenario — and writes the results as JSON so every PR can
record the performance trajectory and CI can fail on regressions.

Raw wall-clock numbers are useless across machines (and even across runs
on throttled CI runners), so every result also carries a *normalized* value:
wall seconds divided by the duration of a fixed pure-Python calibration
loop measured in the same process.  Regression checks compare normalized
values, which cancels out most machine-speed variance while still catching
algorithmic slowdowns.

Determinism doubles as a correctness gate: the convergence benchmark
records the *simulated* configuration time, which must match the baseline
exactly — a drift there means behaviour changed, not just speed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

BENCH_SCHEMA = 1

#: Iterations of the calibration loop (a fixed, allocation-free workload).
_CALIBRATION_LOOPS = 10_000_000


def calibrate() -> float:
    """Time the fixed calibration workload once."""
    start = time.perf_counter()
    total = 0
    for index in range(_CALIBRATION_LOOPS):
        total += index & 7
    return time.perf_counter() - start


def _best_of(function: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Run ``function`` ``repeats`` times; return (best wall seconds, result)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------
def bench_kernel_event_churn() -> Dict[str, Any]:
    """Schedule and run 200k chained events through a bare simulator."""
    from repro.sim import Simulator

    def run() -> int:
        sim = Simulator()
        count = 200_000

        def tick() -> None:
            if sim.processed_events < count:
                sim.schedule(0.001, tick)

        for _ in range(64):
            sim.schedule(0.001, tick)
        sim.run(max_events=count)
        return sim.processed_events

    wall, processed = _best_of(run)
    return {"wall_seconds": wall, "events": processed}


def bench_kernel_cancel_peek() -> Dict[str, Any]:
    """Heavy cancellation churn with interleaved peek()/pending() calls."""
    from repro.sim import Simulator

    def run() -> int:
        sim = Simulator()
        events = [sim.schedule(float(i % 97) + 1.0, lambda: None)
                  for i in range(50_000)]
        for event in events[::2]:
            event.cancel()
        probes = 0
        for _ in range(5_000):
            sim.peek()
            probes += sim.pending()
        sim.run()
        return probes

    wall, _ = _best_of(run)
    return {"wall_seconds": wall}


def ring_lsdb(count: int):
    from repro.net.addresses import IPv4Address
    from repro.quagga.ospf.lsdb import LSDB
    from repro.quagga.ospf.packets import RouterLink, RouterLSA

    lsdb = LSDB()
    for index in range(count):
        rid = IPv4Address(0x0A000000 + index + 1)
        left = IPv4Address(0x0A000000 + (index - 1) % count + 1)
        right = IPv4Address(0x0A000000 + (index + 1) % count + 1)
        links = [
            RouterLink.point_to_point(left, IPv4Address(0xAC100001 + index * 4), 10),
            RouterLink.point_to_point(right, IPv4Address(0xAC100002 + index * 4), 10),
            RouterLink.stub(IPv4Address(0xC0A80000 + index * 256),
                            IPv4Address("255.255.255.0"), 10),
        ]
        lsdb.install(RouterLSA.originate(router_id=rid, sequence=0x80000001,
                                         links=links))
    return lsdb


def bench_spf_cold_64() -> Dict[str, Any]:
    """SPF with a changed LSDB per run (version-cache misses)."""
    from repro.net.addresses import IPv4Address
    from repro.quagga.ospf.packets import RouterLSA
    from repro.quagga.ospf.spf import compute_routes

    lsdb = ring_lsdb(64)
    root = IPv4Address(0x0A000001)
    sequence = [0x80000002]

    def run() -> int:
        total = 0
        for _ in range(50):
            # Reinstall a fresher LSA so the graph/stub caches must rebuild.
            old = lsdb.router_lsa(root)
            sequence[0] += 1
            lsdb.install(RouterLSA.originate(router_id=root,
                                             sequence=sequence[0],
                                             links=old.links))
            total += len(compute_routes(lsdb, root))
        return total

    wall, routes = _best_of(run)
    return {"wall_seconds": wall, "routes": routes}


def bench_spf_warm_64() -> Dict[str, Any]:
    """Repeated SPF over an unchanged LSDB (version-cache hits)."""
    from repro.net.addresses import IPv4Address
    from repro.quagga.ospf.spf import compute_routes

    lsdb = ring_lsdb(64)
    root = IPv4Address(0x0A000001)

    def run() -> int:
        total = 0
        for _ in range(200):
            total += len(compute_routes(lsdb, root))
        return total

    wall, routes = _best_of(run)
    return {"wall_seconds": wall, "routes": routes}


def bench_frame_decode() -> Dict[str, Any]:
    """Ethernet/IPv4/UDP decode plus flow-field extraction (substrate)."""
    from repro.net import Ethernet, EtherType, IPv4, IPv4Address, MACAddress, UDP
    from repro.net.ipv4 import IPProtocol
    from repro.openflow import PacketFields

    packet = IPv4(src=IPv4Address("10.0.0.1"), dst=IPv4Address("10.0.200.4"),
                  protocol=IPProtocol.UDP, payload=UDP(5004, 5004, b"x" * 64))
    frame = Ethernet(src=MACAddress(1), dst=MACAddress(2),
                     ethertype=EtherType.IPV4, payload=packet).encode()

    def run() -> int:
        total = 0
        for _ in range(20_000):
            decoded = Ethernet.decode(frame)
            fields = PacketFields.from_frame(frame, in_port=1)
            total += decoded.ethertype + fields.tp_dst
        return total

    wall, _ = _best_of(run)
    return {"wall_seconds": wall}


def bench_flow_mod_codec() -> Dict[str, Any]:
    """OpenFlow flow-mod decode/encode round trip (substrate)."""
    from repro.net import IPv4Address
    from repro.openflow import FlowMod, Match, OpenFlowMessage, OutputAction

    message = FlowMod(match=Match.for_destination_prefix(IPv4Address("10.1.0.0"), 16),
                      actions=[OutputAction(3)], priority=1000).encode()

    def run() -> bool:
        out = b""
        for _ in range(10_000):
            out = OpenFlowMessage.decode(message).encode()
        return out == message

    wall, ok = _best_of(run)
    return {"wall_seconds": wall, "roundtrip_ok": bool(ok)}


def bench_convergence_64() -> Dict[str, Any]:
    """The headline scenario: automatic configuration of an 8x8 torus.

    ``sim_seconds`` is deterministic — the regression check requires it to
    match the baseline exactly, proving the optimized code still produces
    the same simulation.
    """
    from repro.experiments.config_time import run_single_configuration
    from repro.topology.generators import torus_topology

    wall, result = _best_of(
        lambda: run_single_configuration(torus_topology(8, 8), max_time=3600.0),
        repeats=2)
    return {"wall_seconds": wall, "sim_seconds": result.auto_seconds,
            "switches": result.num_switches, "links": result.num_links}


def bench_sharded_convergence_16() -> Dict[str, Any]:
    """Sharded control plane: a 16-ring under 2 controller shards.

    Exercises the bus-based coordination path (mapping topic, cross-shard
    next-hop resolution, dpid-filtered FlowVisor slices).  ``sim_seconds``
    is deterministic and gated exactly, like ``convergence_64``; ``flows``
    doubles as the load-conservation gate (it must equal the
    single-controller steady state for this topology).
    """
    from repro.experiments.ctlscale import run_ctlscale
    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec("bench-ring-16-c2", "ring", {"num_switches": 16},
                        controllers=2)

    def run():
        return run_ctlscale(spec, controller_counts=(2,))[0]

    wall, result = _best_of(run, repeats=2)
    return {"wall_seconds": wall, "sim_seconds": result.configured_seconds,
            "switches": result.num_switches, "links": result.num_links,
            "flows": result.total_flows}


def bench_sharded_churn_16() -> Dict[str, Any]:
    """Controller churn: the 16-ring under 2 shards driven through the
    seeded default churn schedule (a shard failover with standby
    takeover, a live reshard, two link bounces).

    Exercises the takeover machinery end to end — dpid migration,
    FlowVisor slice rehoming, RFClient resync, parked-RouteMod transfer.
    ``flows`` is the zero-flow-loss gate (the final installed-flow count
    must equal the single-controller reference exactly) and
    ``sim_seconds`` pins the reconvergence time after the last scheduled
    event.
    """
    from repro.experiments.ctlscale import run_ctlscale_churn
    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec("bench-ring-16-c2-churn", "ring",
                        {"num_switches": 16}, controllers=2)

    def run():
        result = run_ctlscale_churn(spec)
        if not result.healthy:
            raise RuntimeError(
                "churn benchmark run unhealthy: "
                + "; ".join(result.invariant_violations
                            + result.ownership_violations
                            + result.orphaned_route_mods)
                or "flow loss or missed settle")
        return result

    wall, result = _best_of(run, repeats=2)
    return {"wall_seconds": wall,
            "sim_seconds": result.reconvergence_seconds,
            "switches": result.num_switches, "links": result.num_links,
            "flows": result.final_flows}


def bench_interdomain_3as() -> Dict[str, Any]:
    """Interdomain convergence: 3 ASes of 4-router rings under eBGP/iBGP.

    Exercises the whole interdomain machinery — eBGP/iBGP establishment,
    OSPF↔BGP redistribution, recursive next-hop resolution — end to end.
    ``sim_seconds`` (time to full interdomain reachability) and ``flows``
    (the steady-state flow count, which the redistribution must reproduce
    exactly) are deterministic and gated exactly.
    """
    from repro.experiments.interdomain import run_interdomain

    def run():
        return run_interdomain("interdomain-3as", flap=False)

    wall, result = _best_of(run, repeats=2)
    return {"wall_seconds": wall, "sim_seconds": result.configured_seconds,
            "switches": result.num_switches, "links": result.num_links,
            "flows": result.steady_flows}


def bench_interdomain_convergence_50as() -> Dict[str, Any]:
    """Interdomain at scale: a 50-AS seeded scale-free graph converges.

    The preferential-attachment AS graph (transit cores, mid-tier
    providers, stub edges under Gao-Rexford policies) is generated from a
    fixed seed, so the topology — and with it ``sim_seconds`` and
    ``flows`` — is deterministic and gated exactly.  Wall time gates the
    incremental BGP hot path: best-path re-evaluation, delta-based
    Adj-RIB-Out batching and the indexed OpenFlow flow tables.
    """
    from repro.experiments.interdomain import run_interdomain

    def run():
        return run_interdomain("interdomain-50as", flap=False)

    wall, result = _best_of(run, repeats=2)
    return {"wall_seconds": wall, "sim_seconds": result.configured_seconds,
            "switches": result.num_switches, "links": result.num_links,
            "flows": result.steady_flows}


def bench_interdomain_churn_100as() -> Dict[str, Any]:
    """Border-link churn on a 100-AS scale-free graph.

    After convergence the highest-degree border link flaps (down 90 s,
    then restored).  The run must verify end to end — both eBGP sessions
    drop, withdrawals reach the switches, the sessions re-establish and
    the exact steady-state flow count returns — or the benchmark raises.
    ``withdrawn_flow_mods`` doubles as the delta-re-advertisement gate: a
    regression to full-table re-announcement changes it immediately.
    """
    from repro.experiments.interdomain import run_interdomain

    def run():
        result = run_interdomain("interdomain-100as", flap=True)
        if not (result.settled and result.flap is not None
                and result.flap.verified):
            raise RuntimeError(
                f"churn benchmark run unhealthy: {result.flap!r}")
        return result

    wall, result = _best_of(run, repeats=2)
    return {"wall_seconds": wall, "sim_seconds": result.configured_seconds,
            "switches": result.num_switches, "links": result.num_links,
            "flows": result.steady_flows,
            "withdrawn_flow_mods": result.flap.withdrawn_flow_mods}


def _torus_fluid_fixture(rows: int = 16, cols: int = 16):
    """A 256-router torus with synthetic RouteFlow-shaped flow tables.

    Returns ``(sim, network, routes, engine, addresses)`` ready for
    demand registration — the shared setup of the fluid-path benchmarks.
    """
    from repro.sim import Simulator
    from repro.topology.emulator import EmulatedNetwork
    from repro.topology.generators import torus_topology
    from repro.traffic import FluidEngine, SyntheticRoutes, service_address

    sim = Simulator()
    network = EmulatedNetwork(sim, torus_topology(rows, cols))
    routes = SyntheticRoutes(network)
    routes.install()
    addresses = {dpid: service_address(dpid) for dpid in network.switches}
    owners = {int(address): dpid for dpid, address in addresses.items()}
    engine = FluidEngine(sim, network, owner_of=owners.get)
    engine.attach()
    return sim, network, routes, engine, addresses


def bench_demand_resolution_1m() -> Dict[str, Any]:
    """Resolve one million concurrent demands on a 256-router torus.

    The timed region registers 1M pre-generated uniform demands and runs
    one full resolution + max-min allocation pass.  The memoized resolver
    collapses the million demands into one table walk per (source,
    destination) commodity, so this gates the fast path's headline claim:
    million-user traffic at flow-table fidelity without a packet pipeline.
    ``demands``/``commodities``/``delivered`` are deterministic and gated
    exactly.
    """
    from repro.traffic import uniform_demands

    _sim, network, _routes, engine, addresses = _torus_fluid_fixture()
    demands = uniform_demands(addresses, 1_000_000, rate_bps=1_000.0, seed=7)

    def run():
        engine.register(demands, schedule=False)
        engine.reallocate()
        return engine.stats()

    wall, stats = _best_of(run, repeats=1)
    return {"wall_seconds": wall,
            "demands": int(stats["demands"]),
            "commodities": int(stats["commodities"]),
            "delivered": int(stats["delivered_commodities"]),
            "switches": len(network.switches)}


def bench_churn_under_load() -> Dict[str, Any]:
    """Route churn under 200k live demands: fail a link, reroute, restore.

    The timed region takes a torus link down, applies the resulting
    shortest-path diff as strict deletes + adds (the OFPFC_DELETE churn a
    reconvergence causes), reallocates, then restores and repeats — the
    fluid engine must re-resolve only the commodities whose paths crossed
    the changed switches.  ``affected`` (demands inside re-resolved
    commodities) is deterministic and gated exactly: it measures that
    churn cost scales with the affected demands, not the total.
    """
    from repro.traffic import uniform_demands

    sim, network, routes, engine, addresses = _torus_fluid_fixture()
    demands = uniform_demands(addresses, 200_000, rate_bps=1_000.0, seed=11)
    engine.register(demands, schedule=False)
    engine.reallocate()
    link_a, link_b = 1, 2

    def run():
        affected_before = engine.affected_demands
        network.fail_link(link_a, link_b)
        routes.reroute()
        engine.reallocate()
        network.restore_link(link_a, link_b)
        routes.reroute()
        engine.reallocate()
        return engine.affected_demands - affected_before

    # Each cycle restores the original tables (with bumped versions), so
    # repeats do identical work and best-of squeezes allocator/GC noise.
    wall, affected = _best_of(run, repeats=3)
    return {"wall_seconds": wall,
            "demands": int(engine.stats()["demands"]),
            "affected": int(affected),
            "switches": len(network.switches)}


def bench_te_reroute_torus64() -> Dict[str, Any]:
    """Greedy TE on the 8x8 torus scenario while the 5<->6 link flaps.

    The timed region runs the full measure -> decide -> actuate loop of
    ``repro te`` in synthetic-engine mode: utilization snapshots every
    interval, Yen candidate paths, flow-table steers at one priority
    level up, plus the mid-run link failure that invalidates the path
    cache and prunes dead steers.  ``reroutes``/``steers`` are
    deterministic and gated exactly — a drift means the policy or the
    re-route lifecycle changed behaviour, not just speed.
    """
    from dataclasses import replace as dc_replace

    from repro.experiments.te import DEFAULT_SETTLE, _run_policy_synthetic
    from repro.scenarios import get

    spec = get("te-torus-8x8")
    te_spec = dc_replace(spec.te, engine="synthetic")

    def run():
        result = _run_policy_synthetic(spec, te_spec, "greedy",
                                       spec.demands, DEFAULT_SETTLE, 30.0)
        if not result.delivered:
            raise RuntimeError("TE reroute benchmark run unhealthy")
        return result

    wall, result = _best_of(run, repeats=2)
    return {"wall_seconds": wall,
            "demands": result.demands,
            "delivered": result.delivered_commodities,
            "reroutes": result.reroutes,
            "steers": result.steers}


def bench_te_policy_sweep_1m() -> Dict[str, Any]:
    """Greedy + bandit TE over one million demands on a 256-router torus.

    Each policy gets a fresh fixture with one link scaled to 1% capacity,
    registers 1M uniform demands and runs three measurement intervals —
    every tick reallocates the fluid engine, snapshots 512 links and
    steers aggregates through the flow-table actuator, so this gates the
    cost of the TE loop *at scale*: decision time must track the hot
    aggregates, not the million demands.  ``reroutes``/``steers`` (summed
    over the two policies) are deterministic and gated exactly.
    """
    from repro.te import FlowTableActuator, TEController, TESpec, make_policy
    from repro.traffic import uniform_demands

    def run():
        totals = {"reroutes": 0, "steers": 0}
        stats = {}
        for policy_name in ("greedy", "bandit"):
            sim, network, routes, engine, addresses = _torus_fluid_fixture()
            owners = {int(address): dpid
                      for dpid, address in addresses.items()}
            port_a, _port_b = network.ports_for_link(1, 2)
            link = network.switches[1].port(port_a).interface.link
            link.bandwidth_bps *= 0.01
            te_spec = TESpec(policy=policy_name, engine="synthetic",
                             interval=5.0, threshold=0.3,
                             max_steers_per_tick=16, k_paths=4)
            controller = TEController(sim, network, FlowTableActuator(routes),
                                      spec=te_spec,
                                      policy=make_policy(te_spec),
                                      engine=engine, owner_of=owners.get)
            demands = uniform_demands(addresses, 1_000_000, rate_bps=1_000.0,
                                      seed=7)
            controller.start()
            engine.register(demands, schedule=False)
            engine.reallocate()
            sim.run(until=sim.now + 16.0)
            controller.stop()
            te_stats = controller.stats()
            totals["reroutes"] += int(te_stats["reroutes"])
            totals["steers"] += int(te_stats["steers"])
            stats = engine.stats()
        return totals, stats

    wall, (totals, stats) = _best_of(run, repeats=1)
    return {"wall_seconds": wall,
            "demands": int(stats["demands"]),
            "commodities": int(stats["commodities"]),
            "reroutes": totals["reroutes"],
            "steers": totals["steers"]}


#: name -> (callable, included in --quick runs)
BENCHMARKS: Dict[str, Tuple[Callable[[], Dict[str, Any]], bool]] = {
    "kernel_event_churn": (bench_kernel_event_churn, True),
    "kernel_cancel_peek": (bench_kernel_cancel_peek, True),
    "spf_cold_64": (bench_spf_cold_64, True),
    "spf_warm_64": (bench_spf_warm_64, True),
    "frame_decode": (bench_frame_decode, True),
    "flow_mod_codec": (bench_flow_mod_codec, True),
    "convergence_64": (bench_convergence_64, False),
    "sharded_convergence_16": (bench_sharded_convergence_16, False),
    "sharded_churn_16": (bench_sharded_churn_16, False),
    "interdomain_convergence_3as": (bench_interdomain_3as, False),
    "interdomain_convergence_50as": (bench_interdomain_convergence_50as, False),
    "interdomain_churn_100as": (bench_interdomain_churn_100as, False),
    "demand_resolution_1m": (bench_demand_resolution_1m, False),
    "churn_under_load": (bench_churn_under_load, False),
    "te_reroute_torus64": (bench_te_reroute_torus64, False),
    "te_policy_sweep_1m": (bench_te_policy_sweep_1m, False),
}

#: Keys whose values must match the baseline *exactly* (determinism gate).
EXACT_KEYS = ("sim_seconds", "routes", "events", "switches", "links", "flows",
              "demands", "commodities", "delivered", "affected",
              "withdrawn_flow_mods", "reroutes", "steers")


def run_benchmarks(quick: bool = False,
                   progress: Optional[Callable[[str], None]] = None,
                   name_filter: Optional[str] = None) -> Dict[str, Any]:
    """Run the suite and return the result document.

    Every benchmark is bracketed by its own calibration measurements and
    normalized against their mean — CPU throttling mid-suite (common on CI
    runners) would otherwise skew a single up-front calibration.
    ``name_filter`` is a shell-style glob restricting which cases run.
    """
    from fnmatch import fnmatchcase

    results: Dict[str, Dict[str, Any]] = {}
    calibrations: List[float] = [calibrate()]
    for name, (function, in_quick) in BENCHMARKS.items():
        if quick and not in_quick:
            continue
        if name_filter is not None and not fnmatchcase(name, name_filter):
            continue
        if progress is not None:
            progress(name)
        entry = function()
        calibrations.append(calibrate())
        local_unit = (calibrations[-2] + calibrations[-1]) / 2.0
        entry["normalized"] = entry["wall_seconds"] / local_unit
        results[name] = entry
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "calibration_seconds": sum(calibrations) / len(calibrations),
        "benchmarks": results,
    }


def write_bench_json(document: Dict[str, Any], path: Union[str, Path]) -> Path:
    target = Path(path)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


def read_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


def check_regressions(current: Dict[str, Any], baseline: Dict[str, Any],
                      tolerance: float = 0.20,
                      only: Optional[Iterable[str]] = None) -> List[str]:
    """Compare two bench documents; return a list of failure descriptions.

    Normalized times may regress by at most ``tolerance`` (fractional).
    Deterministic outputs (:data:`EXACT_KEYS`) must match exactly.
    A benchmark in the baseline that was not measured fails the check,
    unless ``only`` names the subset deliberately run (``--quick``).
    """
    failures: List[str] = []
    base_benches = baseline.get("benchmarks", {})
    if only is not None:
        wanted = set(only)
        base_benches = {name: entry for name, entry in base_benches.items()
                        if name in wanted}
    cur_benches = current.get("benchmarks", {})
    for name, base in base_benches.items():
        entry = cur_benches.get(name)
        if entry is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        allowed = base["normalized"] * (1.0 + tolerance)
        if entry["normalized"] > allowed:
            failures.append(
                f"{name}: normalized time {entry['normalized']:.3f} exceeds "
                f"baseline {base['normalized']:.3f} by more than "
                f"{tolerance:.0%} (limit {allowed:.3f})")
        for key in EXACT_KEYS:
            if key in base and entry.get(key) != base[key]:
                failures.append(
                    f"{name}: deterministic output {key!r} changed "
                    f"({base[key]!r} -> {entry.get(key)!r})")
    return failures


def render_bench_table(document: Dict[str, Any]) -> str:
    """Human-readable summary of a bench document."""
    from repro.experiments.results import format_table

    rows = []
    for name, entry in document["benchmarks"].items():
        extra = ", ".join(f"{k}={entry[k]}" for k in EXACT_KEYS if k in entry)
        rows.append([name, f"{entry['wall_seconds']:.3f}",
                     f"{entry['normalized']:.2f}", extra])
    table = format_table(["benchmark", "wall (s)", "normalized", "outputs"], rows)
    return (f"{table}\n\ncalibration: "
            f"{document['calibration_seconds']:.3f}s per unit")
