"""Experiment harness reproducing the paper's figures and demo."""

from repro.experiments.ablation import (
    render_ablation_table,
    run_controller_split_ablation,
    run_ospf_timer_ablation,
    run_vm_latency_ablation,
)
from repro.experiments.config_time import (
    DEFAULT_RING_SIZES,
    render_config_time_table,
    run_config_time_sweep,
    run_single_configuration,
)
from repro.experiments.bench import (
    check_regressions,
    read_bench_json,
    render_bench_table,
    run_benchmarks,
    write_bench_json,
)
from repro.experiments.demo import render_demo_report, run_demo
from repro.experiments.export import (
    read_sweep_csv,
    read_sweep_json,
    write_ablation_csv,
    write_config_time_csv,
    write_config_time_json,
    write_demo_json,
    write_failover_csv,
    write_failover_json,
    write_markdown_report,
    write_sweep_csv,
    write_sweep_json,
)
from repro.experiments.failover import (
    FailoverEventResult,
    FailoverResult,
    render_failover_table,
    run_failover,
    run_failover_suite,
    verify_spf_rib_consistency,
)
from repro.experiments.sweep import (
    SweepResult,
    expand_seeds,
    render_sweep_table,
    run_scenario,
    run_sweep,
)
from repro.experiments.results import (
    AblationResult,
    ConfigTimeResult,
    DemoResult,
    format_seconds,
    format_table,
)

__all__ = [
    "AblationResult",
    "ConfigTimeResult",
    "DEFAULT_RING_SIZES",
    "DemoResult",
    "FailoverEventResult",
    "FailoverResult",
    "format_seconds",
    "format_table",
    "SweepResult",
    "check_regressions",
    "expand_seeds",
    "render_failover_table",
    "run_failover",
    "run_failover_suite",
    "verify_spf_rib_consistency",
    "read_bench_json",
    "render_bench_table",
    "run_benchmarks",
    "write_bench_json",
    "read_sweep_csv",
    "read_sweep_json",
    "render_ablation_table",
    "render_config_time_table",
    "render_demo_report",
    "render_sweep_table",
    "run_config_time_sweep",
    "run_controller_split_ablation",
    "run_demo",
    "run_ospf_timer_ablation",
    "run_scenario",
    "run_single_configuration",
    "run_sweep",
    "run_vm_latency_ablation",
    "write_ablation_csv",
    "write_config_time_csv",
    "write_config_time_json",
    "write_demo_json",
    "write_failover_csv",
    "write_failover_json",
    "write_markdown_report",
    "write_sweep_csv",
    "write_sweep_json",
]
