"""FlowVisor flowspace: which traffic belongs to which slice.

A :class:`FlowSpace` is an ordered list of rules.  Each rule pairs an
OpenFlow :class:`~repro.openflow.match.Match` with the slice that owns the
matching traffic and the permissions that slice holds over it (read =
receive PACKET_IN, write = install flow-mods / send packet-outs).

The paper's deployment needs exactly two slices:

* the *topology controller* slice owns LLDP traffic (read/write) so the
  discovery module can probe the network, and
* the *RF-controller* slice owns everything else (IPv4, ARP, OSPF) so
  RouteFlow can steer both the virtual-machine control traffic and the
  user data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.ethernet import EtherType
from repro.openflow.match import Match, PacketFields


class Permission:
    """Permission bits of a flowspace rule."""

    READ = 0x1
    WRITE = 0x2
    READ_WRITE = READ | WRITE


@dataclass
class FlowSpaceRule:
    """One flowspace entry: a match, the owning slice and its permissions."""

    match: Match
    slice_name: str
    permissions: int = Permission.READ_WRITE
    priority: int = 100

    def allows_read(self) -> bool:
        return bool(self.permissions & Permission.READ)

    def allows_write(self) -> bool:
        return bool(self.permissions & Permission.WRITE)


class FlowSpace:
    """The ordered rule set consulted by the FlowVisor proxy."""

    def __init__(self) -> None:
        self._rules: List[FlowSpaceRule] = []

    def add_rule(self, rule: FlowSpaceRule) -> None:
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.priority, reverse=True)

    def add(self, match: Match, slice_name: str,
            permissions: int = Permission.READ_WRITE, priority: int = 100) -> FlowSpaceRule:
        rule = FlowSpaceRule(match=match, slice_name=slice_name,
                             permissions=permissions, priority=priority)
        self.add_rule(rule)
        return rule

    @property
    def rules(self) -> List[FlowSpaceRule]:
        return list(self._rules)

    # ------------------------------------------------------------ evaluation
    def slices_for_packet(self, fields: PacketFields) -> List[str]:
        """All slices entitled to *read* a packet with these fields.

        FlowVisor delivers a PACKET_IN to every slice whose highest-priority
        matching rule grants read access; we return them in priority order
        without duplicates.
        """
        result: List[str] = []
        seen: Set[str] = set()
        for rule in self._rules:
            if rule.slice_name in seen:
                continue
            if rule.match.matches(fields) and rule.allows_read():
                result.append(rule.slice_name)
                seen.add(rule.slice_name)
        return result

    def may_write(self, slice_name: str, match: Match) -> bool:
        """May a slice install forwarding state for the given match?

        The slice must hold *write* permission on a rule that intersects the
        requested match.  We approximate intersection with a containment
        test in either direction, which is exact for the disjoint
        ethertype-based slicing used in the reproduction.
        """
        for rule in self._rules:
            if rule.slice_name != slice_name or not rule.allows_write():
                continue
            if rule.match.covers(match) or match.covers(rule.match):
                return True
        return False

    def __len__(self) -> int:
        return len(self._rules)


def build_sharded_flowspace(topology_slice: str,
                            routeflow_slices: List[str]) -> FlowSpace:
    """The flowspace for a sharded RouteFlow deployment.

    LLDP still belongs to the topology controller; every routeflow shard
    slice holds read/write on everything else.  The per-slice *datapath*
    restriction lives on the FlowVisor slice registration
    (:meth:`~repro.flowvisor.proxy.FlowVisor.add_slice`), not in the
    flowspace — matches on packet fields cannot see the dpid.
    """
    flowspace = FlowSpace()
    lldp = Match.wildcard_all().set_dl_type(EtherType.LLDP)
    flowspace.add(lldp, topology_slice, Permission.READ_WRITE, priority=200)
    everything = Match.wildcard_all()
    for slice_name in routeflow_slices:
        flowspace.add(everything, slice_name, Permission.READ_WRITE,
                      priority=100)
    return flowspace


def build_paper_flowspace(topology_slice: str, routeflow_slice: str) -> FlowSpace:
    """The two-slice flowspace used by the paper's framework.

    LLDP goes to the topology controller; every other ethertype belongs to
    the RF-controller.
    """
    flowspace = FlowSpace()
    lldp = Match.wildcard_all().set_dl_type(EtherType.LLDP)
    flowspace.add(lldp, topology_slice, Permission.READ_WRITE, priority=200)
    everything = Match.wildcard_all()
    flowspace.add(everything, routeflow_slice, Permission.READ_WRITE, priority=100)
    return flowspace
