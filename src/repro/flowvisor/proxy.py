"""The FlowVisor slicing proxy.

FlowVisor terminates each switch's OpenFlow connection itself (performing
the handshake and caching the FEATURES_REPLY) and exposes one *virtual*
switch connection per slice to each slice's controller.  Messages are
decoded, checked against the flowspace and re-encoded on the way through,
so both halves of the proxy exercise the real OpenFlow codec:

* switch → controllers: PACKET_IN is delivered only to slices whose
  flowspace grants read access to the packet; PORT_STATUS and FLOW_REMOVED
  are delivered to every slice; ECHO is answered locally.
* controller → switch: FLOW_MOD and PACKET_OUT are permitted only when the
  slice has write access; FEATURES_REQUEST is answered from the cached
  reply; BARRIER is forwarded with xid translation so replies find their
  way back to the requesting slice.
"""

from __future__ import annotations

import logging
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.packet import DecodeError
from repro.openflow.channel import ControlChannel
from repro.openflow.constants import (
    OFP_VERSION,
    OFPBadRequestCode,
    OFPErrorType,
    OFPType,
)
from repro.openflow.match import MATCH_LEN, Match, PacketFields
from repro.openflow.messages import (
    OFP_HEADER_LEN,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowRemoved,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PortStatus,
)
from repro.flowvisor.flowspace import FlowSpace
from repro.sim import Simulator

LOG = logging.getLogger(__name__)


@dataclass
class Slice:
    """A controller slice registered with FlowVisor."""

    name: str
    controller: object  # repro.controller.base.Controller (duck-typed endpoint)
    #: Optional datapath filter: a set of dpids or a ``dpid -> bool``
    #: predicate.  None exposes every switch to the slice (the classic
    #: two-slice deployment); sharded RouteFlow deployments register one
    #: slice per controller shard, each restricted to its partition.
    datapaths: object = None

    def covers(self, datapath_id: int) -> bool:
        if self.datapaths is None:
            return True
        if callable(self.datapaths):
            return bool(self.datapaths(datapath_id))
        return datapath_id in self.datapaths


class _SwitchSession:
    """FlowVisor's state for one connected switch."""

    def __init__(self, channel: ControlChannel) -> None:
        self.channel = channel
        self.datapath_id: Optional[int] = None
        self.features: Optional[FeaturesReply] = None
        self.handshake_complete = False
        #: slice name -> channel towards that slice's controller
        self.slice_channels: Dict[str, ControlChannel] = {}
        #: xid translation for request/reply pairs: proxy_xid -> (slice, original_xid)
        self.pending_replies: Dict[int, Tuple[str, int]] = {}
        self.next_proxy_xid = 1


class FlowVisor:
    """The slicing proxy between switches and per-slice controllers."""

    #: Per-message processing latency of the proxy.
    PROCESSING_DELAY = 0.0005
    #: Latency of the proxy-to-controller channels it creates.
    SLICE_CHANNEL_LATENCY = 0.002

    def __init__(self, sim: Simulator, flowspace: FlowSpace, name: str = "flowvisor") -> None:
        self.sim = sim
        self.name = name
        self._route_label = f"{self.name}:route"
        self.flowspace = flowspace
        self.slices: Dict[str, Slice] = {}
        self._switch_sessions: Dict[ControlChannel, _SwitchSession] = {}
        self._slice_channel_index: Dict[ControlChannel, Tuple[_SwitchSession, str]] = {}
        # Counters
        self.packet_ins_routed = 0
        self.packet_ins_dropped = 0
        self.flow_mods_forwarded = 0
        self.flow_mods_denied = 0

    # ------------------------------------------------------------------ slices
    def add_slice(self, name: str, controller: object,
                  datapaths: object = None) -> Slice:
        """Register a slice.  Must be done before switches connect.

        ``datapaths`` optionally restricts the slice to a subset of the
        switches (a set of dpids or a predicate); switches outside the
        subset are never exposed to the slice's controller.
        """
        if name in self.slices:
            raise ValueError(f"slice {name} already exists")
        new_slice = Slice(name=name, controller=controller, datapaths=datapaths)
        self.slices[name] = new_slice
        return new_slice

    # ---------------------------------------------------------------- switches
    def accept_switch_channel(self, channel: ControlChannel) -> None:
        """Attach a switch-facing channel; FlowVisor plays the controller role."""
        session = _SwitchSession(channel)
        self._switch_sessions[channel] = session
        self._send_to_switch(session, Hello())
        self._send_to_switch(session, FeaturesRequest(xid=self._take_proxy_xid(session)))

    # ------------------------------------------------------------ channel glue
    def channel_receive(self, channel: ControlChannel, data: bytes) -> None:
        self.sim.schedule(self.PROCESSING_DELAY, self._route, channel, data,
                          label=self._route_label)

    def channel_closed(self, channel: ControlChannel) -> None:
        session = self._switch_sessions.pop(channel, None)
        if session is not None:
            for slice_channel in session.slice_channels.values():
                slice_channel.close()
            return
        entry = self._slice_channel_index.pop(channel, None)
        if entry is not None:
            session, slice_name = entry
            session.slice_channels.pop(slice_name, None)

    def _route(self, channel: ControlChannel, data: bytes) -> None:
        if channel in self._switch_sessions:
            self._from_switch(self._switch_sessions[channel], data)
        elif channel in self._slice_channel_index:
            session, slice_name = self._slice_channel_index[channel]
            self._from_controller(session, slice_name, data)
        else:
            LOG.warning("%s: message on unknown channel", self.name)

    # -------------------------------------------------------- switch -> slices
    def _from_switch(self, session: _SwitchSession, data: bytes) -> None:
        try:
            message = OpenFlowMessage.decode(data)
        except DecodeError as exc:
            LOG.warning("%s: undecodable message from switch: %s", self.name, exc)
            return
        if isinstance(message, Hello):
            return
        if isinstance(message, EchoRequest):
            self._send_to_switch(session, EchoReply(data=message.data, xid=message.xid))
            return
        if isinstance(message, FeaturesReply):
            self._complete_switch_handshake(session, message)
            return
        if isinstance(message, PacketIn):
            self._route_packet_in(session, message, data)
            return
        if isinstance(message, (PortStatus, FlowRemoved, ErrorMessage)):
            self._maybe_route_reply(session, message) or self._broadcast(session, data)
            return
        if isinstance(message, BarrierReply):
            self._maybe_route_reply(session, message)
            return
        # Stats replies and anything else follow the xid-translation path.
        self._maybe_route_reply(session, message)

    def _complete_switch_handshake(self, session: _SwitchSession,
                                   features: FeaturesReply) -> None:
        session.datapath_id = features.datapath_id
        session.features = features
        session.handshake_complete = True
        LOG.info("%s: switch %#x connected; exposing it to %d slice(s)",
                 self.name, features.datapath_id, len(self.slices))
        for slice_name, registered in self.slices.items():
            if not registered.covers(features.datapath_id):
                continue
            self._open_slice_channel(session, slice_name, registered)

    def _open_slice_channel(self, session: _SwitchSession, slice_name: str,
                            registered: Slice) -> ControlChannel:
        slice_channel = ControlChannel(
            self.sim, latency=self.SLICE_CHANNEL_LATENCY,
            name=f"{self.name}:{slice_name}:dpid{session.datapath_id:x}")
        slice_channel.connect(self, registered.controller)
        session.slice_channels[slice_name] = slice_channel
        self._slice_channel_index[slice_channel] = (session, slice_name)
        registered.controller.accept_channel(slice_channel)
        return slice_channel

    def rehome_datapath(self, datapath_id: int) -> int:
        """Re-evaluate which slices cover a connected switch.

        Called by the sharded control plane after a dpid changes owner
        (takeover or resharding): slices that now cover the switch get a
        fresh channel — completing the same handshake as at connect time,
        with the FEATURES_REPLY answered from FlowVisor's cache — and
        slices that no longer cover it lose theirs.  The switch itself
        notices nothing; its flow table is untouched.  Returns the number
        of slice channels opened or closed.
        """
        changed = 0
        for session in list(self._switch_sessions.values()):
            if (session.datapath_id != datapath_id
                    or not session.handshake_complete):
                continue
            for slice_name, registered in self.slices.items():
                attached = slice_name in session.slice_channels
                covered = registered.covers(datapath_id)
                if covered and not attached:
                    self._open_slice_channel(session, slice_name, registered)
                    changed += 1
                elif attached and not covered:
                    session.slice_channels.pop(slice_name).close()
                    changed += 1
        return changed

    def _route_packet_in(self, session: _SwitchSession, message: PacketIn,
                         data: bytes) -> None:
        # The packet-in is forwarded untranslated (xid untouched), so the
        # original wire bytes go out instead of re-encoding the message.
        fields = PacketFields.from_frame(message.data, in_port=message.in_port)
        slice_names = self.flowspace.slices_for_packet(fields)
        if not slice_names:
            self.packet_ins_dropped += 1
            return
        for slice_name in slice_names:
            channel = session.slice_channels.get(slice_name)
            if channel is None:
                continue
            self.packet_ins_routed += 1
            channel.send(self, data)

    def _broadcast(self, session: _SwitchSession, data: bytes) -> bool:
        """Forward an (unmodified) switch message to every slice."""
        for channel in session.slice_channels.values():
            channel.send(self, data)
        return True

    def _maybe_route_reply(self, session: _SwitchSession,
                           message: OpenFlowMessage) -> bool:
        """Route a reply back to the slice whose request carried this xid."""
        entry = session.pending_replies.pop(message.xid, None)
        if entry is None:
            return False
        slice_name, original_xid = entry
        channel = session.slice_channels.get(slice_name)
        if channel is None:
            return True
        message.xid = original_xid
        channel.send(self, message.encode())
        return True

    # ----------------------------------------------------- controller -> switch
    def _from_controller(self, session: _SwitchSession, slice_name: str,
                         data: bytes) -> None:
        # Hot-path dispatch on the header type byte: flow-mods and
        # packet-outs — the bulk of controller traffic — are forwarded from
        # the original wire bytes (xid untouched) instead of being decoded
        # and re-encoded just to pass through.
        if len(data) >= OFP_HEADER_LEN and data[0] == OFP_VERSION:
            msg_type = data[1]
            if msg_type == OFPType.FLOW_MOD:
                self._forward_flow_mod(session, slice_name, data)
                return
            if msg_type == OFPType.PACKET_OUT:
                self._forward_packet_out(session, slice_name, data)
                return
        try:
            message = OpenFlowMessage.decode(data)
        except DecodeError as exc:
            LOG.warning("%s: undecodable message from slice %s: %s",
                        self.name, slice_name, exc)
            return
        if isinstance(message, Hello):
            return
        if isinstance(message, EchoRequest):
            self._reply_to_slice(session, slice_name,
                                 EchoReply(data=message.data, xid=message.xid))
            return
        if isinstance(message, FeaturesRequest):
            self._answer_features(session, slice_name, message)
            return
        if isinstance(message, (BarrierRequest,)) or message.msg_type == OFPType.STATS_REQUEST:
            self._forward_with_xid_translation(session, slice_name, message)
            return
        # Other controller->switch messages pass through unmodified.
        self._send_to_switch_raw(session, message.encode())

    def _answer_features(self, session: _SwitchSession, slice_name: str,
                         request: FeaturesRequest) -> None:
        if session.features is None:
            return
        reply = FeaturesReply(
            datapath_id=session.features.datapath_id,
            ports=session.features.ports,
            n_buffers=session.features.n_buffers,
            n_tables=session.features.n_tables,
            capabilities=session.features.capabilities,
            actions_bitmap=session.features.actions_bitmap,
            xid=request.xid,
        )
        self._reply_to_slice(session, slice_name, reply)

    def _forward_flow_mod(self, session: _SwitchSession, slice_name: str,
                          data: bytes) -> None:
        # Only the match is needed for the flowspace write check; the rest
        # of the flow-mod travels through as the original bytes.
        try:
            match = Match.decode(data[OFP_HEADER_LEN:OFP_HEADER_LEN + MATCH_LEN])
        except DecodeError as exc:
            LOG.warning("%s: undecodable flow-mod from slice %s: %s",
                        self.name, slice_name, exc)
            return
        if not self.flowspace.may_write(slice_name, match):
            self.flow_mods_denied += 1
            xid = struct.unpack_from("!I", data, 4)[0]
            error = ErrorMessage(OFPErrorType.BAD_REQUEST,
                                 OFPBadRequestCode.PERM_ERROR, xid=xid)
            self._reply_to_slice(session, slice_name, error)
            return
        self.flow_mods_forwarded += 1
        self._send_to_switch_raw(session, data)

    def _forward_packet_out(self, session: _SwitchSession, slice_name: str,
                            data: bytes) -> None:
        # Packet-outs are always permitted for slices holding any write rule;
        # the paper's two slices both inject packets (LLDP probes and routed
        # data respectively).
        self._send_to_switch_raw(session, data)

    def _forward_with_xid_translation(self, session: _SwitchSession, slice_name: str,
                                      message: OpenFlowMessage) -> None:
        proxy_xid = self._take_proxy_xid(session)
        session.pending_replies[proxy_xid] = (slice_name, message.xid)
        message.xid = proxy_xid
        self._send_to_switch_raw(session, message.encode())

    # ------------------------------------------------------------------ sends
    def _take_proxy_xid(self, session: _SwitchSession) -> int:
        xid = session.next_proxy_xid
        session.next_proxy_xid += 1
        return xid

    def _send_to_switch(self, session: _SwitchSession, message: OpenFlowMessage) -> None:
        session.channel.send(self, message.encode())

    def _send_to_switch_raw(self, session: _SwitchSession, data: bytes) -> None:
        session.channel.send(self, data)

    def _reply_to_slice(self, session: _SwitchSession, slice_name: str,
                        message: OpenFlowMessage) -> None:
        channel = session.slice_channels.get(slice_name)
        if channel is not None:
            channel.send(self, message.encode())

    # ------------------------------------------------------------------- info
    @property
    def connected_switches(self) -> List[int]:
        return sorted(s.datapath_id for s in self._switch_sessions.values()
                      if s.datapath_id is not None)

    def __repr__(self) -> str:
        return (f"<FlowVisor {self.name} slices={sorted(self.slices)} "
                f"switches={len(self._switch_sessions)}>")
