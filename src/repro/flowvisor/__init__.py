"""FlowVisor: the flowspace-based slicing proxy between switches and controllers."""

from repro.flowvisor.flowspace import (
    FlowSpace,
    FlowSpaceRule,
    Permission,
    build_paper_flowspace,
    build_sharded_flowspace,
)
from repro.flowvisor.proxy import FlowVisor, Slice

__all__ = [
    "FlowSpace",
    "FlowSpaceRule",
    "FlowVisor",
    "Permission",
    "Slice",
    "build_paper_flowspace",
    "build_sharded_flowspace",
]
