"""Topology descriptions, generators, the pan-European map and the emulator."""

from repro.topology.emulator import EmulatedNetwork, HostInfo
from repro.topology.generators import (
    dumbbell_topology,
    fat_tree_topology,
    full_mesh_topology,
    linear_topology,
    random_topology,
    ring_topology,
    star_topology,
    torus_topology,
    tree_topology,
    waxman_topology,
)
from repro.topology.graph import (
    HostAttachment,
    Topology,
    TopologyError,
    TopologyLink,
    TopologyNode,
)
from repro.topology.pan_european import (
    PAN_EUROPEAN_CITIES,
    PAN_EUROPEAN_LINKS,
    great_circle_km,
    link_delay_seconds,
    pan_european_topology,
)

__all__ = [
    "EmulatedNetwork",
    "HostAttachment",
    "HostInfo",
    "PAN_EUROPEAN_CITIES",
    "PAN_EUROPEAN_LINKS",
    "Topology",
    "TopologyError",
    "TopologyLink",
    "TopologyNode",
    "dumbbell_topology",
    "fat_tree_topology",
    "full_mesh_topology",
    "great_circle_km",
    "linear_topology",
    "link_delay_seconds",
    "pan_european_topology",
    "random_topology",
    "ring_topology",
    "star_topology",
    "torus_topology",
    "tree_topology",
    "waxman_topology",
]
