"""The 28-node pan-European reference topology.

The paper's demonstration emulates "a pan European topology [5] consisting
of 28 nodes" — the COST 266 / De Maesschalck et al. basic reference
topology of 28 European cities and 42 bidirectional links.  Link delays are
derived from the great-circle distance between the cities at the speed of
light in fibre, which is what an emulated testbed would configure.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.topology.graph import Topology

#: (city, latitude, longitude) — the 28 cities of the COST 266 basic topology.
PAN_EUROPEAN_CITIES: List[Tuple[str, float, float]] = [
    ("Amsterdam", 52.37, 4.90),
    ("Athens", 37.98, 23.73),
    ("Barcelona", 41.39, 2.17),
    ("Belgrade", 44.79, 20.45),
    ("Berlin", 52.52, 13.40),
    ("Birmingham", 52.48, -1.90),
    ("Bordeaux", 44.84, -0.58),
    ("Brussels", 50.85, 4.35),
    ("Budapest", 47.50, 19.04),
    ("Copenhagen", 55.68, 12.57),
    ("Dublin", 53.35, -6.26),
    ("Frankfurt", 50.11, 8.68),
    ("Glasgow", 55.86, -4.25),
    ("Hamburg", 53.55, 9.99),
    ("Krakow", 50.06, 19.94),
    ("London", 51.51, -0.13),
    ("Lyon", 45.76, 4.84),
    ("Madrid", 40.42, -3.70),
    ("Milan", 45.46, 9.19),
    ("Munich", 48.14, 11.58),
    ("Paris", 48.86, 2.35),
    ("Prague", 50.08, 14.44),
    ("Rome", 41.90, 12.50),
    ("Stockholm", 59.33, 18.07),
    ("Strasbourg", 48.57, 7.75),
    ("Vienna", 48.21, 16.37),
    ("Warsaw", 52.23, 21.01),
    ("Zurich", 47.37, 8.54),
]

#: The 42 links of the COST 266-style reference topology (city names).
PAN_EUROPEAN_LINKS: List[Tuple[str, str]] = [
    ("Amsterdam", "Brussels"),
    ("Amsterdam", "Hamburg"),
    ("Amsterdam", "London"),
    ("Athens", "Belgrade"),
    ("Athens", "Rome"),
    ("Barcelona", "Madrid"),
    ("Barcelona", "Lyon"),
    ("Belgrade", "Budapest"),
    ("Belgrade", "Rome"),
    ("Berlin", "Hamburg"),
    ("Berlin", "Prague"),
    ("Berlin", "Warsaw"),
    ("Berlin", "Munich"),
    ("Birmingham", "Glasgow"),
    ("Birmingham", "London"),
    ("Bordeaux", "Madrid"),
    ("Bordeaux", "Paris"),
    ("Bordeaux", "Lyon"),
    ("Brussels", "Frankfurt"),
    ("Brussels", "Paris"),
    ("Budapest", "Krakow"),
    ("Budapest", "Vienna"),
    ("Copenhagen", "Hamburg"),
    ("Copenhagen", "Stockholm"),
    ("Copenhagen", "Berlin"),
    ("Stockholm", "Warsaw"),
    ("Dublin", "Glasgow"),
    ("Dublin", "London"),
    ("Frankfurt", "Hamburg"),
    ("Frankfurt", "Munich"),
    ("Frankfurt", "Strasbourg"),
    ("Krakow", "Warsaw"),
    ("London", "Paris"),
    ("Lyon", "Paris"),
    ("Lyon", "Zurich"),
    ("Madrid", "Paris"),
    ("Milan", "Munich"),
    ("Milan", "Rome"),
    ("Milan", "Zurich"),
    ("Munich", "Vienna"),
    ("Prague", "Vienna"),
    ("Strasbourg", "Zurich"),
]

#: Propagation speed of light in fibre (m/s).
FIBRE_SPEED = 2.0e8
#: Fibre routes are longer than the great-circle distance; standard factor.
FIBRE_DETOUR_FACTOR = 1.3


def great_circle_km(lat_a: float, lon_a: float, lat_b: float, lon_b: float) -> float:
    """Great-circle distance between two coordinates in kilometres."""
    radius_km = 6371.0
    phi_a, phi_b = math.radians(lat_a), math.radians(lat_b)
    d_phi = math.radians(lat_b - lat_a)
    d_lambda = math.radians(lon_b - lon_a)
    a = (math.sin(d_phi / 2) ** 2
         + math.cos(phi_a) * math.cos(phi_b) * math.sin(d_lambda / 2) ** 2)
    return 2 * radius_km * math.asin(math.sqrt(a))


def link_delay_seconds(distance_km: float) -> float:
    """One-way propagation delay over a fibre of the given length."""
    return (distance_km * FIBRE_DETOUR_FACTOR * 1000.0) / FIBRE_SPEED


def pan_european_topology(bandwidth_bps: float = 1e9) -> Topology:
    """Build the 28-node pan-European topology used by the paper's demo."""
    topology = Topology("pan-european-28")
    index: Dict[str, int] = {}
    for node_id, (city, latitude, longitude) in enumerate(PAN_EUROPEAN_CITIES, start=1):
        topology.add_node(node_id, name=city, latitude=latitude, longitude=longitude)
        index[city] = node_id
    for city_a, city_b in PAN_EUROPEAN_LINKS:
        node_a, node_b = index[city_a], index[city_b]
        info_a = PAN_EUROPEAN_CITIES[node_a - 1]
        info_b = PAN_EUROPEAN_CITIES[node_b - 1]
        distance = great_circle_km(info_a[1], info_a[2], info_b[1], info_b[2])
        topology.add_link(node_a, node_b, delay=link_delay_seconds(distance),
                          bandwidth_bps=bandwidth_bps)
    return topology
