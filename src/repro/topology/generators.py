"""Synthetic topology generators.

The paper's Figure 3 experiments run on ring topologies of increasing size;
the other generators are provided so the scenario registry can sweep the
framework over datacenter- (fat-tree), ISP- (Waxman random geometric),
WAN- (torus/grid) and congestion-study- (dumbbell) shaped networks, plus
the simpler families (linear, star, tree, full mesh, random) used by the
wider test suite and the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.sim import SeededRandom
from repro.topology.graph import Topology, TopologyError
from repro.topology.pan_european import link_delay_seconds

#: First AS number handed out by the multi-AS generators (the start of the
#: RFC 6996 private-use range).
BASE_ASN = 64512


def as_map_from_topology(topology: Topology) -> Dict[int, int]:
    """Extract the node -> AS assignment of a multi-AS topology.

    Raises :class:`TopologyError` when the topology carries no (or only a
    partial) AS assignment — interdomain experiments need every switch to
    belong to exactly one AS.
    """
    as_map = {node.node_id: node.asn for node in topology.nodes if node.asn}
    if not as_map:
        raise TopologyError(
            f"topology {topology.name} carries no AS assignment; use a "
            f"multi-AS generator (multi_as_topology, transit_stub_topology)")
    missing = [node.node_id for node in topology.nodes if not node.asn]
    if missing:
        raise TopologyError(
            f"topology {topology.name}: nodes without an AS assignment: "
            + ", ".join(map(str, missing)))
    return as_map


def ring_topology(num_switches: int, delay: float = 0.001,
                  bandwidth_bps: float = 1e9) -> Topology:
    """The ring topologies used for the paper's configuration-time figure."""
    if num_switches < 3:
        raise TopologyError("a ring needs at least 3 switches")
    topology = Topology(f"ring-{num_switches}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    for node_id in range(1, num_switches + 1):
        neighbor = node_id % num_switches + 1
        topology.add_link(node_id, neighbor, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def linear_topology(num_switches: int, delay: float = 0.001,
                    bandwidth_bps: float = 1e9) -> Topology:
    """A chain of switches."""
    if num_switches < 2:
        raise TopologyError("a linear topology needs at least 2 switches")
    topology = Topology(f"linear-{num_switches}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    for node_id in range(1, num_switches):
        topology.add_link(node_id, node_id + 1, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def star_topology(num_leaves: int, delay: float = 0.001,
                  bandwidth_bps: float = 1e9) -> Topology:
    """One hub switch with ``num_leaves`` leaf switches."""
    if num_leaves < 1:
        raise TopologyError("a star needs at least one leaf")
    topology = Topology(f"star-{num_leaves}")
    hub = topology.add_node(1, name="hub")
    for leaf in range(2, num_leaves + 2):
        topology.add_node(leaf)
        topology.add_link(hub.node_id, leaf, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def tree_topology(depth: int, fanout: int, delay: float = 0.001,
                  bandwidth_bps: float = 1e9) -> Topology:
    """A complete tree of switches with the given depth and fanout."""
    if depth < 1 or fanout < 1:
        raise TopologyError("tree depth and fanout must be at least 1")
    topology = Topology(f"tree-d{depth}-f{fanout}")
    topology.add_node(1, name="root")
    next_id = 2
    frontier = [1]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                topology.add_node(next_id)
                topology.add_link(parent, next_id, delay=delay,
                                  bandwidth_bps=bandwidth_bps)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return topology


def full_mesh_topology(num_switches: int, delay: float = 0.001,
                       bandwidth_bps: float = 1e9) -> Topology:
    """Every switch connected to every other switch."""
    if num_switches < 2:
        raise TopologyError("a mesh needs at least 2 switches")
    topology = Topology(f"mesh-{num_switches}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    for node_a in range(1, num_switches + 1):
        for node_b in range(node_a + 1, num_switches + 1):
            topology.add_link(node_a, node_b, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def random_topology(num_switches: int, extra_link_probability: float = 0.15,
                    seed: int = 0, delay: float = 0.001,
                    bandwidth_bps: float = 1e9) -> Topology:
    """A connected random topology: a random spanning tree plus extra links."""
    if num_switches < 2:
        raise TopologyError("a random topology needs at least 2 switches")
    if not 0.0 <= extra_link_probability <= 1.0:
        raise TopologyError("extra_link_probability must be in [0, 1]")
    rng = SeededRandom(seed)
    topology = Topology(f"random-{num_switches}-seed{seed}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    # Random spanning tree guarantees connectivity.  Record every tree link
    # in ``existing`` as it is created so the extra-link pass below can never
    # draw a duplicate, regardless of the order the tree was built in.
    existing: Set[Tuple[int, int]] = set()
    connected = [1]
    for node_id in range(2, num_switches + 1):
        parent = rng.choice(connected)
        link = topology.add_link(parent, node_id, delay=delay,
                                 bandwidth_bps=bandwidth_bps)
        existing.add(link.canonical())
        connected.append(node_id)
    for node_a in range(1, num_switches + 1):
        for node_b in range(node_a + 1, num_switches + 1):
            if (node_a, node_b) in existing:
                continue
            if rng.random() < extra_link_probability:
                topology.add_link(node_a, node_b, delay=delay,
                                  bandwidth_bps=bandwidth_bps)
                existing.add((node_a, node_b))
    return topology


def fat_tree_topology(k: int = 4, delay: float = 0.001,
                      bandwidth_bps: float = 1e9) -> Topology:
    """A k-ary fat tree (the canonical datacenter fabric).

    ``(k/2)^2`` core switches connect ``k`` pods, each holding ``k/2``
    aggregation and ``k/2`` edge switches.  Core switch ``i`` uplinks to one
    aggregation switch per pod; within a pod every aggregation switch links
    to every edge switch.  For ``k=4`` that is 20 switches and 32 links.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError("fat-tree arity k must be an even number >= 2")
    half = k // 2
    topology = Topology(f"fat-tree-k{k}")
    core_ids = []
    for index in range(half * half):
        node = topology.add_node(index + 1, name=f"core{index + 1}")
        core_ids.append(node.node_id)
    next_id = half * half + 1
    for pod in range(k):
        agg_ids = []
        edge_ids = []
        for index in range(half):
            topology.add_node(next_id, name=f"agg{pod + 1}-{index + 1}")
            agg_ids.append(next_id)
            next_id += 1
        for index in range(half):
            topology.add_node(next_id, name=f"edge{pod + 1}-{index + 1}")
            edge_ids.append(next_id)
            next_id += 1
        for agg_index, agg in enumerate(agg_ids):
            # Aggregation switch j of every pod serves core switches
            # j*half .. j*half+half-1, so each core sees one uplink per pod.
            for core in core_ids[agg_index * half:(agg_index + 1) * half]:
                topology.add_link(core, agg, delay=delay,
                                  bandwidth_bps=bandwidth_bps)
            for edge in edge_ids:
                topology.add_link(agg, edge, delay=delay,
                                  bandwidth_bps=bandwidth_bps)
    return topology


def torus_topology(rows: int, cols: int, wrap: bool = True,
                   delay: float = 0.001, bandwidth_bps: float = 1e9) -> Topology:
    """A 2-D grid of switches, optionally wrapped into a torus.

    With ``wrap=True`` each row and column closes into a ring, giving every
    switch degree 4 (a dimension of size 2 is not wrapped — the wrap link
    would duplicate the grid link).  With ``wrap=False`` this is a plain
    mesh-of-rows grid.
    """
    if rows < 2 or cols < 2:
        raise TopologyError("a torus/grid needs at least 2 rows and 2 columns")
    kind = "torus" if wrap else "grid"
    topology = Topology(f"{kind}-{rows}x{cols}")

    def node_id(row: int, col: int) -> int:
        return row * cols + col + 1

    for row in range(rows):
        for col in range(cols):
            topology.add_node(node_id(row, col), name=f"s{row + 1}-{col + 1}")
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                topology.add_link(node_id(row, col), node_id(row, col + 1),
                                  delay=delay, bandwidth_bps=bandwidth_bps)
            if row + 1 < rows:
                topology.add_link(node_id(row, col), node_id(row + 1, col),
                                  delay=delay, bandwidth_bps=bandwidth_bps)
        if wrap and cols > 2:
            topology.add_link(node_id(row, cols - 1), node_id(row, 0),
                              delay=delay, bandwidth_bps=bandwidth_bps)
    if wrap and rows > 2:
        for col in range(cols):
            topology.add_link(node_id(rows - 1, col), node_id(0, col),
                              delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def waxman_topology(num_switches: int, alpha: float = 0.4, beta: float = 0.4,
                    seed: int = 0, region_km: float = 3000.0,
                    bandwidth_bps: float = 1e9) -> Topology:
    """A Waxman random geometric graph (the classic ISP/WAN model).

    Switches are placed uniformly in a ``region_km`` x ``region_km`` square
    and each pair is linked with probability ``alpha * exp(-d / (beta * L))``
    where ``d`` is their distance and ``L`` the region diagonal.  Link delays
    follow fibre length.  Isolated components are stitched together through
    their closest node pair, so the result is always connected.
    """
    if num_switches < 2:
        raise TopologyError("a Waxman topology needs at least 2 switches")
    if not 0.0 < alpha <= 1.0 or beta <= 0.0:
        raise TopologyError("Waxman parameters need 0 < alpha <= 1 and beta > 0")
    rng = SeededRandom(seed)
    topology = Topology(f"waxman-{num_switches}-seed{seed}")
    positions: List[Tuple[float, float]] = []
    for node_id in range(1, num_switches + 1):
        x = rng.uniform(0.0, region_km)
        y = rng.uniform(0.0, region_km)
        positions.append((x, y))
        topology.add_node(node_id, latitude=y, longitude=x)

    def distance_km(node_a: int, node_b: int) -> float:
        (ax, ay), (bx, by) = positions[node_a - 1], positions[node_b - 1]
        return math.hypot(ax - bx, ay - by)

    def fibre_delay(km: float) -> float:
        # Same fibre model as the pan-European map, floored for co-located
        # nodes (a zero-delay link would never be scheduled).
        return max(link_delay_seconds(km), 1e-5)

    diagonal = math.hypot(region_km, region_km)
    for node_a in range(1, num_switches + 1):
        for node_b in range(node_a + 1, num_switches + 1):
            d = distance_km(node_a, node_b)
            if rng.random() < alpha * math.exp(-d / (beta * diagonal)):
                topology.add_link(node_a, node_b, delay=fibre_delay(d),
                                  bandwidth_bps=bandwidth_bps)
    # Stitch disconnected components through their closest node pair.  One
    # union-find pass finds the components; each is then merged into the
    # growing connected block, so the whole stitch is O(V^2) rather than a
    # BFS-per-merge over the full graph.
    uf_parent = list(range(num_switches + 1))

    def find(node: int) -> int:
        root = node
        while uf_parent[root] != root:
            root = uf_parent[root]
        while uf_parent[node] != root:
            uf_parent[node], node = root, uf_parent[node]
        return root

    for link in topology.links:
        uf_parent[find(link.node_a)] = find(link.node_b)
    components: Dict[int, List[int]] = {}
    for node in range(1, num_switches + 1):
        components.setdefault(find(node), []).append(node)
    blocks = sorted(components.values(), key=lambda nodes: nodes[0])
    block, *rest = blocks
    for other in rest:
        node_a, node_b = min(
            ((a, b) for a in block for b in other),
            key=lambda pair: distance_km(pair[0], pair[1]))
        topology.add_link(node_a, node_b,
                          delay=fibre_delay(distance_km(node_a, node_b)),
                          bandwidth_bps=bandwidth_bps)
        block.extend(other)
    return topology


def _add_as_members(topology: Topology, asn: int, as_label: str,
                    node_ids: List[int], shape: str, rows: int, cols: int,
                    delay: float, bandwidth_bps: float) -> None:
    """Populate one AS: add its nodes and intra-AS (IGP) links."""
    for index, node_id in enumerate(node_ids):
        topology.add_node(node_id, name=f"{as_label}r{index + 1}", asn=asn)
    size = len(node_ids)
    if shape == "ring":
        if size >= 3:
            for index in range(size):
                topology.add_link(node_ids[index], node_ids[(index + 1) % size],
                                  delay=delay, bandwidth_bps=bandwidth_bps)
        elif size == 2:
            topology.add_link(node_ids[0], node_ids[1], delay=delay,
                              bandwidth_bps=bandwidth_bps)
    elif shape == "torus":
        def grid(row: int, col: int) -> int:
            return node_ids[row * cols + col]

        for row in range(rows):
            for col in range(cols):
                if col + 1 < cols:
                    topology.add_link(grid(row, col), grid(row, col + 1),
                                      delay=delay, bandwidth_bps=bandwidth_bps)
                if row + 1 < rows:
                    topology.add_link(grid(row, col), grid(row + 1, col),
                                      delay=delay, bandwidth_bps=bandwidth_bps)
            if cols > 2:
                topology.add_link(grid(row, cols - 1), grid(row, 0),
                                  delay=delay, bandwidth_bps=bandwidth_bps)
        if rows > 2:
            for col in range(cols):
                topology.add_link(grid(rows - 1, col), grid(0, col),
                                  delay=delay, bandwidth_bps=bandwidth_bps)
    elif shape == "mesh":
        for a in range(size):
            for b in range(a + 1, size):
                topology.add_link(node_ids[a], node_ids[b], delay=delay,
                                  bandwidth_bps=bandwidth_bps)
    else:
        raise TopologyError(f"unknown AS shape {shape!r} (ring/torus/mesh)")


def multi_as_topology(num_ases: int, as_size: int = 4, shape: str = "ring",
                      as_rows: Optional[int] = None,
                      as_cols: Optional[int] = None,
                      delay: float = 0.001, border_delay: float = 0.002,
                      bandwidth_bps: float = 1e9) -> Topology:
    """A ring of autonomous systems stitched together by eBGP border links.

    Each AS is a ring (or, with ``shape="torus"`` and ``as_rows`` ×
    ``as_cols``, a torus/grid) of ``as_size`` switches running the IGP
    internally; AS *i* and AS *i+1* are joined by one border link between
    a router of each (the last router of one, the first of the next), and
    the last AS closes the ring back to the first — so every AS has two
    border routers and interdomain traffic can route around a failed
    border link.  AS numbers start at :data:`BASE_ASN` (the private-use
    range).
    """
    if num_ases < 2:
        raise TopologyError("a multi-AS topology needs at least 2 ASes")
    if shape == "torus":
        if as_rows is None or as_cols is None:
            raise TopologyError("shape='torus' needs as_rows and as_cols")
        if as_rows < 2 or as_cols < 2:
            raise TopologyError("an AS torus needs at least 2x2 routers")
        as_size = as_rows * as_cols
    elif as_size < 1:
        raise TopologyError("as_size must be at least 1")
    topology = Topology(f"multi-as-{shape}-{num_ases}x{as_size}")
    members: List[List[int]] = []
    next_id = 1
    for index in range(num_ases):
        node_ids = list(range(next_id, next_id + as_size))
        next_id += as_size
        _add_as_members(topology, BASE_ASN + index + 1, f"as{index + 1}-",
                        node_ids, shape, as_rows or 0, as_cols or 0,
                        delay, bandwidth_bps)
        members.append(node_ids)
    # Stitch the ASes into a ring of eBGP border links (a single link for
    # two ASes — a 2-AS "ring" would duplicate it).
    pairs = num_ases if num_ases > 2 else 1
    for index in range(pairs):
        left = members[index]
        right = members[(index + 1) % num_ases]
        topology.add_link(left[-1], right[0], delay=border_delay,
                          bandwidth_bps=bandwidth_bps)
    return topology


def transit_stub_topology(num_stubs: int, stub_size: int = 3,
                          transit_size: int = 3, delay: float = 0.001,
                          border_delay: float = 0.002,
                          bandwidth_bps: float = 1e9) -> Topology:
    """An Internet-like transit/stub arrangement of autonomous systems.

    One transit (provider) AS — a full mesh of ``transit_size`` routers,
    AS number :data:`BASE_ASN` — carries traffic between ``num_stubs``
    stub (customer) ASes, each a ring of ``stub_size`` routers homed onto
    one transit router by an eBGP border link (stubs are dealt over the
    transit routers round-robin).  Stub-to-stub traffic must transit the
    provider: the shape that exercises iBGP route propagation across the
    transit core.
    """
    if num_stubs < 1:
        raise TopologyError("a transit/stub topology needs at least one stub AS")
    if transit_size < 1 or stub_size < 1:
        raise TopologyError("transit_size and stub_size must be at least 1")
    topology = Topology(f"transit-stub-{num_stubs}x{stub_size}")
    transit_ids = list(range(1, transit_size + 1))
    _add_as_members(topology, BASE_ASN, "transit-", transit_ids, "mesh",
                    0, 0, delay, bandwidth_bps)
    next_id = transit_size + 1
    for index in range(num_stubs):
        node_ids = list(range(next_id, next_id + stub_size))
        next_id += stub_size
        _add_as_members(topology, BASE_ASN + index + 1, f"stub{index + 1}-",
                        node_ids, "ring", 0, 0, delay, bandwidth_bps)
        home = transit_ids[index % transit_size]
        topology.add_link(home, node_ids[0], delay=border_delay,
                          bandwidth_bps=bandwidth_bps)
    return topology


#: Ingress LOCAL_PREF encoding the Gao-Rexford route preference: customer
#: routes beat peer routes beat provider routes.  The customer value doubles
#: as the valley-free export marker (see ``repro.quagga.bgp.daemon``).
RELATIONSHIP_LOCAL_PREF = {"customer": 200, "peer": 100, "provider": 50}


def as_relationships_from_topology(topology: Topology) -> Dict[Tuple[int, int], str]:
    """The AS-relationship map of a topology (empty if none was assigned)."""
    return dict(getattr(topology, "as_relationships", {}) or {})


def scale_free_as_topology(num_ases: int, seed: int = 0, attach: int = 2,
                           core_ases: Optional[int] = None,
                           transit_as_size: int = 3, stub_as_size: int = 1,
                           delay: float = 0.001, border_delay: float = 0.002,
                           bandwidth_bps: float = 1e9) -> Topology:
    """An Internet-like scale-free AS graph with commercial relationships.

    The AS-level graph follows preferential attachment (Barabási–Albert):
    a clique of ``core_ases`` transit ASes peers with each other, and every
    further AS homes onto ``attach`` distinct providers drawn from the
    existing ASes with probability proportional to their current degree —
    hubs attract customers, producing the heavy-tailed degree distribution
    of the real AS graph.  Attachment links are customer→provider, clique
    links are peer↔peer, so the provider relation is acyclic by
    construction and every AS reaches the core valley-free.

    Core (transit) ASes are rings of ``transit_as_size`` routers; all other
    ASes have ``stub_as_size`` routers.  Border links rotate over an AS's
    member routers so eBGP sessions spread across them.  The resulting
    :class:`Topology` carries ``as_relationships`` (``(asn_a, asn_b) ->
    relationship of asn_b from asn_a's perspective``) and ``as_roles``
    (``transit`` for the clique, ``mid`` for ASes with both providers and
    customers, ``stub`` for customer-only leaves), from which the RPC
    server derives valley-free per-peer export policies.
    """
    if num_ases < 3:
        raise TopologyError("a scale-free AS graph needs at least 3 ASes")
    if attach < 1:
        raise TopologyError("attach must be at least 1")
    if transit_as_size < 1 or stub_as_size < 1:
        raise TopologyError("AS sizes must be at least 1")
    core = core_ases if core_ases is not None else max(2, round(num_ases * 0.06))
    if core >= num_ases:
        raise TopologyError("core_ases must leave room for at least one stub AS")
    rng = SeededRandom(seed)

    # ---- AS-level graph: preferential attachment over AS indices 0..n-1.
    relationships: Dict[Tuple[int, int], str] = {}
    as_links: List[Tuple[int, int]] = []   # (customer-or-peer, provider-or-peer)
    #: classic BA bookkeeping: every AS appears once per unit of degree, so
    #: a uniform draw from the list is a degree-weighted draw over ASes.
    weighted: List[int] = []

    def relate(index_a: int, index_b: int, rel_of_b: str) -> None:
        asn_a, asn_b = BASE_ASN + index_a, BASE_ASN + index_b
        relationships[(asn_a, asn_b)] = rel_of_b
        inverse = {"customer": "provider", "provider": "customer",
                   "peer": "peer"}[rel_of_b]
        relationships[(asn_b, asn_a)] = inverse

    for index_a in range(core):
        for index_b in range(index_a + 1, core):
            as_links.append((index_a, index_b))
            relate(index_a, index_b, "peer")
            weighted.extend((index_a, index_b))
    for index in range(core, num_ases):
        wanted = min(attach, index)
        providers: List[int] = []
        while len(providers) < wanted:
            candidate = rng.choice(weighted) if weighted else rng.randint(0, index - 1)
            if candidate not in providers:
                providers.append(candidate)
        for provider in providers:
            as_links.append((index, provider))
            relate(index, provider, "provider")
            weighted.extend((index, provider))

    # ---- Switch-level topology: rings of routers per AS, border links
    # rotating over each AS's members.
    topology = Topology(f"scale-free-as-{num_ases}-seed{seed}")
    members: List[List[int]] = []
    next_id = 1
    for index in range(num_ases):
        size = transit_as_size if index < core else stub_as_size
        node_ids = list(range(next_id, next_id + size))
        next_id += size
        _add_as_members(topology, BASE_ASN + index, f"as{index + 1}-",
                        node_ids, "ring", 0, 0, delay, bandwidth_bps)
        members.append(node_ids)
    border_slot = [0] * num_ases
    for index_a, index_b in as_links:
        router_a = members[index_a][border_slot[index_a] % len(members[index_a])]
        router_b = members[index_b][border_slot[index_b] % len(members[index_b])]
        border_slot[index_a] += 1
        border_slot[index_b] += 1
        topology.add_link(router_a, router_b, delay=border_delay,
                          bandwidth_bps=bandwidth_bps)

    topology.as_relationships = relationships
    has_customers = {a for (a, b), rel in relationships.items() if rel == "customer"}
    for index in range(num_ases):
        asn = BASE_ASN + index
        if index < core:
            role = "transit"
        elif asn in has_customers:
            role = "mid"
        else:
            role = "stub"
        topology.as_roles[asn] = role
    return topology


def dumbbell_topology(left_leaves: int, right_leaves: int,
                      trunk_switches: int = 0, delay: float = 0.001,
                      trunk_delay: float = 0.005,
                      bandwidth_bps: float = 1e9,
                      trunk_bandwidth_bps: float = 1e8) -> Topology:
    """Two access stars joined by a (longer, thinner) trunk path.

    Node 1 and node 2 are the left and right hub switches; an optional chain
    of ``trunk_switches`` sits between them on the bottleneck path, and the
    leaf switches hang off their hub.  The trunk defaults to 10x less
    bandwidth and 5x more delay than the access links, the classic shape for
    congestion and failover studies.
    """
    if left_leaves < 1 or right_leaves < 1:
        raise TopologyError("a dumbbell needs at least one leaf on each side")
    if trunk_switches < 0:
        raise TopologyError("trunk_switches must be >= 0")
    topology = Topology(
        f"dumbbell-{left_leaves}x{right_leaves}-t{trunk_switches}")
    left_hub = topology.add_node(1, name="hub-left").node_id
    right_hub = topology.add_node(2, name="hub-right").node_id
    next_id = 3
    trunk_path = [left_hub]
    for index in range(trunk_switches):
        topology.add_node(next_id, name=f"trunk{index + 1}")
        trunk_path.append(next_id)
        next_id += 1
    trunk_path.append(right_hub)
    for node_a, node_b in zip(trunk_path, trunk_path[1:]):
        topology.add_link(node_a, node_b, delay=trunk_delay,
                          bandwidth_bps=trunk_bandwidth_bps)
    for hub, leaves, side in ((left_hub, left_leaves, "l"),
                              (right_hub, right_leaves, "r")):
        for index in range(leaves):
            topology.add_node(next_id, name=f"leaf-{side}{index + 1}")
            topology.add_link(hub, next_id, delay=delay,
                              bandwidth_bps=bandwidth_bps)
            next_id += 1
    return topology
