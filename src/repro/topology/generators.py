"""Synthetic topology generators.

The paper's Figure 3 experiments run on ring topologies of increasing size;
the other generators (linear, star, tree, full mesh, random) are provided
for the wider test suite and the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import SeededRandom
from repro.topology.graph import Topology, TopologyError


def ring_topology(num_switches: int, delay: float = 0.001,
                  bandwidth_bps: float = 1e9) -> Topology:
    """The ring topologies used for the paper's configuration-time figure."""
    if num_switches < 3:
        raise TopologyError("a ring needs at least 3 switches")
    topology = Topology(f"ring-{num_switches}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    for node_id in range(1, num_switches + 1):
        neighbor = node_id % num_switches + 1
        topology.add_link(node_id, neighbor, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def linear_topology(num_switches: int, delay: float = 0.001,
                    bandwidth_bps: float = 1e9) -> Topology:
    """A chain of switches."""
    if num_switches < 2:
        raise TopologyError("a linear topology needs at least 2 switches")
    topology = Topology(f"linear-{num_switches}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    for node_id in range(1, num_switches):
        topology.add_link(node_id, node_id + 1, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def star_topology(num_leaves: int, delay: float = 0.001,
                  bandwidth_bps: float = 1e9) -> Topology:
    """One hub switch with ``num_leaves`` leaf switches."""
    if num_leaves < 1:
        raise TopologyError("a star needs at least one leaf")
    topology = Topology(f"star-{num_leaves}")
    hub = topology.add_node(1, name="hub")
    for leaf in range(2, num_leaves + 2):
        topology.add_node(leaf)
        topology.add_link(hub.node_id, leaf, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def tree_topology(depth: int, fanout: int, delay: float = 0.001,
                  bandwidth_bps: float = 1e9) -> Topology:
    """A complete tree of switches with the given depth and fanout."""
    if depth < 1 or fanout < 1:
        raise TopologyError("tree depth and fanout must be at least 1")
    topology = Topology(f"tree-d{depth}-f{fanout}")
    topology.add_node(1, name="root")
    next_id = 2
    frontier = [1]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                topology.add_node(next_id)
                topology.add_link(parent, next_id, delay=delay,
                                  bandwidth_bps=bandwidth_bps)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return topology


def full_mesh_topology(num_switches: int, delay: float = 0.001,
                       bandwidth_bps: float = 1e9) -> Topology:
    """Every switch connected to every other switch."""
    if num_switches < 2:
        raise TopologyError("a mesh needs at least 2 switches")
    topology = Topology(f"mesh-{num_switches}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    for node_a in range(1, num_switches + 1):
        for node_b in range(node_a + 1, num_switches + 1):
            topology.add_link(node_a, node_b, delay=delay, bandwidth_bps=bandwidth_bps)
    return topology


def random_topology(num_switches: int, extra_link_probability: float = 0.15,
                    seed: int = 0, delay: float = 0.001,
                    bandwidth_bps: float = 1e9) -> Topology:
    """A connected random topology: a random spanning tree plus extra links."""
    if num_switches < 2:
        raise TopologyError("a random topology needs at least 2 switches")
    if not 0.0 <= extra_link_probability <= 1.0:
        raise TopologyError("extra_link_probability must be in [0, 1]")
    rng = SeededRandom(seed)
    topology = Topology(f"random-{num_switches}-seed{seed}")
    for node_id in range(1, num_switches + 1):
        topology.add_node(node_id)
    # Random spanning tree guarantees connectivity.
    connected = [1]
    for node_id in range(2, num_switches + 1):
        parent = rng.choice(connected)
        topology.add_link(parent, node_id, delay=delay, bandwidth_bps=bandwidth_bps)
        connected.append(node_id)
    existing = {link.canonical() for link in topology.links}
    for node_a in range(1, num_switches + 1):
        for node_b in range(node_a + 1, num_switches + 1):
            if (node_a, node_b) in existing:
                continue
            if rng.random() < extra_link_probability:
                topology.add_link(node_a, node_b, delay=delay,
                                  bandwidth_bps=bandwidth_bps)
                existing.add((node_a, node_b))
    return topology
