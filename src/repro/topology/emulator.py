"""The network emulator: turns a :class:`Topology` into live simulated gear.

This plays the role of the second laptop in the paper's demo setup (and of
the namespace-per-switch OFELIA node in the §2.1 experiments): it
instantiates one OpenFlow switch per topology node, cables switch ports
according to the topology links, attaches end hosts to edge ports and
finally connects every switch's control channel to whatever control plane
the experiment provides (FlowVisor or a single controller).

Host addressing is taken from the same :class:`IPAddressManager` the
framework uses, mirroring the fact that host subnets are part of the
administrator's small static input.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ipam import IPAddressManager
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.host import Host
from repro.net.link import Link, connect
from repro.net.namespace import NamespaceRegistry
from repro.openflow.channel import ControlChannel
from repro.openflow.switch import OpenFlowSwitch
from repro.sim import Simulator
from repro.topology.graph import Topology

LOG = logging.getLogger(__name__)


@dataclass
class HostInfo:
    """Where a host lives and how it is addressed."""

    host: Host
    datapath_id: int
    port_no: int
    gateway: IPv4Address


class EmulatedNetwork:
    """Live switches, hosts and links built from a topology description."""

    #: Latency of the switch -> control-plane channels.
    CONTROL_CHANNEL_LATENCY = 0.002
    #: Stagger between successive switch control-plane connections, modelling
    #: switches coming up one after another on the emulation host.
    SWITCH_CONNECT_STAGGER = 0.1

    def __init__(self, sim: Simulator, topology: Topology,
                 ipam: Optional[IPAddressManager] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.ipam = ipam if ipam is not None else IPAddressManager()
        self.namespaces = NamespaceRegistry()
        self.switches: Dict[int, OpenFlowSwitch] = {}
        self.hosts: Dict[str, HostInfo] = {}
        self.links: List[Link] = []
        #: (node_a, node_b) canonical -> (port on a, port on b)
        self.link_ports: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._next_port: Dict[int, int] = {}
        self._control_channels: Dict[int, ControlChannel] = {}
        self._failure_listeners: List[Callable[[object], None]] = []
        self.failures_applied = 0
        #: Failure-injection state: explicitly failed links (canonical node
        #: pairs) and fail-stopped nodes.  A link is operationally up only
        #: when it is not failed itself and neither endpoint is — so
        #: recovering a node cannot resurrect a link whose other end is
        #: still down, and vice versa.
        self._failed_links: set = set()
        self._failed_nodes: set = set()
        self._build()

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        for node in self.topology.nodes:
            switch = OpenFlowSwitch(self.sim, datapath_id=node.node_id, name=node.name)
            self.switches[node.node_id] = switch
            self._next_port[node.node_id] = 1
            self.namespaces.create(node.name).attach_device(switch)
        for link in self.topology.links:
            self._build_link(link.node_a, link.node_b, link.delay, link.bandwidth_bps)
        for index, attachment in enumerate(self.topology.hosts):
            self._build_host(attachment.host_name, attachment.node_id, index)

    def _take_port(self, node_id: int) -> int:
        port = self._next_port[node_id]
        self._next_port[node_id] = port + 1
        return port

    def _build_link(self, node_a: int, node_b: int, delay: float,
                    bandwidth_bps: float) -> None:
        switch_a = self.switches[node_a]
        switch_b = self.switches[node_b]
        port_a = self._take_port(node_a)
        port_b = self._take_port(node_b)
        iface_a = self._make_switch_interface(switch_a, port_a)
        iface_b = self._make_switch_interface(switch_b, port_b)
        link = connect(self.sim, iface_a, iface_b, delay=delay,
                       bandwidth_bps=bandwidth_bps)
        self.links.append(link)
        key = (min(node_a, node_b), max(node_a, node_b))
        if key[0] == node_a:
            self.link_ports[key] = (port_a, port_b)
        else:
            self.link_ports[key] = (port_b, port_a)

    def _make_switch_interface(self, switch: OpenFlowSwitch, port_no: int):
        from repro.net.link import Interface

        name = f"{switch.name}-eth{port_no}"
        mac = MACAddress.from_local_id(switch.datapath_id, port_no)
        interface = Interface(name=name, mac=mac, owner=switch, port_no=port_no)
        switch.add_port(port_no, interface)
        self.namespaces.get(switch.name).add_interface(interface)
        return interface

    def _build_host(self, host_name: str, node_id: int, index: int) -> None:
        switch = self.switches[node_id]
        port_no = self._take_port(node_id)
        switch_iface = self._make_switch_interface(switch, port_no)
        allocation = self.ipam.allocate_edge_port(node_id, port_no)
        host_ip = IPv4Address(int(allocation.network.network) + 100 + index)
        host_mac = MACAddress.from_local_id(0x200000 + node_id, port_no)
        host = Host(self.sim, name=host_name, mac=host_mac, ip=host_ip,
                    prefix_len=allocation.prefix_len, gateway=allocation.gateway)
        connect(self.sim, host.interface, switch_iface, delay=0.0005)
        namespace = self.namespaces.create(host_name)
        namespace.attach_device(host)
        namespace.add_interface(host.interface)
        self.hosts[host_name] = HostInfo(host=host, datapath_id=node_id,
                                         port_no=port_no, gateway=allocation.gateway)
        LOG.info("emulator: host %s = %s/%d gw %s on %s port %d", host_name, host_ip,
                 allocation.prefix_len, allocation.gateway, switch.name, port_no)

    # ---------------------------------------------------------- control plane
    def connect_control_plane(self, accept_channel: Callable[[ControlChannel], None],
                              endpoint: object,
                              latency: Optional[float] = None) -> None:
        """Connect every switch to the control plane.

        ``endpoint`` is the controller-side channel endpoint (a FlowVisor or a
        Controller); ``accept_channel`` is the method that registers a new
        switch-facing channel on it.  Switch connections are staggered.
        """
        channel_latency = latency if latency is not None else self.CONTROL_CHANNEL_LATENCY
        for offset, node_id in enumerate(sorted(self.switches)):
            switch = self.switches[node_id]
            channel = ControlChannel(self.sim, latency=channel_latency,
                                     name=f"ctl:{switch.name}")
            channel.connect(switch, endpoint)
            self._control_channels[node_id] = channel
            delay = offset * self.SWITCH_CONNECT_STAGGER
            self.sim.schedule(delay, self._bring_up_switch, switch, channel,
                              accept_channel, label=f"emulator:connect:{switch.name}")

    def _bring_up_switch(self, switch: OpenFlowSwitch, channel: ControlChannel,
                         accept_channel: Callable[[ControlChannel], None]) -> None:
        accept_channel(channel)
        switch.connect_to_controller(channel)

    # ---------------------------------------------------------------- queries
    def host(self, name: str) -> Host:
        return self.hosts[name].host

    def host_info(self, name: str) -> HostInfo:
        return self.hosts[name]

    def switch(self, node_id: int) -> OpenFlowSwitch:
        return self.switches[node_id]

    def control_channel(self, node_id: int) -> ControlChannel:
        return self._control_channels[node_id]

    def ports_for_link(self, node_a: int, node_b: int) -> Tuple[int, int]:
        """(port on node_a, port on node_b) for a topology link."""
        key = (min(node_a, node_b), max(node_a, node_b))
        port_low, port_high = self.link_ports[key]
        if node_a <= node_b:
            return port_low, port_high
        return port_high, port_low

    # ------------------------------------------------------- failure injection
    def fail_link(self, node_a: int, node_b: int) -> None:
        """Take a switch-to-switch link down (failure injection)."""
        self._failed_links.add(self._canonical(node_a, node_b))
        self._apply_effective_state(node_a, node_b)

    def restore_link(self, node_a: int, node_b: int) -> None:
        """Lift an explicit link failure (the link stays down while either
        endpoint node is still fail-stopped)."""
        self._failed_links.discard(self._canonical(node_a, node_b))
        self._apply_effective_state(node_a, node_b)

    def fail_node(self, node_id: int) -> None:
        """Fail-stop a switch: every incident link drops."""
        self._failed_nodes.add(node_id)
        for node_a, node_b in self.links_of(node_id):
            self._apply_effective_state(node_a, node_b)

    def restore_node(self, node_id: int) -> None:
        """Recover a failed switch.  Incident links come back only if they
        are not themselves failed and their other endpoint is up too."""
        self._failed_nodes.discard(node_id)
        for node_a, node_b in self.links_of(node_id):
            self._apply_effective_state(node_a, node_b)

    def links_of(self, node_id: int) -> List[Tuple[int, int]]:
        """The (node_a, node_b) pairs of every link incident to a node."""
        return [(link.node_a, link.node_b) for link in self.topology.links
                if node_id in (link.node_a, link.node_b)]

    @staticmethod
    def _canonical(node_a: int, node_b: int) -> Tuple[int, int]:
        return (min(node_a, node_b), max(node_a, node_b))

    def _apply_effective_state(self, node_a: int, node_b: int) -> None:
        up = (self._canonical(node_a, node_b) not in self._failed_links
              and node_a not in self._failed_nodes
              and node_b not in self._failed_nodes)
        port_a, _ = self.ports_for_link(node_a, node_b)
        interface = self.switches[node_a].port(port_a).interface
        if interface.link is None:
            return
        if up:
            interface.link.set_up()
        else:
            interface.link.set_down()

    def add_failure_listener(self, listener: Callable[[object], None]) -> None:
        """Subscribe to executed failure events (fires after the physical
        change; RouteFlow uses this to mirror it into the virtual topology)."""
        self._failure_listeners.append(listener)

    def apply_failure_event(self, event) -> None:
        """Execute one :class:`~repro.scenarios.FailureEvent` right now."""
        from repro.scenarios.events import FailureAction

        if event.action == FailureAction.LINK_DOWN:
            self.fail_link(event.node_a, event.node_b)
        elif event.action == FailureAction.LINK_UP:
            self.restore_link(event.node_a, event.node_b)
        elif event.action == FailureAction.NODE_DOWN:
            self.fail_node(event.node_a)
        elif event.action == FailureAction.NODE_UP:
            self.restore_node(event.node_a)
        elif event.action in FailureAction.CONTROL_ACTIONS:
            # Controller-shard failures and resharding leave the physical
            # network alone; the control plane acts on them through a
            # failure listener.
            pass
        else:  # pragma: no cover - schedules validate their actions
            raise ValueError(f"unknown failure action {event.action!r}")
        self.failures_applied += 1
        LOG.info("emulator: t=%.1fs %s", self.sim.now, event.describe())
        for listener in self._failure_listeners:
            listener(event)

    def schedule_failures(self, schedule) -> int:
        """Arm a :class:`~repro.scenarios.FailureSchedule` as kernel events.

        Event times are interpreted relative to the current simulated time
        (the failover experiment arms the schedule at configuration
        completion).  Every event target is validated against the topology
        up front — an unknown link or node raises
        :class:`~repro.scenarios.FailureScheduleError` before anything is
        armed.  Returns the number of events scheduled.
        """
        schedule.validate_against(
            self.switches, ((a, b) for a, b in self.link_ports))
        for event in schedule:
            self.sim.schedule(event.time, self.apply_failure_event, event,
                              label=f"failure:{event.action}")
        return len(schedule)

    # ------------------------------------------------------------- statistics
    def stats(self) -> Dict[str, int]:
        """Aggregate delivery/drop counters over the physical network.

        Sums the interface counters of every switch port and host NIC plus
        the per-link frame counters (host access links included).  The
        failover experiment diffs consecutive snapshots to report frames
        lost per failure.
        """
        totals = {"tx_packets": 0, "rx_packets": 0, "tx_dropped": 0,
                  "rx_dropped": 0, "link_tx_frames": 0, "link_dropped_frames": 0}
        interfaces = [port.interface for switch in self.switches.values()
                      for port in switch.ports.values()]
        interfaces += [info.host.interface for info in self.hosts.values()]
        links = {id(link): link for link in self.links}
        for interface in interfaces:
            counters = interface.stats()
            totals["tx_packets"] += counters["tx_packets"]
            totals["rx_packets"] += counters["rx_packets"]
            totals["tx_dropped"] += counters["tx_dropped"]
            totals["rx_dropped"] += counters["rx_dropped"]
            if interface.link is not None:
                links.setdefault(id(interface.link), interface.link)
        for link in links.values():
            counters = link.stats()
            totals["link_tx_frames"] += counters["tx_frames"]
            totals["link_dropped_frames"] += counters["dropped_frames"]
        totals["frames_delivered"] = totals["rx_packets"]
        totals["frames_dropped"] = (totals["tx_dropped"] + totals["rx_dropped"]
                                    + totals["link_dropped_frames"])
        return totals

    @property
    def num_switches(self) -> int:
        return len(self.switches)

    @property
    def num_links(self) -> int:
        return len(self.topology.links)

    def __repr__(self) -> str:
        return (f"<EmulatedNetwork {self.topology.name} switches={len(self.switches)} "
                f"hosts={len(self.hosts)}>")
