"""Topology description used by the generators and the emulator.

A :class:`Topology` is a plain declarative graph: named nodes (switches)
and undirected edges (links), plus host attachment points.  The emulator
turns it into live simulated switches, links and hosts; the experiment
harness reports on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class TopologyError(ValueError):
    """Raised for malformed topology definitions."""


@dataclass(frozen=True)
class TopologyNode:
    """A switch in the topology."""

    node_id: int
    name: str
    #: Optional geographic coordinates (used by the pan-European topology).
    latitude: float = 0.0
    longitude: float = 0.0
    #: Autonomous-system number of the router mirroring this switch
    #: (multi-AS topologies; 0 = no AS assignment, single-domain).
    asn: int = 0


@dataclass(frozen=True)
class TopologyLink:
    """An undirected link between two switches."""

    node_a: int
    node_b: int
    #: Propagation delay in seconds (derived from fibre length when known).
    delay: float = 0.001
    bandwidth_bps: float = 1e9

    def canonical(self) -> Tuple[int, int]:
        return (min(self.node_a, self.node_b), max(self.node_a, self.node_b))


@dataclass(frozen=True)
class HostAttachment:
    """A host attached to a switch."""

    host_name: str
    node_id: int


class Topology:
    """A named collection of nodes, links and host attachment points."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: Dict[int, TopologyNode] = {}
        self._links: List[TopologyLink] = []
        self._hosts: List[HostAttachment] = []
        #: Gao-Rexford business relationships between ASes of a multi-AS
        #: topology: ``(asn_a, asn_b) -> "customer"|"peer"|"provider"``,
        #: read as "from asn_a's perspective, asn_b is my <relationship>".
        #: Both directions are stored.  Empty for single-domain topologies
        #: and multi-AS generators without commercial roles.
        self.as_relationships: Dict[Tuple[int, int], str] = {}
        #: AS role classification of a scale-free AS graph:
        #: ``asn -> "transit"|"mid"|"stub"``.  Empty unless the generator
        #: assigned roles.
        self.as_roles: Dict[int, str] = {}

    # --------------------------------------------------------------- building
    def add_node(self, node_id: int, name: str = "", latitude: float = 0.0,
                 longitude: float = 0.0, asn: int = 0) -> TopologyNode:
        if node_id in self._nodes:
            raise TopologyError(f"node {node_id} already exists")
        if node_id <= 0:
            raise TopologyError("node ids must be positive (they become datapath ids)")
        node = TopologyNode(node_id=node_id, name=name or f"s{node_id}",
                            latitude=latitude, longitude=longitude, asn=asn)
        self._nodes[node_id] = node
        return node

    def add_link(self, node_a: int, node_b: int, delay: float = 0.001,
                 bandwidth_bps: float = 1e9) -> TopologyLink:
        if node_a not in self._nodes or node_b not in self._nodes:
            raise TopologyError(f"link references unknown node ({node_a}, {node_b})")
        if node_a == node_b:
            raise TopologyError("self-loops are not allowed")
        link = TopologyLink(node_a=node_a, node_b=node_b, delay=delay,
                            bandwidth_bps=bandwidth_bps)
        if link.canonical() in {l.canonical() for l in self._links}:
            raise TopologyError(f"duplicate link {link.canonical()}")
        self._links.append(link)
        return link

    def attach_host(self, host_name: str, node_id: int) -> HostAttachment:
        if node_id not in self._nodes:
            raise TopologyError(f"cannot attach host to unknown node {node_id}")
        if any(h.host_name == host_name for h in self._hosts):
            raise TopologyError(f"host {host_name} already attached")
        attachment = HostAttachment(host_name=host_name, node_id=node_id)
        self._hosts.append(attachment)
        return attachment

    # ---------------------------------------------------------------- queries
    @property
    def nodes(self) -> List[TopologyNode]:
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    @property
    def links(self) -> List[TopologyLink]:
        return list(self._links)

    @property
    def hosts(self) -> List[HostAttachment]:
        return list(self._hosts)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def node(self, node_id: int) -> TopologyNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"no node {node_id} in topology {self.name}") from None

    def node_by_name(self, name: str) -> TopologyNode:
        for node in self._nodes.values():
            if node.name == name:
                return node
        raise TopologyError(f"no node named {name!r} in topology {self.name}")

    def neighbors(self, node_id: int) -> List[int]:
        result = []
        for link in self._links:
            if link.node_a == node_id:
                result.append(link.node_b)
            elif link.node_b == node_id:
                result.append(link.node_a)
        return sorted(result)

    def degree(self, node_id: int) -> int:
        return len(self.neighbors(node_id))

    def hosts_on(self, node_id: int) -> List[HostAttachment]:
        return [h for h in self._hosts if h.node_id == node_id]

    def is_connected(self) -> bool:
        """Is the switch graph connected (ignoring hosts)?"""
        if not self._nodes:
            return False
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    def __repr__(self) -> str:
        return (f"<Topology {self.name} nodes={self.num_nodes} links={self.num_links} "
                f"hosts={len(self._hosts)}>")
