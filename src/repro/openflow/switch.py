"""A software OpenFlow 1.0 switch (the Open vSwitch stand-in).

Each switch owns a set of ports (data-plane interfaces), one flow table and
one control channel towards its controller (in the paper's deployment that
controller is FlowVisor, which fans the connection out to the topology
controller and the RF-controller).

The switch performs the OpenFlow handshake (HELLO, FEATURES), generates
PACKET_IN for table misses, executes PACKET_OUT and FLOW_MOD, answers ECHO
and BARRIER, reports port changes with PORT_STATUS and expires flows
against simulated time.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional

from repro.net.addresses import MACAddress
from repro.net.ethernet import Ethernet
from repro.net.link import Interface
from repro.net.packet import DecodeError
from repro.openflow.actions import Action, OutputAction
from repro.openflow.channel import ControlChannel
from repro.openflow.constants import (
    OFP_NO_BUFFER,
    OFPBadRequestCode,
    OFPErrorType,
    OFPFlowModCommand,
    OFPFlowModFailedCode,
    OFPFlowModFlags,
    OFPFlowRemovedReason,
    OFPPacketInReason,
    OFPPort,
    OFPPortReason,
    OFPPortState,
    OFPStatsType,
    OFPType,
)
from repro.openflow.flow_table import FlowEntry, FlowTable
from repro.openflow.match import PacketFields
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PhyPort,
    PortStatus,
    StatsReply,
    StatsRequest,
)
from repro.sim import PeriodicTask, Simulator

LOG = logging.getLogger(__name__)


class SwitchPort:
    """A data-plane port: an interface plus its OpenFlow port description."""

    def __init__(self, port_no: int, interface: Interface) -> None:
        self.port_no = port_no
        self.interface = interface

    @property
    def name(self) -> str:
        return self.interface.name

    @property
    def hw_addr(self) -> MACAddress:
        return self.interface.mac

    @property
    def link_up(self) -> bool:
        return self.interface.link is not None and self.interface.link.up and self.interface.up

    def describe(self) -> PhyPort:
        state = 0 if self.link_up else OFPPortState.LINK_DOWN
        return PhyPort(port_no=self.port_no, hw_addr=self.hw_addr,
                       name=self.name, state=state)

    def __repr__(self) -> str:
        return f"<SwitchPort {self.port_no} {self.name}>"


class OpenFlowSwitch:
    """An OpenFlow 1.0 datapath."""

    #: Per-packet pipeline processing latency (seconds) — models the software
    #: datapath cost of Open vSwitch in user space.
    PROCESSING_DELAY = 0.0001
    #: How often expired flows are garbage collected.
    EXPIRY_INTERVAL = 1.0
    #: Number of packets the switch can park while waiting for the controller.
    MAX_BUFFERS = 256
    #: Bytes of a buffered packet included in PACKET_IN.
    MISS_SEND_LEN = 128

    def __init__(self, sim: Simulator, datapath_id: int, name: str = "") -> None:
        self.sim = sim
        self.datapath_id = datapath_id
        self.name = name or f"s{datapath_id}"
        self._pipeline_label = f"{self.name}:pipeline"
        self.ports: Dict[int, SwitchPort] = {}
        self.flow_table = FlowTable()
        self.channel: Optional[ControlChannel] = None
        self.connected = False          # handshake finished
        self._hello_sent = False
        self._hello_received = False
        self._next_xid = 1
        self._buffers: Dict[int, tuple] = {}
        self._next_buffer_id = 1
        self._expiry_task = PeriodicTask(sim, self.EXPIRY_INTERVAL, self._expire_flows,
                                         name=f"{self.name}:flow-expiry")
        # Counters
        self.packet_in_count = 0
        self.flow_mod_count = 0
        self.data_packets_forwarded = 0
        self.data_packets_missed = 0
        #: Optional pipeline observer called after every data-plane lookup
        #: as ``observer(switch, in_port, fields, entry_or_None)``.  None
        #: (the default) costs nothing; the fluid-vs-packet equivalence
        #: test uses it to trace the hop sequence a frame takes.
        self.lookup_observer = None

    # ------------------------------------------------------------------ ports
    def add_port(self, port_no: int, interface: Interface) -> SwitchPort:
        """Register a data-plane port.  Port numbers start at 1."""
        if port_no in self.ports:
            raise ValueError(f"{self.name}: port {port_no} already exists")
        port = SwitchPort(port_no, interface)
        interface.port_no = port_no
        interface.owner = self
        interface.set_handler(self._on_data_frame)
        self.ports[port_no] = port
        if self.connected:
            self._send_port_status(OFPPortReason.ADD, port)
        return port

    def port(self, port_no: int) -> SwitchPort:
        return self.ports[port_no]

    @property
    def port_numbers(self) -> List[int]:
        return sorted(self.ports)

    def set_port_state(self, port_no: int, up: bool) -> None:
        """Administratively flip a port and notify the controller."""
        port = self.ports[port_no]
        port.interface.up = up
        if self.connected:
            self._send_port_status(OFPPortReason.MODIFY, port)

    # ---------------------------------------------------------------- control
    def connect_to_controller(self, channel: ControlChannel) -> None:
        """Attach the control channel and start the handshake."""
        self.channel = channel
        self._hello_sent = False
        self._hello_received = False
        self.connected = False
        self._expiry_task.start()
        self._send_message(Hello(xid=self._take_xid()))
        self._hello_sent = True

    def channel_receive(self, channel: ControlChannel, data: bytes) -> None:
        """Entry point for control messages from the channel."""
        try:
            message = OpenFlowMessage.decode(data)
        except DecodeError as exc:
            LOG.warning("%s: undecodable OpenFlow message: %s", self.name, exc)
            self._send_message(ErrorMessage(OFPErrorType.BAD_REQUEST,
                                            OFPBadRequestCode.BAD_TYPE))
            return
        self._dispatch(message)

    def channel_closed(self, channel: ControlChannel) -> None:
        self.connected = False
        self._expiry_task.stop()

    def _dispatch(self, message: OpenFlowMessage) -> None:
        if isinstance(message, Hello):
            self._hello_received = True
            return
        if isinstance(message, FeaturesRequest):
            self._send_features_reply(message.xid)
            self.connected = True
            return
        if isinstance(message, EchoRequest):
            self._send_message(EchoReply(data=message.data, xid=message.xid))
            return
        if isinstance(message, BarrierRequest):
            self._send_message(BarrierReply(xid=message.xid))
            return
        if isinstance(message, PacketOut):
            self._handle_packet_out(message)
            return
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
            return
        if isinstance(message, StatsRequest):
            self._handle_stats_request(message)
            return
        LOG.debug("%s: ignoring message %r", self.name, message)

    def _send_features_reply(self, xid: int) -> None:
        ports = [port.describe() for _, port in sorted(self.ports.items())]
        reply = FeaturesReply(datapath_id=self.datapath_id, ports=ports,
                              n_buffers=self.MAX_BUFFERS, xid=xid)
        self._send_message(reply)

    def _send_port_status(self, reason: int, port: SwitchPort) -> None:
        self._send_message(PortStatus(reason=reason, port=port.describe(),
                                      xid=self._take_xid()))

    def _send_message(self, message: OpenFlowMessage) -> None:
        if self.channel is None:
            return
        self.channel.send(self, message.encode())

    def _take_xid(self) -> int:
        xid = self._next_xid
        self._next_xid += 1
        return xid

    # ------------------------------------------------------------- PACKET_OUT
    def _handle_packet_out(self, message: PacketOut) -> None:
        if message.buffer_id != OFP_NO_BUFFER:
            buffered = self._buffers.pop(message.buffer_id, None)
            if buffered is None:
                self._send_message(ErrorMessage(OFPErrorType.BAD_REQUEST,
                                                OFPBadRequestCode.BAD_TYPE,
                                                xid=message.xid))
                return
            data, _in_port = buffered
        else:
            data = message.data
        self._apply_actions(data, message.actions, in_port=message.in_port)

    # --------------------------------------------------------------- FLOW_MOD
    def _handle_flow_mod(self, message: FlowMod) -> None:
        self.flow_mod_count += 1
        command = message.command
        if command == OFPFlowModCommand.ADD:
            self._flow_add(message)
        elif command in (OFPFlowModCommand.MODIFY, OFPFlowModCommand.MODIFY_STRICT):
            strict = command == OFPFlowModCommand.MODIFY_STRICT
            touched = self.flow_table.modify(message.match, message.actions,
                                             strict, message.priority)
            if touched == 0:
                # Per the spec MODIFY with no matching entry behaves as ADD.
                self._flow_add(message)
        elif command in (OFPFlowModCommand.DELETE, OFPFlowModCommand.DELETE_STRICT):
            strict = command == OFPFlowModCommand.DELETE_STRICT
            removed = self.flow_table.delete(message.match, strict,
                                             message.priority, message.out_port)
            for entry in removed:
                if entry.send_flow_removed:
                    self._send_flow_removed(entry, OFPFlowRemovedReason.DELETE)
        else:
            self._send_message(ErrorMessage(OFPErrorType.FLOW_MOD_FAILED,
                                            OFPFlowModFailedCode.BAD_COMMAND,
                                            xid=message.xid))
            return
        # A buffered packet referenced by the flow-mod is released through the
        # new flow entry's actions.
        if message.buffer_id != OFP_NO_BUFFER:
            buffered = self._buffers.pop(message.buffer_id, None)
            if buffered is not None:
                data, in_port = buffered
                self._apply_actions(data, message.actions, in_port=in_port)

    def _flow_add(self, message: FlowMod) -> None:
        if message.flags & OFPFlowModFlags.CHECK_OVERLAP:
            overlap = self.flow_table.find_overlapping(message.match, message.priority)
            if overlap is not None:
                self._send_message(ErrorMessage(OFPErrorType.FLOW_MOD_FAILED,
                                                OFPFlowModFailedCode.OVERLAP,
                                                xid=message.xid))
                return
        if self.flow_table.is_full:
            self._send_message(ErrorMessage(OFPErrorType.FLOW_MOD_FAILED,
                                            OFPFlowModFailedCode.ALL_TABLES_FULL,
                                            xid=message.xid))
            return
        entry = FlowEntry(match=message.match, actions=message.actions,
                          priority=message.priority,
                          idle_timeout=message.idle_timeout,
                          hard_timeout=message.hard_timeout,
                          cookie=message.cookie, flags=message.flags,
                          install_time=self.sim.now)
        self.flow_table.add(entry)

    def _send_flow_removed(self, entry: FlowEntry, reason: int) -> None:
        message = FlowRemoved(match=entry.match, cookie=entry.cookie,
                              priority=entry.priority, reason=reason,
                              duration_sec=int(self.sim.now - entry.install_time),
                              idle_timeout=entry.idle_timeout,
                              packet_count=entry.packet_count,
                              byte_count=entry.byte_count,
                              xid=self._take_xid())
        self._send_message(message)

    def _expire_flows(self) -> None:
        for entry, reason in self.flow_table.expire(self.sim.now):
            if entry.send_flow_removed:
                code = (OFPFlowRemovedReason.IDLE_TIMEOUT if reason == "idle"
                        else OFPFlowRemovedReason.HARD_TIMEOUT)
                self._send_flow_removed(entry, code)

    # ------------------------------------------------------------------ stats
    def _handle_stats_request(self, message: StatsRequest) -> None:
        if message.stats_type == OFPStatsType.DESC:
            body = (b"repro".ljust(256, b"\x00") + self.name.encode().ljust(256, b"\x00")
                    + b"software".ljust(256, b"\x00") + b"0".ljust(32, b"\x00")
                    + b"sim".ljust(256, b"\x00"))
            self._send_message(StatsReply(OFPStatsType.DESC, body, xid=message.xid))
        else:
            # Flow/port stats bodies are not needed by any reproduced experiment;
            # reply with an empty body of the same stats type.
            self._send_message(StatsReply(message.stats_type, b"", xid=message.xid))

    # -------------------------------------------------------------- dataplane
    def _on_data_frame(self, interface: Interface, data: bytes) -> None:
        """A frame arrived on a data-plane port."""
        self.sim.schedule(self.PROCESSING_DELAY, self._process_frame,
                          interface.port_no, data, label=self._pipeline_label)

    def _process_frame(self, in_port: int, data: bytes) -> None:
        fields = PacketFields.from_frame(data, in_port=in_port)
        entry = self.flow_table.lookup(fields)
        if self.lookup_observer is not None:
            self.lookup_observer(self, in_port, fields, entry)
        if entry is None:
            self.data_packets_missed += 1
            self._table_miss(in_port, data)
            return
        entry.mark_used(self.sim.now, len(data))
        self.data_packets_forwarded += 1
        self._apply_actions(data, entry.actions, in_port=in_port)

    def _table_miss(self, in_port: int, data: bytes) -> None:
        if not self.connected:
            return
        self.packet_in_count += 1
        if len(self._buffers) < self.MAX_BUFFERS:
            buffer_id = self._next_buffer_id
            self._next_buffer_id += 1
            self._buffers[buffer_id] = (data, in_port)
            payload = data[:self.MISS_SEND_LEN]
        else:
            buffer_id = OFP_NO_BUFFER
            payload = data
        message = PacketIn(buffer_id=buffer_id, in_port=in_port,
                           reason=OFPPacketInReason.NO_MATCH, data=payload,
                           total_len=len(data), xid=self._take_xid())
        self._send_message(message)

    # ---------------------------------------------------------------- actions
    def _apply_actions(self, data: bytes, actions: List[Action], in_port: int) -> None:
        """Execute an action list on a packet (rewrites then outputs)."""
        if not actions:
            return  # empty action list = drop
        try:
            frame = Ethernet.decode(data)
        except DecodeError:
            frame = None
        rewritten = False
        for action in actions:
            if isinstance(action, OutputAction):
                out_data = frame.encode() if (frame is not None and rewritten) else data
                self._output(out_data, action.port, in_port)
            else:
                if frame is not None:
                    action.apply(frame)
                    rewritten = True

    def _output(self, data: bytes, out_port: int, in_port: int) -> None:
        if out_port == OFPPort.CONTROLLER:
            self._packet_in_from_action(data, in_port)
            return
        if out_port == OFPPort.IN_PORT:
            self._transmit(in_port, data)
            return
        if out_port in (OFPPort.FLOOD, OFPPort.ALL):
            for port_no in self.port_numbers:
                if port_no != in_port:
                    self._transmit(port_no, data)
            return
        if out_port in self.ports:
            self._transmit(out_port, data)

    def _packet_in_from_action(self, data: bytes, in_port: int) -> None:
        if not self.connected:
            return
        self.packet_in_count += 1
        message = PacketIn(buffer_id=OFP_NO_BUFFER, in_port=in_port,
                           reason=OFPPacketInReason.ACTION, data=data,
                           total_len=len(data), xid=self._take_xid())
        self._send_message(message)

    def _transmit(self, port_no: int, data: bytes) -> None:
        port = self.ports.get(port_no)
        if port is None:
            return
        port.interface.send(data)

    def __repr__(self) -> str:
        return (f"<OpenFlowSwitch {self.name} dpid={self.datapath_id:#x} "
                f"ports={len(self.ports)} flows={len(self.flow_table)}>")
